"""Snapshot and restore a running private database.

A production deployment must survive restarts: the encrypted pages live on
the untrusted disk anyway, but the trusted state — position map, cached
plaintext pages, round-robin pointer — exists only inside the tamper
boundary.  The coprocessor therefore exports it as a single *sealed blob*
(encrypted and authenticated under a key derived from the master key), the
same way real secure hardware seals state to host storage.

Snapshot layout on the host filesystem::

    <directory>/
      manifest.json      # public parameters (nothing secret: n, k, m, B, ...)
      frames.bin         # the untrusted page array, verbatim
      sealed.bin         # encrypted trusted state (pageMap, cache, pointer,
                         #   and — format 2 — any in-flight key rotation)
      reshuffle.sealed   # present iff an online reshuffle epoch was active:
                         #   its frontier + secret epoch key (resume_reshuffle)
      <name>.sealed      # auxiliary sidecars (e.g. replication checkpoints)

Restoring requires the same master key; a wrong key fails authentication
rather than yielding garbage.  The restored instance draws fresh randomness
(relocation randomness is memoryless, so privacy is unaffected by not
persisting the RNG position).
"""

from __future__ import annotations

import json
import os
import struct
from typing import Optional

from .database import PirDatabase
from .engine import RetrievalEngine
from .params import SystemParameters
from ..crypto.rng import SecureRandom
from ..crypto.suite import CipherSuite
from ..errors import ConfigurationError, StorageError
from ..hardware.coprocessor import SecureCoprocessor
from ..hardware.specs import HardwareSpec
from ..sim.clock import VirtualClock
from ..storage.disk import DiskStore
from ..storage.merkle import AuthenticatedDisk
from ..storage.page import Page
from ..storage.tiered import TieredDiskStore
from ..storage.trace import AccessTrace

__all__ = [
    "save_snapshot",
    "load_snapshot",
    "bootstrap_replica",
    "resume_reshuffle",
    "save_sealed_sidecar",
    "load_sealed_sidecar",
]

_MANIFEST = "manifest.json"
_FRAMES = "frames.bin"
_SEALED = "sealed.bin"
_RESHUFFLE_SIDECAR = "reshuffle"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")


# ---------------------------------------------------------------------------
# Trusted-state codec (runs inside the boundary; output is then sealed)
# ---------------------------------------------------------------------------


def _encode_trusted_state(db: PirDatabase) -> bytes:
    pm = db.cop.page_map
    parts = [_U64.pack(db.engine.next_block_index),
             _U64.pack(db.engine.request_count)]
    # Page map: per id -> (flags, position).
    parts.append(_U64.pack(pm.num_pages))
    for page_id in range(pm.num_pages):
        entry = pm.lookup(page_id)
        flags = (1 if entry.in_cache else 0) | (2 if entry.deleted else 0)
        parts.append(bytes([flags]))
        parts.append(_U64.pack(entry.position))
    # Cache: slot order matters (positions in the map point at slots).
    parts.append(_U64.pack(db.cop.cache.capacity))
    for slot in range(db.cop.cache.capacity):
        page = db.cop.cache.get(slot)
        flags = 2 if page.deleted else 0
        parts.append(_U64.pack(page.page_id))
        parts.append(bytes([flags]))
        parts.append(_U32.pack(len(page.payload)))
        parts.append(page.payload)
    # Format-2 tail: key-rotation state, so a snapshot taken mid-rotation
    # (e.g. during a reshuffle epoch that piggybacks one) restores with the
    # legacy key still live.  rotation_left is the engine's request
    # countdown (-1 = no countdown: either no rotation, or one driven by a
    # reshuffle epoch whose sweep finishes it instead).
    legacy = db.cop.legacy_master_key
    rotation_left = db.engine.rotation_requests_remaining
    if legacy is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(_U32.pack(len(legacy)))
        parts.append(legacy)
    parts.append(_I64.pack(-1 if rotation_left is None else rotation_left))
    return b"".join(parts)


def _decode_trusted_state(blob: bytes, db: PirDatabase) -> None:
    offset = 0

    def take_u64() -> int:
        nonlocal offset
        value = _U64.unpack_from(blob, offset)[0]
        offset += 8
        return value

    def take_u32() -> int:
        nonlocal offset
        value = _U32.unpack_from(blob, offset)[0]
        offset += 4
        return value

    def take_byte() -> int:
        nonlocal offset
        value = blob[offset]
        offset += 1
        return value

    db.engine._next_block = take_u64() % db.params.num_blocks
    db.engine._request_count = take_u64()

    num_pages = take_u64()
    if num_pages != db.params.total_pages:
        raise StorageError("snapshot page count does not match parameters")
    pm = db.cop.page_map
    for page_id in range(num_pages):
        flags = take_byte()
        position = take_u64()
        if flags & 1:
            pm.set_cached(page_id, position)
        else:
            pm.set_disk(page_id, position)
        if flags & 2:
            pm.mark_deleted(page_id)

    capacity = take_u64()
    if capacity != db.cop.cache.capacity:
        raise StorageError("snapshot cache capacity does not match parameters")
    pages = []
    for _slot in range(capacity):
        page_id = take_u64()
        flags = take_byte()
        length = take_u32()
        payload = blob[offset : offset + length]
        offset += length
        pages.append(Page(page_id, payload, deleted=bool(flags & 2)))
    db.cop.cache.fill(pages)
    if offset == len(blob):
        return  # format 1: no rotation tail
    if take_byte():
        length = take_u32()
        legacy = blob[offset : offset + length]
        offset += length
        db.cop.adopt_legacy_key(legacy)
    rotation_left = _I64.unpack_from(blob, offset)[0]
    offset += 8
    if rotation_left >= 0:
        db.engine._rotation_requests_left = rotation_left
    if offset != len(blob):
        raise StorageError("trailing bytes in trusted-state blob")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def save_snapshot(db: PirDatabase, directory: str) -> None:
    """Persist the database (untrusted frames + sealed trusted state).

    A snapshot may be taken *during* a key rotation (the format-2 sealed
    state carries the legacy key and the rotation countdown) and during an
    online reshuffle epoch (the epoch's frontier and secret key are sealed
    into a ``reshuffle`` sidecar; reattach with :func:`resume_reshuffle`).
    A *retained* write-back (a transiently failed apply — the engine's or
    a background worker's) is healed under the op lock before anything is
    dumped, so the frames and the sealed page map always agree.  It still
    refuses while either intent journal — the engine's or the
    reshuffler's — holds a record the heal could not resolve (a crash
    restart): a snapshot taken mid-recovery would be *older* than the
    journal, and restoring it next to that journal is exactly the state
    ``recover()`` must reject.  Run ``db.recover()`` /
    ``db.reshuffle.recover()`` first.
    """
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "format": 2,
        "num_user_pages": db.params.num_user_pages,
        "reserve_pages": db.params.reserve_pages,
        "cache_capacity": db.params.cache_capacity,
        "block_size": db.params.block_size,
        "num_locations": db.params.num_locations,
        "page_capacity": db.params.page_capacity,
        "target_c": db.params.target_c,
        "frame_size": db.cop.frame_size,
        "cipher_backend": db.cop.suite.backend,
    }
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)

    # Hold the op lock across the journal checks, the frame dump and the
    # trusted-state encode: a background reshuffle batch landing between
    # any two of them would leave the frames describing a newer
    # permutation than the sealed page map.
    with db.engine.op_lock:
        # Roll forward any retained in-memory write-back first (the
        # engine's, plus every registered background healer — the online
        # reshuffler's among them): a transiently failed apply leaves
        # frames on disk that the page map does not describe yet, and a
        # journal-less configuration has no pending-record check to catch
        # it.
        db.engine._heal_pending()
        if db.engine.journal_pending:
            raise ConfigurationError(
                "cannot snapshot with a pending intent-journal record; "
                "call recover() first"
            )
        if db.reshuffle is not None and db.reshuffle.journal_pending:
            raise ConfigurationError(
                "cannot snapshot with a pending reshuffle-journal record; "
                "call reshuffle.recover() first"
            )
        with open(os.path.join(directory, _FRAMES), "wb") as f:
            for location in range(db.disk.num_locations):
                frame = db.disk.peek(location)
                if frame is None:
                    raise StorageError(
                        f"cannot snapshot uninitialised location {location}"
                    )
                f.write(frame)

        sealing = CipherSuite(
            b"snapshot-sealing:" + db.cop.suite.backend.encode(),
            backend="blake2",
            rng=db.cop.rng,
        )
        # Seal under a key derived from the *database's* master key so only
        # the rightful owner can restore: reuse the page suite for the
        # inner layer.
        inner = db.cop.suite.encrypt_page(_encode_trusted_state(db))
        sealed = sealing.encrypt_page(inner)
        with open(os.path.join(directory, _SEALED), "wb") as f:
            f.write(sealed)

        reshuffle_path = os.path.join(
            directory, _RESHUFFLE_SIDECAR + ".sealed"
        )
        if db.reshuffle is not None and db.reshuffle.active:
            # Mid-epoch: seal the frontier + epoch key so a restored
            # instance (or a bootstrapping warm replica) resumes the pass
            # instead of starting a cold shuffle.
            save_sealed_sidecar(
                db, directory, _RESHUFFLE_SIDECAR, db.reshuffle.state_blob()
            )
        elif os.path.exists(reshuffle_path):
            os.remove(reshuffle_path)  # stale sidecar from an older save


def load_snapshot(
    directory: str,
    master_key: bytes = b"repro-master-key",
    spec: Optional[HardwareSpec] = None,
    seed: Optional[int] = None,
    trace_enabled: bool = True,
    rollback_protection: bool = False,
    journal=None,
    read_retry=None,
    hot_tier_frames: Optional[int] = None,
    hot_tier_journal=None,
) -> PirDatabase:
    """Reconstruct a database saved by :func:`save_snapshot`.

    The master key must match the one the database was created with —
    the *new* key if the snapshot was taken mid-rotation (the sealed
    state re-adopts the legacy key automatically); an incorrect key
    raises :class:`~repro.errors.AuthenticationError`.
    ``journal``/``read_retry`` re-arm crash consistency and read retries on
    the restored instance (journals are not part of the snapshot: a clean
    snapshot implies an empty journal slot).  ``hot_tier_frames`` /
    ``hot_tier_journal`` front the restored store with the in-memory
    ciphertext tier, as in :meth:`PirDatabase.create`.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise ConfigurationError(f"no snapshot manifest in {directory!r}")
    with open(manifest_path, encoding="utf-8") as f:
        manifest = json.load(f)
    if manifest.get("format") not in (1, 2):
        raise ConfigurationError("unsupported snapshot format")

    params = SystemParameters(
        num_user_pages=manifest["num_user_pages"],
        reserve_pages=manifest["reserve_pages"],
        cache_capacity=manifest["cache_capacity"],
        block_size=manifest["block_size"],
        num_locations=manifest["num_locations"],
        page_capacity=manifest["page_capacity"],
        target_c=manifest["target_c"],
    )
    rng = SecureRandom(seed)
    clock = VirtualClock()
    cop = SecureCoprocessor(
        num_pages=params.total_pages,
        cache_capacity=params.cache_capacity,
        block_size=params.block_size,
        page_capacity=params.page_capacity,
        master_key=master_key,
        spec=spec,
        clock=clock,
        rng=rng,
        cipher_backend=manifest["cipher_backend"],
    )
    if cop.frame_size != manifest["frame_size"]:
        raise ConfigurationError("snapshot frame size does not match suite")

    disk = DiskStore(
        num_locations=params.num_locations,
        frame_size=cop.frame_size,
        timing=cop.spec.disk,
        clock=clock,
        trace=AccessTrace(enabled=trace_enabled),
    )
    if hot_tier_frames is not None:
        disk = TieredDiskStore(
            disk, hot_capacity=hot_tier_frames, journal_path=hot_tier_journal,
        )
    if rollback_protection:
        # Wrap before replaying the frames so the fresh Merkle tree is
        # seeded by the writes below.
        disk = AuthenticatedDisk(disk)
    frames_path = os.path.join(directory, _FRAMES)
    expected_bytes = params.num_locations * cop.frame_size
    with open(frames_path, "rb") as f:
        data = f.read()
    if len(data) != expected_bytes:
        raise StorageError(
            f"frames file is {len(data)} bytes, expected {expected_bytes}"
        )
    batch = 4096
    for start in range(0, params.num_locations, batch):
        stop = min(start + batch, params.num_locations)
        disk.write_range(
            start,
            [
                data[pos * cop.frame_size : (pos + 1) * cop.frame_size]
                for pos in range(start, stop)
            ],
        )

    with open(os.path.join(directory, _SEALED), "rb") as f:
        sealed = f.read()
    sealing = CipherSuite(
        b"snapshot-sealing:" + manifest["cipher_backend"].encode(),
        backend="blake2",
        rng=rng,
    )
    inner = sealing.decrypt_page(sealed)
    trusted = cop.suite.decrypt_page(inner)

    # Cache must be filled before the engine's invariant checks; fill with
    # placeholders, then let the decoder install the real pages.
    cop.cache.fill([Page.dummy() for _ in range(params.cache_capacity)])
    engine = RetrievalEngine(
        params, cop, disk, journal=journal, read_retry=read_retry
    )
    db = PirDatabase(params, cop, disk, engine)
    _decode_trusted_state(trusted, db)
    return db


def resume_reshuffle(
    db: PirDatabase,
    directory: str,
    batch_size: int = 16,
    journal=None,
    idle_interval: float = 0.001,
    background: bool = False,
):
    """Reattach a mid-epoch reshuffle driver from a snapshot's sidecar.

    Returns the driver (also installed as ``db.reshuffle``) positioned at
    the saved frontier, or None when the snapshot carried no active epoch.
    With ``background=True`` the worker starts immediately, so the epoch
    continues mixing in idle slots the moment the replica begins serving —
    this is the warm-replica bootstrap: the joiner inherits the primary's
    partial pass instead of paying a cold O(n log² n) shuffle.  Call
    ``driver.recover()`` afterwards when a reshuffle journal might hold a
    torn batch (crash restarts).
    """
    blob = load_sealed_sidecar(db, directory, _RESHUFFLE_SIDECAR)
    if blob is None:
        return None
    from ..shuffle.online import OnlineReshuffler

    if db.reshuffle is not None:
        db.reshuffle.close()
    driver = OnlineReshuffler(
        db, batch_size=batch_size, journal=journal,
        idle_interval=idle_interval, metrics=db.metrics, tracer=db.tracer,
    )
    driver.restore_state(blob)
    db.reshuffle = driver
    if background and driver.active:
        driver.start()
    return driver


def save_sealed_sidecar(db: PirDatabase, directory: str, name: str,
                        data: bytes) -> None:
    """Seal an auxiliary trusted blob next to a snapshot.

    The replication tier checkpoints its applied-sequence vector this way
    (``<name>.sealed`` beside ``sealed.bin``), so a backend rebuilt from
    the snapshot knows where each peer's backlog replay must resume — the
    "``load_snapshot`` + journal roll-forward + replication backlog"
    catch-up sequence.  Sealed under the coprocessor's master-key suite:
    the host stores it but cannot read or undetectably alter it.
    """
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, name + ".sealed"), "wb") as handle:
        handle.write(db.cop.seal_blob(bytes(data)))


def load_sealed_sidecar(db: PirDatabase, directory: str,
                        name: str) -> Optional[bytes]:
    """Unseal a sidecar written by :func:`save_sealed_sidecar`.

    Returns None when the sidecar does not exist (e.g. a snapshot from
    before replication was enabled); raises
    :class:`~repro.errors.AuthenticationError` on tampering or a wrong
    master key.
    """
    path = os.path.join(directory, name + ".sealed")
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        return db.cop.unseal_blob(handle.read())


def bootstrap_replica(
    db: PirDatabase,
    directory: str,
    master_key: bytes = b"repro-master-key",
    **load_kw,
) -> PirDatabase:
    """Clone ``db`` into an independent read replica via a snapshot.

    The cluster failover path (DESIGN.md §13): snapshot the primary into
    ``directory``, restore a fresh instance from it, and serve clients
    from the copy when the primary dies.  From the moment of the split
    each instance is its own serving lineage — relocation randomness is
    memoryless, so the replica answering a session's queries is
    indistinguishable (to the host and to the client) from the primary
    having answered them, and no RNG state needs to transfer.

    ``load_kw`` forwards to :func:`load_snapshot` (``seed``, ``journal``,
    ``read_retry``, ...).  The snapshot directory stays on disk — a later
    member can re-bootstrap from it, though a *fresher* snapshot should
    be preferred once the replica has served mutations.

    When the primary is mid-way through an online reshuffle epoch, the
    replica adopts the epoch at its saved frontier (a foreground driver is
    attached via :func:`resume_reshuffle`; ``start()`` or re-attach with
    ``background=True`` to continue it on a worker) — joining mid-epoch
    costs a snapshot restore, never a cold shuffle.
    """
    save_snapshot(db, directory)
    replica = load_snapshot(directory, master_key=master_key, **load_kw)
    resume_reshuffle(replica, directory)
    return replica
