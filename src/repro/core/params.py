"""System parameters and the privacy/cost trade-off math (Eqs. 1-6, Table 1).

Symbols (Table 1):

====  ==========================================================
n     database size in pages (disk locations, after padding)
k     block size: pages read round-robin per request
N     number of blocks ``n / k``
m     cache capacity in pages
B     page size in bytes
T     scan period ``n / k``: requests needed to touch every
      location once via the round-robin schedule
c     privacy parameter of c-approximate PIR (Definition 1)
====  ==========================================================

Key relations:

* Eq. 1  — probability the cached page returns to disk at request t:
  ``P_t = (1 - 1/m)^(t-1) * (1/m)`` (geometric, memoryless).
* Eq. 2  — probability it lands on a specific location of the block
  accessed at t: ``P_t / k``.
* Eqs. 3-4 — extreme location probabilities obtained by summing the
  geometric series over scan periods.
* Eq. 5  — their ratio ``1 / (1-1/m)^(T-1) = c``.
* Eq. 6  — solved for the security parameter:
  ``k = n / (log(1/c)/log(1-1/m) + 1)``.

This module solves those equations with explicit rounding rules (rounding k
*up* can only improve privacy, i.e. lower the achieved c) and packages the
result as an immutable :class:`SystemParameters`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "SystemParameters",
    "scan_period_for_privacy",
    "required_block_size",
    "achieved_privacy",
    "eviction_probability",
    "landing_probability",
]


# ---------------------------------------------------------------------------
# Scalar relations
# ---------------------------------------------------------------------------


def _validate_cache(m: int) -> None:
    if m < 2:
        raise ConfigurationError(
            "cache capacity m must be at least 2 (with m=1 the eviction law "
            "degenerates and only the trivial k=n scheme is private)"
        )


def scan_period_for_privacy(m: int, c: float) -> float:
    """Eq. 5/6 intermediate: the (real-valued) scan period T achieving privacy c.

    ``T = log(1/c) / log(1 - 1/m) + 1``.  ``c = 1`` gives ``T = 1`` (every
    request scans the whole database: trivial PIR).
    """
    _validate_cache(m)
    if c < 1:
        raise ConfigurationError(f"privacy parameter c must be >= 1, got {c}")
    if c == 1:
        return 1.0
    return math.log(1.0 / c) / math.log(1.0 - 1.0 / m) + 1.0


def required_block_size(n: int, m: int, c: float) -> int:
    """Eq. 6: the smallest block size k meeting privacy target c.

    Rounded up, because a larger k shortens the scan period T and therefore
    lowers (improves) the achieved c.
    """
    if n <= 0:
        raise ConfigurationError("database size n must be positive")
    period = scan_period_for_privacy(m, c)
    k = math.ceil(n / period)
    return max(1, min(n, k))


def achieved_privacy(n: int, m: int, k: int) -> float:
    """Eq. 5 rearranged: the privacy level c actually provided by (n, m, k).

    ``c = 1 / (1 - 1/m)^(T - 1)`` with ``T = n / k``.
    """
    _validate_cache(m)
    if not 1 <= k <= n:
        raise ConfigurationError(f"block size k={k} must lie in [1, n={n}]")
    period = n / k
    return (1.0 - 1.0 / m) ** (-(period - 1.0))


def eviction_probability(m: int, t: int) -> float:
    """Eq. 1: probability a page that entered the cache at t=0 leaves at request t."""
    _validate_cache(m)
    if t < 1:
        raise ConfigurationError("eviction time t starts at 1")
    return (1.0 - 1.0 / m) ** (t - 1) / m


def landing_probability(m: int, k: int, t: int) -> float:
    """Eq. 2: probability the page lands on one specific location of block t."""
    if k < 1:
        raise ConfigurationError("block size k must be positive")
    return eviction_probability(m, t) / k


# ---------------------------------------------------------------------------
# Packaged parameter set
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemParameters:
    """A fully resolved configuration of the c-approximate PIR scheme.

    Use :meth:`solve` to derive k and the padded layout from a privacy
    target, or :meth:`from_block_size` when k itself is the experimental
    variable.
    """

    num_user_pages: int
    reserve_pages: int
    cache_capacity: int
    block_size: int
    num_locations: int
    page_capacity: int
    target_c: float

    def __post_init__(self) -> None:
        if self.num_user_pages <= 0:
            raise ConfigurationError("need at least one user page")
        if self.reserve_pages < 0:
            raise ConfigurationError("reserve_pages must be non-negative")
        _validate_cache(self.cache_capacity)
        if self.page_capacity < 0:
            raise ConfigurationError("page_capacity must be non-negative")
        if self.num_locations % self.block_size != 0:
            raise ConfigurationError(
                "num_locations must be a multiple of block_size (pad with dummies)"
            )
        if self.num_locations < self.num_user_pages + self.reserve_pages:
            raise ConfigurationError("locations cannot be fewer than stored pages")
        if self.num_locations < self.block_size + 2:
            raise ConfigurationError(
                "need num_locations >= block_size + 2 so the random-page "
                "rejection loop of Retrieve() can terminate; for k = n use "
                "the trivial-PIR baseline instead"
            )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def solve(
        cls,
        num_user_pages: int,
        cache_capacity: int,
        target_c: float,
        page_capacity: int = 1024,
        reserve_fraction: float = 0.0,
    ) -> "SystemParameters":
        """Derive (k, padded n) from a privacy target c via Eq. 6."""
        if not 0 <= reserve_fraction < 1000:
            raise ConfigurationError("reserve_fraction out of sane range [0, 1000)")
        if target_c <= 1:
            raise ConfigurationError(
                "target_c must be > 1; c = 1 is perfect privacy, i.e. reading "
                "the whole database per request — use repro.baselines.TrivialPir"
            )
        reserve = math.ceil(num_user_pages * reserve_fraction)
        base = num_user_pages + reserve
        # Eq. 6 gives a real-valued k; padding n up to a multiple of k changes
        # T = n/k, so walk k upward until the *padded* layout still meets c.
        k = required_block_size(base, cache_capacity, target_c)
        while True:
            num_locations = k * math.ceil(base / k)
            if achieved_privacy(num_locations, cache_capacity, k) <= target_c:
                break
            k += 1
            if k > base:
                raise ConfigurationError(
                    f"no block size k <= n meets c={target_c} with m={cache_capacity}; "
                    "increase the cache or relax the privacy target"
                )
        # Guarantee the rejection-sampling headroom by adding one more block
        # of dummies if the target c pushed k right up against n.
        while num_locations < k + 2:
            num_locations += k
        return cls(
            num_user_pages=num_user_pages,
            reserve_pages=num_locations - num_user_pages,
            cache_capacity=cache_capacity,
            block_size=k,
            num_locations=num_locations,
            page_capacity=page_capacity,
            target_c=target_c,
        )

    @classmethod
    def from_block_size(
        cls,
        num_user_pages: int,
        cache_capacity: int,
        block_size: int,
        page_capacity: int = 1024,
        reserve_fraction: float = 0.0,
    ) -> "SystemParameters":
        """Fix k directly and compute the privacy that follows from it."""
        reserve = math.ceil(num_user_pages * reserve_fraction)
        base = num_user_pages + reserve
        num_locations = block_size * math.ceil(base / block_size)
        while num_locations < block_size + 2:
            num_locations += block_size
        c = achieved_privacy(num_locations, cache_capacity, block_size)
        return cls(
            num_user_pages=num_user_pages,
            reserve_pages=num_locations - num_user_pages,
            cache_capacity=cache_capacity,
            block_size=block_size,
            num_locations=num_locations,
            page_capacity=page_capacity,
            target_c=c,
        )

    # -- derived quantities --------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of round-robin blocks N = n / k."""
        return self.num_locations // self.block_size

    @property
    def scan_period(self) -> int:
        """T = n / k: requests needed to sweep every disk location once."""
        return self.num_blocks

    @property
    def total_pages(self) -> int:
        """All logical pages: disk locations + pages resident in the cache."""
        return self.num_locations + self.cache_capacity

    @property
    def achieved_c(self) -> float:
        """The privacy level actually provided after integer rounding of k."""
        return achieved_privacy(
            self.num_locations, self.cache_capacity, self.block_size
        )

    @property
    def free_pages(self) -> int:
        """Padding/reserve pages available for insertions at setup time."""
        return self.num_locations - self.num_user_pages

    def meets_target(self) -> bool:
        """True iff rounding did not weaken privacy below the requested c."""
        return self.achieved_c <= self.target_c * (1 + 1e-12)

    def describe(self) -> str:
        return (
            f"SystemParameters(n={self.num_locations}, k={self.block_size}, "
            f"T={self.scan_period}, m={self.cache_capacity}, "
            f"B={self.page_capacity}, c_target={self.target_c:.4f}, "
            f"c_achieved={self.achieved_c:.4f})"
        )
