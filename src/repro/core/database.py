"""High-level public API: a private page store over untrusted storage.

:class:`PirDatabase` wires together the whole stack — parameters (Eq. 6),
secure coprocessor, encrypted disk, initial oblivious permutation, retrieval
engine — behind a small surface:

>>> db = PirDatabase.create([b"alpha", b"beta", b"gamma"], cache_capacity=2,
...                         target_c=2.0, page_capacity=16, seed=7)
>>> db.query(1)
b'beta'

Everything observable by the server (disk trace, virtual-clock charges) is
reachable via :attr:`trace` and :attr:`clock` for analysis.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .engine import BatchOp, RetrievalEngine
from .params import SystemParameters
from ..crypto.pipeline import PIPELINE_MODES, KeystreamPipeline
from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError, PageDeletedError
from ..hardware.cache import RANDOM_POLICY
from ..hardware.coprocessor import SecureCoprocessor, SecureStorageReport
from ..hardware.specs import HardwareSpec
from ..obs.tracer import Tracer
from ..shuffle.oblivious import ObliviousShuffler
from ..shuffle.permutation import Permutation
from ..sim.clock import VirtualClock
from ..storage.disk import DiskStore
from ..storage.merkle import AuthenticatedDisk
from ..storage.page import Page
from ..storage.tiered import TieredDiskStore
from ..storage.trace import AccessTrace

__all__ = ["PirDatabase"]

SETUP_DIRECT = "direct"
SETUP_OBLIVIOUS = "oblivious"


class PirDatabase:
    """A c-approximate-PIR protected page database (the paper's full system)."""

    def __init__(
        self,
        params: SystemParameters,
        coprocessor: SecureCoprocessor,
        disk: DiskStore,
        engine: RetrievalEngine,
    ):
        self.params = params
        self.cop = coprocessor
        self.disk = disk
        self.engine = engine
        # Optional OnlineReshuffler attached by begin_reshuffle() (or by
        # snapshot resume); close() tears it down with the rest.
        self.reshuffle = None
        # Optional ReplicationLog (duck-typed: anything with emit()).  Set
        # by the cluster tier; every public operation then emits one sealed
        # logical record — reads emit "noop" covers so the stream never
        # reveals the write pattern (see repro.cluster.replication).
        self.replication = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        cache_capacity: int,
        target_c: float = 2.0,
        page_capacity: int = 1024,
        reserve_fraction: float = 0.0,
        block_size: Optional[int] = None,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        cache_policy: str = RANDOM_POLICY,
        setup_mode: str = SETUP_DIRECT,
        trace_enabled: bool = True,
        master_key: bytes = b"repro-master-key",
        enforce_memory_limit: bool = False,
        disk_factory=None,
        rollback_protection: bool = False,
        journal=None,
        read_retry=None,
        tracer: Optional[Tracer] = None,
        metrics=None,
        keystream_pipeline: Optional[str] = None,
        pipeline_max_bytes: Optional[int] = None,
        hot_tier_frames: Optional[int] = None,
        hot_tier_journal=None,
    ) -> "PirDatabase":
        """Build, encrypt, permute and warm up a database from raw records.

        Parameters mirror the paper's knobs: ``cache_capacity`` is m,
        ``target_c`` the privacy parameter (ignored when ``block_size``
        pins k directly), ``page_capacity`` is B, ``reserve_fraction``
        pre-allocates dummy pages for future insertions (§4.3).
        ``setup_mode`` selects the faithful O(n log^2 n) oblivious shuffle
        or the fast trusted-ingest permutation (DESIGN.md §3).
        ``disk_factory(num_locations, frame_size, timing, clock, trace)``
        substitutes a different untrusted store, e.g.
        :class:`repro.storage.filedisk.FileDiskStore` for real file I/O.
        ``rollback_protection=True`` wraps the store in a Merkle-tree
        freshness layer (detects a *malicious* server replaying stale
        frames — hardening beyond the paper's honest-but-curious model).
        ``journal`` (e.g. :class:`repro.core.journal.MemoryJournal`)
        enables crash-consistent write-back, and ``read_retry`` (a
        :class:`repro.faults.retry.RetryPolicy`) retries transient or
        unauthentic block reads with deterministic backoff.
        ``tracer`` (a :class:`repro.obs.tracer.Tracer`) threads per-phase
        span instrumentation through the coprocessor, disk and engine —
        it is bound to the shared virtual clock so spans carry both wall
        and deterministic virtual durations, and it is reset after setup
        so the recorded phases cover requests only.  ``metrics`` (a
        :class:`repro.obs.registry.MetricsRegistry`) gives the engine's
        counters and latency histogram a process-wide home.
        ``keystream_pipeline`` enables idle-time decrypt-keystream
        prefetch (:mod:`repro.crypto.pipeline`): ``"sync"`` computes the
        next block's keystreams at the end of each request, ``"background"``
        moves the computation onto a worker thread; either way the frames,
        RNG streams and virtual clock are identical to running without
        it.  ``pipeline_max_bytes`` bounds the cached keystream bytes.
        ``hot_tier_frames`` fronts the untrusted store with an in-memory
        ciphertext LRU of that many frames (:class:`TieredDiskStore`):
        hot hits skip the cold store's seek/transfer charge while leaving
        the recorded access trace byte-identical.  ``hot_tier_journal``
        (a path) makes the tier's membership survive restarts.
        """
        if not records:
            raise ConfigurationError("records must be non-empty")
        if setup_mode not in (SETUP_DIRECT, SETUP_OBLIVIOUS):
            raise ConfigurationError(f"unknown setup_mode {setup_mode!r}")
        if keystream_pipeline is not None and keystream_pipeline not in PIPELINE_MODES:
            raise ConfigurationError(
                f"unknown keystream_pipeline {keystream_pipeline!r}; "
                f"expected None or one of {PIPELINE_MODES}"
            )
        if block_size is not None:
            params = SystemParameters.from_block_size(
                len(records), cache_capacity, block_size,
                page_capacity=page_capacity, reserve_fraction=reserve_fraction,
            )
        else:
            params = SystemParameters.solve(
                len(records), cache_capacity, target_c,
                page_capacity=page_capacity, reserve_fraction=reserve_fraction,
            )

        rng = SecureRandom(seed)
        clock = VirtualClock()
        trace = AccessTrace(enabled=trace_enabled)
        if tracer is not None:
            tracer.bind_clock(clock)
        cop = SecureCoprocessor(
            num_pages=params.total_pages,
            cache_capacity=params.cache_capacity,
            block_size=params.block_size,
            page_capacity=params.page_capacity,
            master_key=master_key,
            spec=spec,
            clock=clock,
            rng=rng,
            cipher_backend=cipher_backend,
            cache_policy=cache_policy,
            enforce_memory_limit=enforce_memory_limit,
            tracer=tracer,
        )
        if disk_factory is None:
            disk = DiskStore(
                num_locations=params.num_locations,
                frame_size=cop.frame_size,
                timing=cop.spec.disk,
                clock=clock,
                trace=trace,
                tracer=tracer,
            )
        else:
            # The factory signature predates the tracer; attach it after
            # construction so existing factories keep working unchanged.
            # Wrappers (FaultyDiskStore etc.) expose the wrapped store via
            # ``inner`` — walk down so the store that actually performs the
            # I/O emits the disk spans.
            disk = disk_factory(
                params.num_locations, cop.frame_size, cop.spec.disk, clock, trace
            )
            if tracer is not None:
                store = disk
                while store is not None:
                    store.tracer = tracer
                    store = getattr(store, "inner", None)
        if hot_tier_frames is not None:
            # Inside the freshness layer (when enabled): the Merkle tree
            # authenticates what the engine reads regardless of which tier
            # served the bytes.
            disk = TieredDiskStore(
                disk, hot_capacity=hot_tier_frames,
                journal_path=hot_tier_journal, metrics=metrics,
            )
        if rollback_protection:
            disk = AuthenticatedDisk(disk)

        # Logical pages: ids [0, n_user) are live records, [n_user, N) are
        # free reserve/padding pages, [N, N + m) start inside the cache.
        disk_pages: List[Page] = []
        for page_id in range(params.num_locations):
            if page_id < len(records):
                disk_pages.append(Page(page_id, bytes(records[page_id])))
            else:
                disk_pages.append(Page(page_id, b"", deleted=True))

        if setup_mode == SETUP_OBLIVIOUS:
            layout = cls._oblivious_layout(cop, disk_pages, clock,
                                           tracer=tracer, metrics=metrics)
        else:
            permutation = Permutation.random(params.num_locations, rng.spawn("setup"))
            layout = [0] * params.num_locations
            for page_id in range(params.num_locations):
                layout[permutation.apply(page_id)] = page_id

        if keystream_pipeline is not None:
            pipeline_options = {}
            if pipeline_max_bytes is not None:
                pipeline_options["max_bytes"] = pipeline_max_bytes
            cop.attach_pipeline(KeystreamPipeline(
                background=(keystream_pipeline == "background"),
                metrics=metrics,
                **pipeline_options,
            ))

        page_by_id = {page.page_id: page for page in disk_pages}
        batch = 4096
        for start in range(0, params.num_locations, batch):
            stop = min(start + batch, params.num_locations)
            frames = [cop.seal(page_by_id[layout[pos]]) for pos in range(start, stop)]
            disk.write_range(start, frames)
            # Seed the prefetcher with the initial frames' nonces so the
            # very first scan already hits (no-op without a pipeline).
            cop.note_frames_written(range(start, stop), frames)

        cache_pages = [
            Page(params.num_locations + slot, b"", deleted=True)
            for slot in range(params.cache_capacity)
        ]
        cop.cache.fill(cache_pages)

        for position, page_id in enumerate(layout):
            cop.page_map.set_disk(page_id, position)
        for page in disk_pages:
            if page.deleted:
                cop.page_map.mark_deleted(page.page_id)
        for slot, page in enumerate(cache_pages):
            cop.page_map.set_cached(page.page_id, slot)
            cop.page_map.mark_deleted(page.page_id)

        engine = RetrievalEngine(
            params, cop, disk, journal=journal, read_retry=read_retry,
            tracer=tracer, metrics=metrics,
        )
        # Warm the pipeline for the first request's block during setup
        # (before the tracer reset, so the span is dropped with the rest
        # of the setup trace).
        engine.prefetch_next()
        if tracer is not None:
            # Setup wrote the whole database through the instrumented disk;
            # drop those spans so the trace covers requests only (that is
            # what CostModelCheck compares against Eq. 8).
            tracer.reset()
        return cls(params, cop, disk, engine)

    @staticmethod
    def _oblivious_layout(
        cop: SecureCoprocessor, disk_pages: List[Page], clock: VirtualClock,
        tracer: Optional[Tracer] = None, metrics=None,
    ) -> List[int]:
        """Run the tagged oblivious sort on a scratch area and return the layout."""
        shuffler = ObliviousShuffler(cop.suite, cop.rng.spawn("shuffle"),
                                     cop.page_capacity,
                                     tracer=tracer, metrics=metrics)
        scratch = DiskStore(
            num_locations=len(disk_pages),
            frame_size=shuffler.tagged_frame_size,
            timing=cop.spec.disk,
            clock=clock,
            trace=AccessTrace(enabled=False),
        )
        return shuffler.shuffle(disk_pages, scratch)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def query(self, page_id: int) -> bytes:
        """Privately retrieve the payload of ``page_id``.

        The request is always executed in full (so the server-side trace is
        independent of page state) before a deleted page raises
        :class:`PageDeletedError`.
        """
        page = self.engine.retrieve(page_id)
        # Emit before raising: the engine already executed the full trace,
        # so the cover record must be appended either way or the stream
        # would fall out of step with the request count.
        self._emit("noop")
        if self.cop.page_map.is_deleted(page_id):
            raise PageDeletedError(f"page {page_id} is deleted")
        return page.payload

    def update(self, page_id: int, payload: bytes) -> None:
        """Replace the payload of an existing page (§4.3 modification)."""
        self.engine.modify(page_id, payload)
        self._emit("write", page_id, payload)

    def insert(self, payload: bytes) -> int:
        """Add a new page, consuming one reserved free slot; returns its id."""
        new_id = self.engine.insert(payload)
        # Replicated as a write at the chosen id: peers revive the same
        # reserve page via modify(), so ids converge across the cluster.
        self._emit("write", new_id, payload)
        return new_id

    def delete(self, page_id: int) -> None:
        """Remove a page; its storage becomes available to ``insert`` (§4.3)."""
        self.engine.delete(page_id)
        self._emit("delete", page_id)

    def touch(self) -> None:
        """Issue a dummy request to keep the background reshuffle mixing."""
        self.engine.touch()
        self._emit("noop")

    def _emit(self, kind: str, page_id: int = 0, payload: bytes = b"") -> None:
        if self.replication is not None:
            self.replication.emit(kind, page_id, payload)

    def run_batch(self, ops: Sequence[BatchOp],
                  window: Optional[int] = None) -> List[object]:
        """Execute a batch through the fused one-disk-pass-per-window path.

        Ops are grouped into round-robin windows of up to ``k`` operations;
        each window reads the k-frame block once and commits one journaled
        write-back (see :meth:`RetrievalEngine.run_batch`).  Returns one
        result per op, positionally: the payload bytes for ``query``, the
        new page id for ``insert``, ``None`` for update/delete/touch, or
        the exception instance for a failed slot.  Payloads are
        byte-identical to running the same op sequence through the serial
        methods — only the physical trace differs.
        """
        results = self.engine.run_batch(ops, window=window)
        if self.replication is not None:
            for op, item in zip(ops, results):
                if isinstance(item, Exception):
                    self._emit("noop")
                elif op.kind == "update":
                    self._emit("write", op.page_id, op.payload)
                elif op.kind == "insert":
                    self._emit("write", item, op.payload)
                elif op.kind == "delete":
                    self._emit("delete", op.page_id)
                else:  # query / touch
                    self._emit("noop")
        return [
            bytes(item.payload) if isinstance(item, Page) else item
            for item in results
        ]

    def recover(self):
        """Repair a torn write-back after a crash (see engine ``recover``).

        Idempotent and cheap when nothing was in flight; returns the
        engine's :class:`~repro.core.engine.RecoveryReport`.
        """
        return self.engine.recover()

    def begin_reshuffle(
        self,
        batch_size: int = 16,
        rotate_to: Optional[bytes] = None,
        journal=None,
        background: bool = False,
        idle_interval: float = 0.001,
    ):
        """Start an online background re-permutation epoch (DESIGN.md §15).

        Builds an :class:`~repro.shuffle.online.OnlineReshuffler`, begins a
        new epoch (optionally piggybacking a master-key rotation via
        ``rotate_to``), and — with ``background=True`` — starts its worker
        thread so comparator batches run in idle gaps between requests.
        Foreground callers drive it with ``db.reshuffle.step()`` /
        ``run()`` instead.  ``journal`` must be a *separate* journal from
        the engine's (each state machine owns its slot).  Returns the
        driver, also available as :attr:`reshuffle`.
        """
        from ..shuffle.online import OnlineReshuffler

        if self.reshuffle is not None:
            if self.reshuffle.active:
                raise ConfigurationError(
                    "a re-permutation epoch is already in progress"
                )
            self.reshuffle.close()
        driver = OnlineReshuffler(
            self, batch_size=batch_size, journal=journal,
            idle_interval=idle_interval,
            metrics=self.metrics, tracer=self.tracer,
        )
        self.reshuffle = driver
        driver.begin(rotate_to=rotate_to)
        if background:
            driver.start()
        return driver

    def close(self) -> None:
        """Stop *all* background workers and release their resources.

        Covers the online reshuffle driver and the keystream prefetch
        worker.  Idempotent; a database without either has nothing to
        release.  Usable as a context manager:
        ``with PirDatabase.create(...) as db:``.
        """
        if self.reshuffle is not None:
            self.reshuffle.close()
        if self.cop.pipeline is not None:
            self.cop.pipeline.close()
        flush = getattr(self.disk, "flush", None)
        if flush is not None:
            flush()

    def __enter__(self) -> "PirDatabase":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def rotate_master_key(self, new_master_key: bytes) -> None:
        """Online key rotation, piggybacked on the continuous reshuffle.

        Completes automatically after one scan period (``params.scan_period``
        further requests); check progress via
        ``engine.rotation_requests_remaining``.
        """
        self.engine.begin_key_rotation(new_master_key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self.cop.clock

    @property
    def trace(self) -> AccessTrace:
        return self.disk.trace

    @property
    def tracer(self) -> Tracer:
        """The phase tracer threaded through the stack (NULL when disabled)."""
        return self.engine.tracer

    @property
    def metrics(self):
        """The metrics registry the engine publishes into (None if unset)."""
        return self.engine.metrics

    @property
    def achieved_c(self) -> float:
        """Privacy level actually enforced by the chosen k (Eq. 5)."""
        return self.params.achieved_c

    @property
    def num_pages(self) -> int:
        """User-visible page count (live + deleted user ids)."""
        return self.params.num_user_pages

    def storage_report(self) -> SecureStorageReport:
        """Secure-memory footprint, the measured counterpart of Eq. 7."""
        return self.cop.storage_report()

    def consistency_check(self) -> None:
        """Verify disk/cache/page-map agreement (test & debugging aid).

        Decrypts the whole database, so only call this on small instances.
        Raises :class:`ConfigurationError` on any mismatch.
        """
        pm = self.cop.page_map
        seen = set()
        for location in range(self.disk.num_locations):
            frame = self.disk.peek(location)
            if frame is None:
                raise ConfigurationError(f"location {location} uninitialised")
            page = self.cop.unseal(frame)
            entry = pm.lookup(page.page_id)
            if entry.in_cache or entry.position != location:
                raise ConfigurationError(
                    f"page {page.page_id} stored at {location} but mapped to {entry}"
                )
            seen.add(page.page_id)
        for page in self.cop.cache:
            entry = pm.lookup(page.page_id)
            if not entry.in_cache:
                raise ConfigurationError(f"cached page {page.page_id} mapped to disk")
            seen.add(page.page_id)
        if len(seen) != self.params.total_pages:
            raise ConfigurationError(
                f"{len(seen)} distinct pages found, expected {self.params.total_pages}"
            )
        if pm.cached_count != self.params.cache_capacity:
            raise ConfigurationError("page map cached-count drifted from m")

    def content_digest(self) -> bytes:
        """Digest of the logical content: page id → liveness + payload.

        Replicas share one logical database but deliberately *divergent*
        physical layouts (independent RNG lineages relocate pages
        differently on every request), so replica convergence is defined
        over this digest — exactly the state a client can observe — and
        never over disk bytes.  Decrypts the whole store; like
        :meth:`consistency_check`, only call it on small instances.
        """
        import hashlib

        pm = self.cop.page_map
        pages = {}
        for location in range(self.disk.num_locations):
            frame = self.disk.peek(location)
            if frame is None:
                raise ConfigurationError(f"location {location} uninitialised")
            page = self.cop.unseal(frame)
            pages[page.page_id] = page
        for page in self.cop.cache:
            pages[page.page_id] = page
        digest = hashlib.sha256()
        for page_id in sorted(pages):
            page = pages[page_id]
            deleted = pm.is_deleted(page_id)
            digest.update(page_id.to_bytes(8, "big"))
            digest.update(b"\x01" if deleted else b"\x00")
            payload = b"" if deleted else bytes(page.payload)
            digest.update(len(payload).to_bytes(4, "big"))
            digest.update(payload)
        return digest.digest()

    def expected_query_time(self) -> float:
        """Eq. 8 evaluated for this configuration's spec and frame size."""
        spec = self.cop.spec
        frame = self.cop.frame_size
        k = self.params.block_size
        per_byte = (
            1.0 / spec.disk.read_bandwidth
            + 1.0 / spec.link_bandwidth
            + 1.0 / spec.crypto_throughput
        )
        return 4 * spec.disk.seek_time + 2 * (k + 1) * frame * per_byte

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PirDatabase({self.params.describe()})"
