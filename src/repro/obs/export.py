"""JSONL import/export for traces, metrics and conformance reports.

One JSON object per line, every line carrying a ``kind`` discriminator
(``meta`` | ``phase`` | ``span`` | ``counter`` | ``gauge`` | ``histogram``
| ``costcheck``), so one file can hold a whole run's observability output
and consumers can filter by kind.  This is the interchange format between
``python -m repro metrics``, ``benchmarks/bench_engine.py`` and the CI
perf gate's ``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .registry import MetricsRegistry
from .tracer import Tracer
from ..errors import ConfigurationError

__all__ = [
    "phase_rows",
    "span_rows",
    "run_rows",
    "write_jsonl",
    "read_jsonl",
    "rows_by_kind",
]


def phase_rows(tracer: Tracer) -> List[Dict[str, object]]:
    """One ``phase`` row per span name with count/wall/virtual/byte totals."""
    return [
        dict({"kind": "phase", "name": name}, **total.as_dict())
        for name, total in sorted(tracer.phase_totals().items())
    ]


def span_rows(tracer: Tracer) -> List[Dict[str, object]]:
    """One ``span`` row per retained raw span, in completion order."""
    return [dict({"kind": "span"}, **span.as_dict()) for span in tracer.spans]


def run_rows(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, object]] = None,
    spans: bool = False,
) -> List[Dict[str, object]]:
    """Assemble a full run export: meta line, phases, metrics, raw spans."""
    rows: List[Dict[str, object]] = []
    if meta is not None:
        rows.append(dict({"kind": "meta"}, **meta))
    if tracer is not None:
        rows.extend(phase_rows(tracer))
        if spans:
            rows.extend(span_rows(tracer))
    if registry is not None:
        rows.extend(registry.rows())
    return rows


def write_jsonl(path: str, rows: Iterable[Dict[str, object]]) -> int:
    """Write rows to ``path``; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a JSONL file, skipping blank lines; raises on malformed JSON."""
    rows: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{number}: malformed JSONL ({exc})"
                ) from exc
    return rows


def rows_by_kind(
    rows: Iterable[Dict[str, object]], kind: str
) -> List[Dict[str, object]]:
    """Filter loaded rows down to one ``kind``."""
    return [row for row in rows if row.get("kind") == kind]
