"""Per-query phase tracing with a no-op fast path.

A :class:`Tracer` produces nested :class:`Span`\\ s for the canonical query
phases (position-map lookup, k+1 frame read, decrypt, MAC verify, cache op,
eviction, re-encrypt, journal seal, write-back, fsync — see DESIGN.md §9 for
the full taxonomy).  Every span records

* **wall time** (``time.perf_counter``) — what a perf-regression gate cares
  about, and
* **virtual time** — the deterministic simulated cost charged to the shared
  :class:`~repro.sim.clock.VirtualClock`, when one is bound via
  :meth:`Tracer.bind_clock`.  Virtual durations are byte-identical across
  machines and are what :class:`~repro.obs.costcheck.CostModelCheck`
  compares against the Eq. 8 predictions.

Spans are context managers and close correctly on exceptions (the ``error``
field records the exception type), so fault-injected runs — a
``FaultyDiskStore`` raising mid-write-back, a ``SimulatedCrash`` — never
leave the tracer's stack unbalanced.

Disabled tracers are free-by-construction: :meth:`Tracer.span` returns a
shared singleton whose ``__enter__``/``__exit__`` do nothing, so the only
cost on the hot path is one method call per instrumentation site.
Components default to the module-level :data:`NULL_TRACER`.

Two detail levels keep the hot path lean: ``DETAIL_PHASE`` (the default)
emits only the per-phase spans listed above; ``DETAIL_FINE`` additionally
emits per-frame crypto spans (``crypto.mac_verify``, ``crypto.keystream``)
— useful for drilling into the crypto engine, far too hot for benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError

__all__ = [
    "DETAIL_PHASE",
    "DETAIL_FINE",
    "Span",
    "PhaseTotal",
    "Tracer",
    "NULL_TRACER",
]

DETAIL_PHASE = "phase"
DETAIL_FINE = "fine"
_DETAILS = (DETAIL_PHASE, DETAIL_FINE)


class _NoopSpan:
    """Shared do-nothing span for disabled tracers and filtered detail."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


class Span:
    """One timed phase; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name", "nbytes", "depth", "index", "parent_index",
        "wall_start", "wall_end", "virtual_start", "virtual_end",
        "error", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, nbytes: int):
        self._tracer = tracer
        self.name = name
        self.nbytes = nbytes
        self.depth = 0
        self.index = 0
        self.parent_index: Optional[int] = None
        self.wall_start = 0.0
        self.wall_end = 0.0
        self.virtual_start = 0.0
        self.virtual_end = 0.0
        self.error: Optional[str] = None

    @property
    def wall_seconds(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def virtual_seconds(self) -> float:
        return self.virtual_end - self.virtual_start

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._close(self)
        return False

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent_index,
            "depth": self.depth,
            "wall_s": self.wall_seconds,
            "virtual_s": self.virtual_seconds,
            "bytes": self.nbytes,
            "error": self.error,
        }


@dataclass
class PhaseTotal:
    """Aggregate of all spans sharing one name."""

    count: int = 0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    nbytes: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "wall_s": self.wall_seconds,
            "virtual_s": self.virtual_seconds,
            "bytes": self.nbytes,
            "errors": self.errors,
        }


class Tracer:
    """Produces nested spans; aggregates per-phase totals as spans close.

    Not thread-safe by design (one tracer per engine/thread — the engine
    itself is single-threaded); the :class:`~repro.obs.registry
    .MetricsRegistry` is the thread-safe aggregation point.

    ``max_spans`` bounds the raw span list (totals keep accumulating past
    it), so long runs cannot exhaust memory.  ``slowdown`` maps span names
    to synthetic busy-wait factors — e.g. ``{"decrypt": 2.0}`` makes every
    decrypt span take twice its real wall time.  It exists so the CI perf
    gate can be *demonstrated* to fail (see ``benchmarks/bench_engine.py
    --slow-phase``); never set it outside such drills.
    """

    def __init__(
        self,
        enabled: bool = True,
        detail: str = DETAIL_PHASE,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = 100_000,
    ):
        if detail not in _DETAILS:
            raise ConfigurationError(
                f"unknown detail {detail!r}; expected one of {_DETAILS}"
            )
        if max_spans < 0:
            raise ConfigurationError("max_spans must be non-negative")
        self.enabled = enabled
        self.detail = detail
        self.max_spans = max_spans
        self.slowdown: Dict[str, float] = {}
        self.spans: List[Span] = []
        self._vclock = clock  # callable returning virtual seconds, or None
        self._stack: List[Span] = []
        self._totals: Dict[str, PhaseTotal] = {}
        self._next_index = 0
        self._dropped = 0

    # -- wiring ---------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Attach a virtual-time source: a VirtualClock or a callable."""
        if clock is None:
            self._vclock = None
        elif callable(clock):
            self._vclock = clock
        else:
            self._vclock = lambda: clock.now

    @property
    def fine(self) -> bool:
        """True when per-frame crypto spans should be emitted."""
        return self.enabled and self.detail == DETAIL_FINE

    @property
    def active_depth(self) -> int:
        """Number of currently open spans (0 when idle)."""
        return len(self._stack)

    @property
    def dropped_spans(self) -> int:
        """Raw spans discarded past ``max_spans`` (totals still counted)."""
        return self._dropped

    # -- span production ------------------------------------------------------

    def span(self, name: str, nbytes: int = 0):
        """A context manager timing one phase; no-op when disabled."""
        if not self.enabled:
            return _NOOP
        return Span(self, name, nbytes)

    def fine_span(self, name: str, nbytes: int = 0):
        """Like :meth:`span` but only emitted at ``DETAIL_FINE``."""
        if not self.enabled or self.detail != DETAIL_FINE:
            return _NOOP
        return Span(self, name, nbytes)

    def _open(self, span: Span) -> None:
        span.index = self._next_index
        self._next_index += 1
        span.depth = len(self._stack)
        span.parent_index = self._stack[-1].index if self._stack else None
        self._stack.append(span)
        if self._vclock is not None:
            span.virtual_start = self._vclock()
        span.wall_start = time.perf_counter()

    def _close(self, span: Span) -> None:
        end = time.perf_counter()
        factor = self.slowdown.get(span.name)
        if factor is not None and factor > 1.0:
            # Synthetic slowdown drill: busy-wait so the phase *really*
            # takes factor x its measured wall time (perf-gate testing).
            target = span.wall_start + (end - span.wall_start) * factor
            while end < target:
                end = time.perf_counter()
        span.wall_end = end
        if self._vclock is not None:
            span.virtual_end = self._vclock()
        # Close any children the exception unwound past, innermost first,
        # so a fault mid-phase can never leave the stack unbalanced.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.error = top.error or "UnwoundParent"
            top.wall_end = end
            if self._vclock is not None:
                top.virtual_end = span.virtual_end
            self._record(top)
        self._record(span)

    def _record(self, span: Span) -> None:
        total = self._totals.get(span.name)
        if total is None:
            total = self._totals[span.name] = PhaseTotal()
        total.count += 1
        total.wall_seconds += span.wall_seconds
        total.virtual_seconds += span.virtual_seconds
        total.nbytes += span.nbytes
        if span.error is not None:
            total.errors += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self._dropped += 1

    # -- aggregation ----------------------------------------------------------

    def phase_totals(self) -> Dict[str, PhaseTotal]:
        """Per-phase aggregates of every *closed* span, keyed by name."""
        return dict(self._totals)

    def total(self, name: str) -> PhaseTotal:
        """The aggregate for one phase (zeros if the phase never ran)."""
        return self._totals.get(name, PhaseTotal())

    def reset(self) -> None:
        """Drop all closed spans and totals; open spans are unaffected."""
        self.spans = []
        self._totals = {}
        self._dropped = 0


#: Shared disabled tracer — the default for every instrumented component.
NULL_TRACER = Tracer(enabled=False)
