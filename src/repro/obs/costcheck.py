"""Eq. 8 conformance: measured per-phase cost vs. the analytic prediction.

The paper's headline claim is that every request costs exactly

    Q_t = 4*t_s + 2(k+1)*B*(1/r_d + 1/r_b + 1/r_ed)        (Eq. 8)

:class:`CostModelCheck` verifies that claim against an *executed* engine:
it reads the per-phase totals out of a :class:`~repro.obs.tracer.Tracer`
(virtual-clock durations and byte counts) and reports, for each Eq. 8 term,
the measured/predicted ratio.  On a fault-free run with the Table-2
hardware spec every ratio is 1.0 to floating-point accuracy, because the
engine moves exactly ``2(k+1)`` frames per request; retries, fault
injection, or a hot-path regression that moves extra bytes push the
affected ratio above 1, which is what the conformance check (and the CI
perf gate's deterministic lane) detects.

Phase-to-term mapping (span names are the DESIGN.md §9 taxonomy):

========  ==========================================  =======================
term      measured from                               predicted per query
========  ==========================================  =======================
seek      (count(disk.read)+count(disk.write))*t_s    4 * t_s
disk      virtual(disk.read+disk.write) - seeks       2(k+1) * F / r_d
link      bytes(link.ingest+link.egress) / r_b        2(k+1) * F / r_b
crypto    bytes(decrypt+reencrypt) / r_ed             2(k+1) * F / r_ed
total     virtual(request)                            Q_t(k, F)
========  ==========================================  =======================

``F`` is the *frame* size (payload + page header + nonce + MAC), matching
what actually crosses the disk, link and crypto engine — the paper's ``B``
with the implementation's constant overhead, same as
:meth:`repro.core.database.PirDatabase.expected_query_time`.

Note on the crypto term and the CTR fast path (DESIGN.md §11): the
``crypto`` ratio compares *virtual* time — bytes through the cipher over
the spec's ``r_ed`` — so it stays exactly 1.0 whether the T-table AES
kernel or the keystream prefetch pipeline is enabled; neither changes
the bytes moved or charges the virtual clock.  What the fast path *does*
shift is the implied Python-measured ``r_ed`` (wall bytes/second), by
roughly the kernel speedup ``benchmarks/bench_ctr.py`` reports (~40x
with the numpy lane).  That is by design: Eq. 8 conformance models the
paper's hardware, while wall-clock throughput is the simulator's own
cost, gated separately by the CI perf lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .tracer import Tracer
from ..errors import ConfigurationError
from ..hardware.specs import HardwareSpec

__all__ = ["TermConformance", "CostModelCheck"]


@dataclass(frozen=True)
class TermConformance:
    """One Eq. 8 term's measured-vs-predicted comparison."""

    term: str
    measured_seconds: float
    predicted_seconds: float
    #: measured/predicted; 0.0 when the prediction is zero (e.g. an
    #: instantaneous spec) and nothing was measured either.
    ratio: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": "costcheck",
            "term": self.term,
            "measured_s": self.measured_seconds,
            "predicted_s": self.predicted_seconds,
            "ratio": self.ratio,
        }


def _ratio(measured: float, predicted: float) -> float:
    if predicted > 0.0:
        return measured / predicted
    return 0.0 if measured == 0.0 else float("inf")


class CostModelCheck:
    """Compare a traced run against the Eq. 8 terms for (k, F, spec)."""

    def __init__(self, spec: HardwareSpec, block_size: int, frame_size: int):
        if block_size < 1 or frame_size <= 0:
            raise ConfigurationError(
                "block_size and frame_size must be positive"
            )
        self.spec = spec
        self.block_size = block_size
        self.frame_size = frame_size

    def predicted_terms(self) -> Dict[str, float]:
        """Eq. 8's additive terms, per query, using the frame size."""
        from ..analysis.costmodel import eq8_terms

        return eq8_terms(self.spec, self.block_size, self.frame_size)

    def evaluate(self, tracer: Tracer, queries: int) -> List[TermConformance]:
        """Per-term conformance of ``queries`` traced requests.

        Requires a tracer that ran with a bound virtual clock (see
        :meth:`~repro.obs.tracer.Tracer.bind_clock`); wall-clock times are
        machine-dependent and are the CI perf gate's business instead.
        """
        if queries <= 0:
            raise ConfigurationError("queries must be positive")
        predicted = self.predicted_terms()
        spec = self.spec
        totals = tracer.phase_totals()

        def phase(name: str):
            return totals.get(name)

        disk_count = disk_virtual = disk_bytes = 0.0
        for name in ("disk.read", "disk.write"):
            total = phase(name)
            if total is not None:
                disk_count += total.count
                disk_virtual += total.virtual_seconds
                disk_bytes += total.nbytes
        link_bytes = 0.0
        for name in ("link.ingest", "link.egress"):
            total = phase(name)
            if total is not None:
                link_bytes += total.nbytes
        crypto_bytes = 0.0
        for name in ("decrypt", "reencrypt"):
            total = phase(name)
            if total is not None:
                crypto_bytes += total.nbytes
        request = phase("request")
        request_virtual = request.virtual_seconds if request else 0.0

        seek_measured = disk_count * spec.disk.seek_time
        rows = [
            ("seek", seek_measured, predicted["seek"] * queries),
            ("disk", max(0.0, disk_virtual - seek_measured),
             predicted["disk"] * queries),
            ("link", link_bytes / spec.link_bandwidth,
             predicted["link"] * queries),
            ("crypto", crypto_bytes / spec.crypto_throughput,
             predicted["crypto"] * queries),
            ("total", request_virtual, predicted["total"] * queries),
        ]
        return [
            TermConformance(term, measured, pred, _ratio(measured, pred))
            for term, measured, pred in rows
        ]

    @classmethod
    def for_database(cls, database) -> "CostModelCheck":
        """Build the check from a live :class:`~repro.core.database.PirDatabase`."""
        return cls(
            database.cop.spec,
            database.params.block_size,
            database.cop.frame_size,
        )
