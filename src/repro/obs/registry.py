"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the thread-safe aggregation point that absorbs and
supersedes the ad-hoc counters scattered through the codebase:
:class:`~repro.sim.metrics.CounterSet` (engine, frontend, injector, health
monitor) mirrors into a registry when constructed with one, and
:class:`~repro.sim.metrics.LatencySeries` mirrors into a registry
histogram.  New code should talk to the registry directly.

Naming scheme (DESIGN.md §9): dot-separated ``component.event`` names —
``engine.recovery.replayed``, ``frontend.requests``, ``faults.fault.crash``,
``health.state`` — with per-phase aggregates published under ``phase.<span
name>`` by :meth:`MetricsRegistry.absorb_tracer`.

All instruments are created on first use and are safe to update from
multiple threads; reads (``snapshot``) are consistent because they take the
same lock.  A re-entrant lock is used so a callback updating the registry
from inside ``snapshot`` post-processing cannot deadlock.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "quantile_from_counts",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "set_global_registry",
]

#: Log-spaced seconds buckets from 1 µs to 100 s — wide enough for both
#: wall-clock micro-benchmarks and Table-2 virtual latencies.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
) + (100.0,)


class Counter:
    """Monotonically increasing named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counter increments must be non-negative")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can move both ways (health state, queue depth, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class HistogramState:
    """An immutable point-in-time copy of one histogram's raw contents.

    Cheap to take (one list copy under the lock) and safe to post-process
    on any thread afterwards — the shape :meth:`MetricsRegistry.snapshot`
    and the :mod:`repro.plan` controller's sampling loop rely on, so
    neither holds the histogram lock while computing quantiles or
    serializing.  Windowed statistics come from subtracting two states'
    bucket ``counts``.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Tuple[float, ...], counts: List[int],
                 count: int, total: float, minimum: float, maximum: float):
        self.buckets = buckets
        self.counts = counts
        self.count = count
        self.sum = total
        self.min = minimum
        self.max = maximum

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float, interpolate: bool = True) -> float:
        """See :meth:`Histogram.quantile`; operates on the frozen copy."""
        return quantile_from_counts(
            self.buckets, self.counts, self.count, q,
            minimum=self.min, maximum=self.max, interpolate=interpolate,
        )

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean(),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    def nonzero_buckets(self) -> List[Tuple[str, int]]:
        """(upper-bound label, count) pairs for buckets that saw samples."""
        out: List[Tuple[str, int]] = []
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            label = (f"{self.buckets[index]:g}"
                     if index < len(self.buckets) else "+Inf")
            out.append((label, count))
        return out


def quantile_from_counts(
    buckets: Sequence[float],
    counts: Sequence[int],
    count: int,
    q: float,
    minimum: float = float("inf"),
    maximum: float = float("-inf"),
    interpolate: bool = True,
) -> float:
    """The q-quantile of a fixed-bucket distribution.

    With ``interpolate=False`` this is the legacy estimator: the upper
    bound of the bucket containing the q-th observation — systematically
    *overstating* the quantile by up to a whole bucket width, which on the
    coarse log-spaced default buckets can be a 2.5x error.  The default
    interpolates linearly within the containing bucket (rank position
    between the bucket's bounds) and clamps to the observed ``[min, max]``
    so a feedback controller steering on p99 reacts to the measured tail,
    not to the bucket grid.  Observations in the +Inf overflow bucket
    return ``maximum`` either way (there is no upper bound to lerp to).
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile {q} out of [0, 1]")
    if count == 0:
        return 0.0
    rank = max(1, int(q * count + 0.5))
    running = 0
    for index, bucket_count in enumerate(counts):
        running += bucket_count
        if running < rank:
            continue
        if index >= len(buckets):
            return maximum
        upper = buckets[index]
        if not interpolate:
            return upper
        lower = buckets[index - 1] if index > 0 else 0.0
        fraction = (rank - (running - bucket_count)) / bucket_count
        value = lower + fraction * (upper - lower)
        # The true samples never leave [min, max]; the lerp grid can.
        return min(max(value, minimum), maximum)
    return maximum


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets, like Prometheus).

    ``buckets`` are inclusive upper bounds in ascending order; observations
    above the last bound land in the implicit +Inf bucket.  Keeps count and
    sum exactly; quantiles are estimated from the buckets — linearly
    interpolated within the containing bucket by default, or the legacy
    bucket-upper-bound estimate with ``interpolate=False``.
    """

    __slots__ = ("name", "buckets", "counts", "_count", "_sum", "_min",
                 "_max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float],
                 lock: threading.RLock):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                "histogram buckets must be non-empty and strictly increasing"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def state(self) -> HistogramState:
        """A consistent point-in-time copy of the raw bucket contents.

        The only histogram read that takes the lock; every derived
        statistic (quantiles, summary, export rows) is computed from the
        returned copy so writers are never blocked behind serialization.
        """
        with self._lock:
            return HistogramState(
                self.buckets, list(self.counts), self._count, self._sum,
                self._min, self._max,
            )

    def quantile(self, q: float, interpolate: bool = True) -> float:
        """The q-quantile (q in [0, 1]) estimated from the buckets.

        Interpolates linearly within the containing bucket by default;
        ``interpolate=False`` restores the legacy bucket-upper-bound
        estimate (see :func:`quantile_from_counts`).
        """
        return self.state().quantile(q, interpolate=interpolate)

    def summary(self) -> Dict[str, float]:
        return self.state().summary()

    def nonzero_buckets(self) -> List[Tuple[str, int]]:
        """(upper-bound label, count) pairs for buckets that saw samples."""
        return self.state().nonzero_buckets()


class MetricsRegistry:
    """Get-or-create registry of named instruments (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------------------

    def _check_free(self, name: str, own: Dict[str, object]) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not own and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, self._counters)
                instrument = self._counters[name] = Counter(name, self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, self._gauges)
                instrument = self._gauges[name] = Gauge(name, self._lock)
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, self._histograms)
                instrument = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_LATENCY_BUCKETS, self._lock
                )
            return instrument

    # -- absorption of legacy / sibling sources -------------------------------

    def absorb_counters(self, counts: Dict[str, int], prefix: str = "") -> None:
        """Fold a plain name->count mapping in (e.g. ``CounterSet.as_dict()``)."""
        for name, amount in counts.items():
            self.counter(prefix + name).inc(amount)

    def absorb_tracer(self, tracer, prefix: str = "phase.") -> None:
        """Publish a tracer's phase totals as ``<prefix><phase>.*`` counters.

        Counters: ``.count``, ``.bytes``, ``.errors``; gauges ``.wall_s``
        and ``.virtual_s`` (gauges because re-absorbing replaces, not
        double-counts, the totals).
        """
        for name, total in tracer.phase_totals().items():
            base = prefix + name
            with self._lock:
                self.gauge(base + ".wall_s").set(total.wall_seconds)
                self.gauge(base + ".virtual_s").set(total.virtual_seconds)
                counter = self.counter(base + ".count")
                counter.inc(total.count - counter.value)
                counter = self.counter(base + ".bytes")
                counter.inc(total.nbytes - counter.value)
                counter = self.counter(base + ".errors")
                counter.inc(total.errors - counter.value)

    # -- introspection / export ----------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A consistent point-in-time copy of every instrument.

        Holds the registry lock only to copy primitive state (counter and
        gauge values, raw histogram buckets); the derived histogram
        summaries are computed and the result dict assembled *outside* the
        lock, so a sampling loop calling this every interval never stalls
        the hot observation path behind serialization work.
        """
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            gauges = {n: g.value for n, g in sorted(self._gauges.items())}
            states = {n: h.state() for n, h in sorted(self._histograms.items())}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                n: dict(s.summary(), buckets=s.nonzero_buckets())
                for n, s in states.items()
            },
        }

    def rows(self) -> Iterable[Dict[str, object]]:
        """One flat dict per instrument — the JSONL export shape."""
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            yield {"kind": "counter", "name": name, "value": value}
        for name, value in snap["gauges"].items():
            yield {"kind": "gauge", "name": name, "value": value}
        for name, summary in snap["histograms"].items():
            yield dict({"kind": "histogram", "name": name}, **summary)


_GLOBAL: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL


def set_global_registry(registry: Optional[MetricsRegistry]) -> None:
    """Replace (or clear, with None) the process-wide default registry."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = registry
