"""repro.obs — dependency-light observability for the query path.

Three pieces (DESIGN.md §9):

* :class:`~repro.obs.tracer.Tracer` — nested, low-overhead spans for the
  canonical query phases, with a no-op fast path when disabled and dual
  wall/virtual timing;
* :class:`~repro.obs.registry.MetricsRegistry` — the thread-safe,
  process-wide home for counters, gauges and fixed-bucket histograms,
  absorbing the ad-hoc :class:`~repro.sim.metrics.CounterSet` instances;
* :class:`~repro.obs.costcheck.CostModelCheck` — measured per-phase cost
  against the analytic Eq. 7/8 predictions, as a per-term ratio.

Plus JSONL export (:mod:`repro.obs.export`) shared by ``python -m repro
metrics``, the micro-benchmarks and the CI perf-regression gate.
"""

from .costcheck import CostModelCheck, TermConformance
from .export import (
    phase_rows,
    read_jsonl,
    rows_by_kind,
    run_rows,
    span_rows,
    write_jsonl,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    set_global_registry,
)
from .tracer import (
    DETAIL_FINE,
    DETAIL_PHASE,
    NULL_TRACER,
    PhaseTotal,
    Span,
    Tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "PhaseTotal",
    "NULL_TRACER",
    "DETAIL_PHASE",
    "DETAIL_FINE",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "set_global_registry",
    "CostModelCheck",
    "TermConformance",
    "phase_rows",
    "span_rows",
    "run_rows",
    "write_jsonl",
    "read_jsonl",
    "rows_by_kind",
]
