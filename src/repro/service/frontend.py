"""The query front-end running inside the secure hardware (Figure 1).

Terminates per-client encrypted sessions, decodes requests, drives the
retrieval engine, and returns results — all inside the tamper boundary.
The host server relays opaque ciphertext blobs between clients and the
coprocessor and observes only the disk trace plus message timing.

Each connected client gets its own session keys (standing in for a TLS
handshake), so clients cannot read each other's traffic either.

Degradation contract: every error surfaces to the client as a
:class:`~repro.service.protocol.Refused` reply with a deterministic
machine-readable code (see :func:`repro.service.health.classify`) and,
when the refusal is retryable, a retry-after hint.  Storage/crypto faults
feed the frontend's :class:`~repro.service.health.HealthMonitor`; once it
trips to *failed* the frontend sheds all load without touching the engine
until :meth:`QueryFrontend.recover` has repaired the store.
"""

from __future__ import annotations

import contextlib
import struct
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence

from . import protocol
from .health import (
    SEVERITY_FATAL,
    SEVERITY_FAULT,
    HealthMonitor,
    classify,
    error_for_refusal,
)
from ..core.database import PirDatabase
from ..core.engine import BatchOp
from ..crypto.suite import CipherSuite
from ..errors import (
    DegradedServiceError,
    ProtocolError,
    ReproError,
    TransientChannelError,
)
from ..faults.retry import RetryPolicy
from ..sim.clock import VirtualClock
from ..sim.metrics import CounterSet, LatencySeries
from ..twoparty.channel import SimulatedChannel

__all__ = [
    "QueryFrontend",
    "ServiceClient",
    "SealedReplyCache",
    "ClientOperationsMixin",
    "SESSION_SEQUENTIAL",
    "SESSION_RANDOM",
    "SESSION_BACKEND",
    "session_master_key",
]

#: How :meth:`QueryFrontend.open_session` assigns session ids.
#: ``sequential`` is the legacy in-process behaviour (ids 1, 2, 3, ... —
#: predictable, fine when the caller holding the frontend object *is* the
#: trust boundary); ``random`` draws unguessable 64-bit tokens and is
#: required for network-facing deployments, where a guessed session id
#: lets an attacker derive the session key (see :func:`session_master_key`).
SESSION_SEQUENTIAL = "sequential"
SESSION_RANDOM = "random"
_SESSION_MODES = (SESSION_SEQUENTIAL, SESSION_RANDOM)

#: Cipher backend used for per-session suites on both ends of the link.
SESSION_BACKEND = "blake2"


def session_master_key(session_id: int) -> bytes:
    """Key material both sides derive the session suite from.

    Stands in for the key agreement of the SSL handshake: the server hands
    the client its session id over the (conceptually authenticated)
    handshake, and both ends expand it into identical encrypt/MAC keys.
    With ``SESSION_RANDOM`` ids the id *is* the shared secret, which is why
    network-facing sessions must never use guessable sequential ids.
    """
    return b"client-session:" + session_id.to_bytes(8, "big")


#: On-disk record header of a persistent reply-cache entry:
#: u64 session id, u32 sealed-request length, u32 sealed-reply length,
#: followed by the two byte strings.
_CACHE_RECORD = struct.Struct(">QII")


class SealedReplyCache:
    """Bounded LRU of ``(session, sealed request) -> sealed reply``.

    Duplicate suppression for at-least-once delivery only ever needs the
    *recently* served transmissions (a network duplicate arrives close to
    the original), so the cache holds the last ``capacity`` replies across
    all sessions and evicts the least recently used beyond that — the old
    unbounded per-session dict grew forever on long sessions.

    With ``path`` the cache is additionally *persistent*: every ``put``
    appends the entry to the file before the caller acknowledges the
    request, and a restarted process reloads the tail of the log on
    construction.  This closes the crash window the in-memory cache
    leaves open — a mutation whose intent journal rolls *forward* on
    restart has been applied, so a client retransmission of the
    acknowledged sealed bytes must dedupe, not re-execute.  Entries are
    sealed ciphertext on both sides, so the file leaks nothing beyond
    traffic volume.  A torn final record (crash mid-append) is discarded
    on load, exactly like a torn journal record.  The log is append-only
    and never compacted; the in-memory LRU bound applies after reload.

    Eviction never removes a session's *most recent* reply.  That entry
    is exactly what a client retransmits after a reconnect or failover,
    and the retransmission may arrive before the original ack was ever
    seen — evicting it would re-execute an acknowledged mutation
    (double-apply).  Under churn this means the cache can temporarily
    exceed ``capacity`` by up to one pinned entry per live session;
    :meth:`drop_session` unpins when the session closes or is reaped.

    Thread-safe: the network server's worker threads and its event-loop
    thread (session reaping) touch the cache concurrently.
    """

    def __init__(self, capacity: int = 256, path=None):
        if capacity <= 0:
            raise ProtocolError("reply cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, bytes]" = OrderedDict()
        # session id -> key of that session's most recent reply (pinned).
        self._latest: Dict[int, tuple] = {}
        # key -> (origin, repl_seq) for entries whose mutation was
        # emitted into a replication log (see mark_for).
        self._marks: Dict[tuple, tuple] = {}
        self._lock = threading.Lock()
        self._path = str(path) if path is not None else None
        self._file = None
        if self._path is not None:
            self._load()
            self._file = open(self._path, "ab")

    def _load(self) -> None:
        try:
            with open(self._path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        offset = 0
        while offset + _CACHE_RECORD.size <= len(raw):
            session_id, req_len, reply_len = _CACHE_RECORD.unpack_from(
                raw, offset
            )
            body_end = offset + _CACHE_RECORD.size + req_len + reply_len
            if body_end > len(raw):
                break  # torn tail from a crash mid-append
            request = raw[offset + _CACHE_RECORD.size:
                          offset + _CACHE_RECORD.size + req_len]
            reply = raw[offset + _CACHE_RECORD.size + req_len:body_end]
            key = (session_id, request)
            self._entries[key] = reply
            self._latest[session_id] = key  # last record wins
            offset = body_end
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """Evict oldest-first, skipping each session's pinned latest reply.

        Caller holds the lock (or is still single-threaded in _load).
        When every entry is pinned the cache overflows instead of
        evicting an un-acked reply.
        """
        while len(self._entries) > self.capacity:
            victim = None
            for key in self._entries:
                if self._latest.get(key[0]) != key:
                    victim = key
                    break
            if victim is None:
                break
            del self._entries[victim]
            self._marks.pop(victim, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, session_id: int, sealed_request: bytes) -> Optional[bytes]:
        key = (session_id, sealed_request)
        with self._lock:
            reply = self._entries.get(key)
            if reply is not None:
                self._entries.move_to_end(key)
            return reply

    def put(self, session_id: int, sealed_request: bytes,
            sealed_reply: bytes, mark=None) -> None:
        key = (session_id, sealed_request)
        with self._lock:
            if self._file is not None:
                self._file.write(
                    _CACHE_RECORD.pack(session_id, len(sealed_request),
                                       len(sealed_reply))
                    + sealed_request + sealed_reply
                )
                self._file.flush()
            self._entries[key] = sealed_reply
            self._entries.move_to_end(key)
            self._latest[session_id] = key
            if mark is not None:
                self._marks[key] = mark
            else:
                self._marks.pop(key, None)
            self._evict_over_capacity()

    def mark_for(self, session_id: int, sealed_request: bytes):
        """The replication mark stored with an entry, or None.

        On cluster backends every cached reply carries the ``(origin,
        seq)`` of the replication record its mutation emitted; a member
        serving the entry as a dedupe must have applied that record
        first (QueryFrontend.replication_gate), or a preserved ACK could
        outlive the write it acknowledges.  Marks are in-memory only:
        entries reloaded from a persistent cache file have none, and the
        restart catch-up handshake covers that window instead.
        """
        with self._lock:
            return self._marks.get((session_id, sealed_request))

    def drop_session(self, session_id: int) -> None:
        with self._lock:
            self._latest.pop(session_id, None)
            stale = [key for key in self._entries if key[0] == session_id]
            for key in stale:
                del self._entries[key]
                self._marks.pop(key, None)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


# Batch op types the fused engine path understands; anything else (e.g. a
# nested Batch) falls back to the serial per-op dispatch loop.
_FUSABLE_OPS = (protocol.Query, protocol.Update, protocol.Insert,
                protocol.Delete)


class QueryFrontend:
    """Session manager + request dispatcher inside the coprocessor."""

    def __init__(
        self,
        database: PirDatabase,
        health: Optional[HealthMonitor] = None,
        metrics=None,
        reply_cache_size: int = 256,
        session_id_mode: str = SESSION_SEQUENTIAL,
        session_ttl: Optional[float] = None,
        time_source: Optional[Callable[[], float]] = None,
        reply_cache: Optional[SealedReplyCache] = None,
        reply_cache_path=None,
        session_salt: Optional[str] = None,
        fused_batches: bool = True,
    ):
        """``session_id_mode`` selects sequential (legacy, in-process) or
        unguessable random session ids — network-facing frontends must use
        :data:`SESSION_RANDOM`.  ``session_ttl`` enables idle-session
        reaping: sessions unused for more than ``session_ttl`` seconds of
        ``time_source`` time (default: the database's virtual clock; the
        network server passes ``time.monotonic``) are eligible for
        :meth:`reap_idle_sessions`, which drops their key material and
        cached replies.

        ``reply_cache`` shares a caller-owned :class:`SealedReplyCache`
        across frontends (cluster replicas dedupe each other's
        retransmissions); ``reply_cache_path`` makes the frontend's own
        cache persistent so acknowledged replies survive a crash-restart.

        ``fused_batches`` routes BATCH requests through the database's
        fused one-disk-pass-per-window path (:meth:`PirDatabase.run_batch`)
        instead of dispatching each op serially; replies are byte-identical
        either way, only the physical trace and cost differ.  Set it False
        to keep the serial per-op loop (e.g. when a test pins the serial
        trace shape).

        ``session_salt`` diversifies the :data:`SESSION_RANDOM` id
        stream.  Session ids derive from the database's seeded RNG tree,
        so two frontends over same-seed databases — exactly how cluster
        members are deployed, since a shared seed is what makes their
        data identical — would otherwise issue the *same* id sequence.
        Colliding ids are fatal behind a router: the id doubles as the
        key-agreement input, so two clients would share a suite, and
        either one's BYE would tear down the other's session.  Give every
        cluster member a distinct salt (``cluster serve-backend``
        generates one per process by default).
        """
        if session_id_mode not in _SESSION_MODES:
            raise ProtocolError(
                f"unknown session_id_mode {session_id_mode!r}; "
                f"expected one of {_SESSION_MODES}"
            )
        if session_ttl is not None and session_ttl <= 0:
            raise ProtocolError("session_ttl must be positive (or None)")
        self.database = database
        self.fused_batches = fused_batches and hasattr(database, "run_batch")
        self.session_id_mode = session_id_mode
        self.session_ttl = session_ttl
        self._time_source = (
            time_source if time_source is not None
            else (lambda: database.clock.now)
        )
        self._sessions: Dict[int, CipherSuite] = {}
        self._last_used: Dict[int, float] = {}
        # session id -> number of requests admitted but not yet answered
        # (queued or being served); the idle reaper must not close these.
        self._inflight_requests: Dict[int, int] = {}
        # Set by PirServer.attach_replication on cluster backends.
        # replication_barrier: called after a successful dispatch, before
        # the reply is cached; blocks until connected peers hold the
        # write and returns the (origin, seq) mark to cache with it.
        # replication_gate(origin, seq) -> bool: called before serving a
        # cached reply as a dedupe; must confirm this member has applied
        # the record behind it (see both call sites in serve()).
        self.replication_barrier = None
        self.replication_gate = None
        # Per-worker-thread (origin, seq) mark of the reply serve() just
        # produced — what the barrier actually waited on.  The network
        # server stamps this onto the wire reply so the router's
        # read-your-writes watermark never runs ahead of what connected
        # peers were confirmed to hold (log.last_seq at stamp time can
        # include other sessions' not-yet-replicated emissions).
        self._reply_marks = threading.local()
        # Serializes engine access between the serving worker and a
        # replication applier running on its own thread (cluster
        # backends): the plain engine is single-threaded by contract,
        # and this lock is how the two lanes honour it.  Held only
        # around the dispatch itself — never across the replication
        # barrier, which must not block peer applies.
        self.engine_lock = threading.Lock()
        # Guards the session tables: the network server opens/closes/reaps
        # sessions on its event-loop thread while worker threads serve.
        self._session_lock = threading.Lock()
        self._session_rng = database.cop.rng.spawn(
            "session-ids" if session_salt is None
            else f"session-ids-{session_salt}"
        )
        # Recently served (sealed request -> sealed reply) pairs for
        # at-least-once duplicate suppression (see serve()); bounded LRU
        # so long-lived sessions cannot grow it without limit.
        if reply_cache is not None:
            self._reply_cache = reply_cache
        else:
            self._reply_cache = SealedReplyCache(reply_cache_size,
                                                 path=reply_cache_path)
        self._next_session = 1
        self.counters = CounterSet(registry=metrics, prefix="frontend.")
        self._batch_sizes = (
            metrics.histogram("frontend.batch.size",
                              buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                       512, 1024))
            if metrics is not None else None
        )
        self.health = (
            health
            if health is not None
            else HealthMonitor(database.clock, counters=self.counters,
                               registry=metrics)
        )
        self.tracer = database.tracer

    # -- session management ----------------------------------------------------

    def open_session(self) -> int:
        """Establish a client session; returns the session id.

        Stands in for the SSL handshake: a per-session key pair is derived
        inside the boundary and (conceptually) shared with the client via
        the handshake.  :meth:`session_suite` hands the client its copy.

        In :data:`SESSION_RANDOM` mode the id is an unguessable 64-bit
        token (re-drawn on the astronomically unlikely collision); in
        :data:`SESSION_SEQUENTIAL` mode ids count up from 1 as before.
        """
        with self._session_lock:
            if self.session_id_mode == SESSION_RANDOM:
                session_id = 0
                while session_id == 0 or session_id in self._sessions:
                    session_id = int.from_bytes(
                        self._session_rng.token(8), "big"
                    )
            else:
                session_id = self._next_session
                self._next_session += 1
            self._sessions[session_id] = CipherSuite(
                session_master_key(session_id),
                backend=SESSION_BACKEND,
                rng=self.database.cop.rng.spawn(f"session-{session_id}"),
            )
            self._last_used[session_id] = self._time_source()
        self.counters.increment("sessions")
        return session_id

    def adopt_session(self, session_id: int) -> bool:
        """Install the suite for a session opened by *another* frontend.

        Failover support: the session suite is a pure function of the id
        (:func:`session_master_key`), so a replica can reconstruct a dead
        primary's session from the id the client presents in its RESUME —
        no state transfer required.  Returns ``True`` when the session was
        created here, ``False`` when it already existed (idempotent).

        Only meaningful behind a trust boundary that vouches for the id —
        the cluster router, which learned it from the backend's WELCOME.
        A public-facing server must never adopt: presenting an id would
        then *be* authentication bypass.  Hence the opt-in
        ``adopt_sessions`` flag on :class:`~repro.net.server.PirServer`.
        """
        if session_id == 0:
            raise ProtocolError("cannot adopt session id 0")
        with self._session_lock:
            if session_id in self._sessions:
                self._last_used[session_id] = self._time_source()
                return False
            self._sessions[session_id] = CipherSuite(
                session_master_key(session_id),
                backend=SESSION_BACKEND,
                rng=self.database.cop.rng.spawn(f"session-{session_id}"),
            )
            self._last_used[session_id] = self._time_source()
        self.counters.increment("sessions.adopted")
        return True

    def session_suite(self, session_id: int) -> CipherSuite:
        with self._session_lock:
            suite = self._sessions.get(session_id)
        if suite is None:
            raise ProtocolError(f"unknown session {session_id}")
        return suite

    def close_session(self, session_id: int) -> None:
        with self._session_lock:
            self._sessions.pop(session_id, None)
            self._last_used.pop(session_id, None)
            self._inflight_requests.pop(session_id, None)
        self._reply_cache.drop_session(session_id)

    def begin_request(self, session_id: int) -> None:
        """Mark a request admitted for ``session_id`` (queued or serving).

        The network server brackets the whole queued-to-answered window
        with begin/end so :meth:`reap_idle_sessions` cannot reap a session
        whose request sits unserved in the worker queue — reaping it there
        turned a retryable shed into a non-retryable ``session-not-found``.
        """
        with self._session_lock:
            self._inflight_requests[session_id] = (
                self._inflight_requests.get(session_id, 0) + 1
            )

    def end_request(self, session_id: int) -> None:
        """Balance a :meth:`begin_request` once the reply (or refusal) is out."""
        with self._session_lock:
            count = self._inflight_requests.get(session_id, 0) - 1
            if count <= 0:
                self._inflight_requests.pop(session_id, None)
            else:
                self._inflight_requests[session_id] = count

    @property
    def session_count(self) -> int:
        """Number of currently open sessions."""
        with self._session_lock:
            return len(self._sessions)

    @property
    def session_ids(self) -> List[int]:
        """Snapshot of the open session ids (for shutdown sweeps)."""
        with self._session_lock:
            return list(self._sessions)

    def reap_idle_sessions(self) -> int:
        """Drop sessions idle for longer than ``session_ttl``.

        Abandoned connections otherwise accumulate key material and
        reply-cache entries forever: the suite of a session that will never
        speak again is pure liability.  Returns the number of sessions
        reaped (0 when no TTL is configured) and counts them under
        ``sessions.reaped``.  A reaped session's later requests refuse with
        an ``unknown session`` protocol error, exactly like an explicit
        :meth:`close_session`.

        Sessions with in-flight work (admitted requests still queued or
        being served, see :meth:`begin_request`) are never reaped, however
        stale their last-used stamp: under load a request can sit in the
        worker queue past the TTL, and reaping the session underneath it
        answers ``session-not-found`` where a retryable refusal was due.
        """
        if self.session_ttl is None:
            return 0
        now = self._time_source()
        with self._session_lock:
            stale = [
                session_id
                for session_id, last in self._last_used.items()
                if now - last > self.session_ttl
                and self._inflight_requests.get(session_id, 0) == 0
            ]
            for session_id in stale:
                self._sessions.pop(session_id, None)
                self._last_used.pop(session_id, None)
        for session_id in stale:
            self._reply_cache.drop_session(session_id)
        if stale:
            self.counters.increment("sessions.reaped", len(stale))
        return len(stale)

    # -- recovery ----------------------------------------------------------------

    def recover(self):
        """Run engine crash recovery and return the frontend to service.

        Returns the engine's :class:`~repro.core.engine.RecoveryReport`.
        If recovery itself fails the health state stays *failed* and the
        exception propagates to the operator.
        """
        report = self.database.recover()
        self.health.mark_recovered()
        self.counters.increment("recoveries")
        return report

    # -- request dispatch ----------------------------------------------------------

    def serve(self, session_id: int, sealed_request: bytes) -> bytes:
        """Handle one encrypted client request; always returns a sealed reply.

        At-least-once delivery safety: clients seal every logical request
        under a fresh random nonce, so two byte-identical sealed requests
        can only be the *same transmission* delivered twice (a network
        duplicate or a blind retransmission).  Replaying the duplicate
        would double-apply mutations — an Insert would leak a page, an
        Update would burn a second trace-visible request — so the frontend
        answers it from the per-session reply cache without touching the
        engine.  Only successfully dispatched replies are cached; refusals
        re-execute, which is safe because a refused request mutated
        nothing durable.
        """
        with self.tracer.span("frontend.serve"):
            self._reply_marks.mark = None
            suite = self.session_suite(session_id)
            with self._session_lock:
                if session_id in self._last_used:
                    self._last_used[session_id] = self._time_source()
            cached = self._reply_cache.get(session_id, sealed_request)
            if cached is not None:
                mark = self._reply_cache.mark_for(session_id, sealed_request)
                gate = self.replication_gate
                if mark is not None and gate is not None \
                        and not gate(*mark):
                    # The cached acknowledgement belongs to a write this
                    # member has not applied (the origin died before its
                    # record streamed here).  Serving the ACK would let
                    # the session read stale state — shed instead; the
                    # refusal is retryable and the origin's restart
                    # replays the record.
                    self.counters.increment("requests.duplicate_lagged")
                    raise DegradedServiceError(
                        "retransmitted request acknowledges a write not "
                        "yet replicated to this member; retry",
                        retry_after=0.2,
                    )
                self.counters.increment("requests.duplicate")
                self._reply_marks.mark = mark
                return cached
            try:
                request = protocol.decode_client_message(
                    suite.decrypt_page(sealed_request)
                )
            except ReproError as exc:
                # A request that cannot even be opened is the client's
                # problem (wrong key, garbage bytes); it never reaches the
                # engine and never counts against service health.
                reply = self._refusal_for(exc, affects_health=False)
            else:
                # Replicated members serialize against the peer-apply
                # lane; without replication there is no second engine
                # user (one worker, or a thread-safe sharded database)
                # and the lock would only serialize the parallel path.
                guard = (self.engine_lock
                         if self.replication_barrier is not None
                         else contextlib.nullcontext())
                try:
                    with guard:
                        self.health.check()
                        reply = self._dispatch(request)
                        self.health.record_success()
                except ReproError as exc:
                    reply = self._refusal_for(exc)
            self.counters.increment("requests")
            reshuffle = getattr(self.database, "reshuffle", None)
            if reshuffle is not None and reshuffle.active:
                # How much traffic the online re-permutation overlapped:
                # the zero-refusal bench gate divides refusals by this.
                self.counters.increment("requests.during_reshuffle")
            sealed_reply = suite.encrypt_page(
                protocol.encode_client_message(reply)
            )
            if not isinstance(reply, protocol.Refused):
                mark = None
                barrier = self.replication_barrier
                if barrier is not None:
                    # Semi-sync replication barrier (cluster backends):
                    # a reply may only become a cached — and therefore
                    # failover-preservable — acknowledgement once every
                    # connected peer holds the write.  The returned
                    # (origin, seq) mark rides with the cache entry so a
                    # peer that dedupe-serves it can prove it applied
                    # the write first (replication_gate above) — the
                    # barrier alone cannot close the window, because it
                    # passes when peers are disconnected (availability
                    # over blocking forever).
                    mark = barrier()
                    self._reply_marks.mark = mark
                # BatchReply is cached even when some entries are Refused:
                # the *other* entries may have mutated durable state, so a
                # duplicate must not re-execute them.
                self._reply_cache.put(session_id, sealed_request,
                                      sealed_reply, mark=mark)
            return sealed_reply

    def consume_reply_mark(self):
        """Pop the (origin, seq) mark of this thread's last serve().

        None when the reply was a refusal, replication is not attached,
        or serve() has not run on this thread.  The network server calls
        this right after serve() to stamp the wire reply; consuming
        (rather than peeking) keeps a later refusal from inheriting a
        stale mark.
        """
        mark = getattr(self._reply_marks, "mark", None)
        self._reply_marks.mark = None
        return mark

    def _refusal_for(
        self, exc: ReproError, affects_health: bool = True
    ) -> protocol.Refused:
        refusal = classify(exc)
        if affects_health and refusal.severity in (SEVERITY_FAULT,
                                                   SEVERITY_FATAL):
            self.health.record_fault(fatal=refusal.severity == SEVERITY_FATAL)
        self.counters.increment(f"refused.{refusal.code}")
        if isinstance(exc, DegradedServiceError):
            retry_after = exc.retry_after
        elif refusal.retryable:
            retry_after = self.health.retry_after
        else:
            retry_after = -1.0
        return protocol.Refused(
            f"{type(exc).__name__}: {exc}", refusal.code, retry_after
        )

    def _dispatch(self, request: protocol.ClientMessage) -> protocol.ClientMessage:
        db = self.database
        if isinstance(request, protocol.Batch):
            return self._dispatch_batch(request)
        if isinstance(request, protocol.Query):
            payload = db.query(request.page_id)
            return protocol.Result(request.page_id, payload)
        if isinstance(request, protocol.Update):
            db.update(request.page_id, request.payload)
            return protocol.Ok()
        if isinstance(request, protocol.Insert):
            new_id = db.insert(request.payload)
            return protocol.Result(new_id, request.payload)
        if isinstance(request, protocol.Delete):
            db.delete(request.page_id)
            return protocol.Ok()
        raise ProtocolError(
            f"frontend cannot handle {type(request).__name__}"
        )

    def _dispatch_batch(self, batch: protocol.Batch) -> protocol.BatchReply:
        """Run each batch op; failures refuse that slot, not the batch.

        Health is consulted *per operation*: a fatal fault on op i trips the
        monitor and every later op in the same batch is shed with the usual
        degraded-service refusal instead of hammering a broken engine.
        """
        self.counters.increment("batch.requests")
        self.counters.increment("batch.ops", len(batch.ops))
        if self._batch_sizes is not None:
            self._batch_sizes.observe(len(batch.ops))
        if self.fused_batches and all(
            isinstance(op, _FUSABLE_OPS) for op in batch.ops
        ):
            return self._dispatch_batch_fused(batch)
        replies: List[protocol.ClientMessage] = []
        with self.tracer.span("frontend.batch"):
            for op in batch.ops:
                try:
                    self.health.check()
                    reply = self._dispatch(op)
                    self.health.record_success()
                except ReproError as exc:
                    reply = self._refusal_for(exc)
                replies.append(reply)
        return protocol.BatchReply(replies)

    def _dispatch_batch_fused(self, batch: protocol.Batch) -> protocol.BatchReply:
        """Serve a batch through the fused one-disk-pass-per-window engine.

        The whole batch becomes one :meth:`~PirDatabase.run_batch` call;
        failed slots come back as exception instances and are converted to
        the same per-op :class:`~repro.service.protocol.Refused` replies
        the serial loop produces, so clients cannot tell the paths apart
        by reply content.  Health is consulted once up front (a degraded
        service refuses every slot, as the serial loop would); per-op
        faults surface through the refused slots themselves.
        """
        self.counters.increment("batch.fused.requests")
        try:
            self.health.check()
        except ReproError as exc:
            return protocol.BatchReply(
                [self._refusal_for(exc) for _ in batch.ops]
            )
        ops: List[BatchOp] = []
        for op in batch.ops:
            if isinstance(op, protocol.Query):
                ops.append(BatchOp("query", page_id=op.page_id))
            elif isinstance(op, protocol.Update):
                ops.append(BatchOp("update", page_id=op.page_id,
                                   payload=op.payload))
            elif isinstance(op, protocol.Insert):
                ops.append(BatchOp("insert", payload=op.payload))
            else:
                ops.append(BatchOp("delete", page_id=op.page_id))
        with self.tracer.span("frontend.batch"):
            results = self.database.run_batch(ops)
        replies: List[protocol.ClientMessage] = []
        for op, outcome in zip(batch.ops, results):
            if isinstance(outcome, ReproError):
                replies.append(self._refusal_for(outcome))
                continue
            self.health.record_success()
            if isinstance(op, protocol.Query):
                replies.append(protocol.Result(op.page_id, outcome))
            elif isinstance(op, protocol.Insert):
                replies.append(protocol.Result(outcome, op.payload))
            else:
                replies.append(protocol.Ok())
        return protocol.BatchReply(replies)


class ClientOperationsMixin:
    """The operation surface shared by every client of the service.

    Concrete clients (:class:`ServiceClient` over the in-process simulated
    channel, :class:`repro.net.client.NetworkClient` over a real TCP
    socket) provide ``_call(message) -> reply`` — one sealed round trip
    including whatever retry discipline the transport supports — plus a
    ``counters`` :class:`~repro.sim.metrics.CounterSet`; the mixin turns it
    into the typed query/update/insert/delete/batch API.
    """

    def _call(
        self, message: protocol.ClientMessage
    ) -> protocol.ClientMessage:  # pragma: no cover - interface
        raise NotImplementedError

    def query(self, page_id: int) -> bytes:
        reply = self._call(protocol.Query(page_id))
        if not isinstance(reply, protocol.Result):
            raise ProtocolError(f"expected Result, got {type(reply).__name__}")
        return reply.payload

    def update(self, page_id: int, payload: bytes) -> None:
        reply = self._call(protocol.Update(page_id, payload))
        if not isinstance(reply, protocol.Ok):
            raise ProtocolError(f"expected Ok, got {type(reply).__name__}")

    def insert(self, payload: bytes) -> int:
        reply = self._call(protocol.Insert(payload))
        if not isinstance(reply, protocol.Result):
            raise ProtocolError(f"expected Result, got {type(reply).__name__}")
        return reply.page_id

    def delete(self, page_id: int) -> None:
        reply = self._call(protocol.Delete(page_id))
        if not isinstance(reply, protocol.Ok):
            raise ProtocolError(f"expected Ok, got {type(reply).__name__}")

    def batch(
        self, operations: Sequence[protocol.ClientMessage]
    ) -> List[protocol.ClientMessage]:
        """Run several ops in one sealed round trip; returns positional replies.

        One session frame carries the whole batch, so the per-message
        session crypto and channel RTT are paid once instead of
        ``len(operations)`` times.  Failures are per-operation: slot i holds
        a :class:`~repro.service.protocol.Refused` when op i was declined
        while the others proceeded — the caller inspects each slot rather
        than getting an exception.  (Exceptions still surface when the
        *batch itself* never reaches the engine: a malformed batch or a
        frontend that is shedding all load refuses the whole message.)

        Mutating batches should not be blindly retried through a
        :class:`~repro.faults.retry.RetryPolicy`-driven loop unless every
        op is idempotent; the duplicate-suppression cache protects only
        byte-identical retransmissions of the same sealed frame.
        """
        reply = self._call(protocol.Batch(tuple(operations)))
        if not isinstance(reply, protocol.BatchReply):
            raise ProtocolError(
                f"expected BatchReply, got {type(reply).__name__}"
            )
        if len(reply.replies) != len(operations):
            raise ProtocolError(
                f"batch of {len(operations)} ops answered with "
                f"{len(reply.replies)} replies"
            )
        self.counters.increment("batches")
        return list(reply.replies)

    def query_many(self, page_ids: Sequence[int]) -> List[bytes]:
        """Batched :meth:`query`; raises on the first refused slot."""
        payloads = []
        for page_id, reply in zip(
            page_ids, self.batch([protocol.Query(p) for p in page_ids])
        ):
            if isinstance(reply, protocol.Refused):
                raise error_for_refusal(
                    reply.code,
                    f"query {page_id} refused: {reply.reason}",
                    reply.retry_after,
                )
            if not isinstance(reply, protocol.Result):
                raise ProtocolError(
                    f"expected Result, got {type(reply).__name__}"
                )
            payloads.append(reply.payload)
        return payloads


class ServiceClient(ClientOperationsMixin):
    """A client of the three-party service, talking over its own channel.

    With a :class:`~repro.faults.retry.RetryPolicy`, the client retries
    transient channel faults (lost/timed-out messages) and retryable
    refusals, honouring the server's retry-after hint as a floor under its
    own exponential backoff.  Backoff time advances the shared virtual
    clock and jitter comes from a spawned seeded RNG, so retried runs stay
    deterministic.  ``channel_wrapper`` interposes on the outgoing channel
    — e.g. ``lambda ch: FlakyChannel(ch, injector)`` for fault drills.
    """

    def __init__(
        self,
        frontend: QueryFrontend,
        rtt: float = 0.02,
        bandwidth: float = 10e6,
        clock: Optional[VirtualClock] = None,
        retry: Optional[RetryPolicy] = None,
        channel_wrapper=None,
    ):
        self.frontend = frontend
        self.session_id = frontend.open_session()
        self._suite = frontend.session_suite(self.session_id)
        self.channel = SimulatedChannel(
            clock if clock is not None else frontend.database.clock,
            lambda blob: frontend.serve(self.session_id, blob),
            rtt=rtt,
            bandwidth=bandwidth,
        )
        if channel_wrapper is not None:
            self.channel = channel_wrapper(self.channel)
        self.retry = retry
        self._retry_rng = frontend.database.cop.rng.spawn(
            f"client-retry-{self.session_id}"
        )
        self.counters = CounterSet()
        self.latencies = LatencySeries()

    def _call_once(self, message: protocol.ClientMessage) -> protocol.ClientMessage:
        sealed = self._suite.encrypt_page(protocol.encode_client_message(message))
        started = self.channel.clock.now
        sealed_reply = self.channel.call(sealed)
        self.latencies.record(self.channel.clock.now - started)
        reply = protocol.decode_client_message(self._suite.decrypt_page(sealed_reply))
        if isinstance(reply, protocol.Refused):
            # Surface the server's error class, not a generic client error:
            # a not-found refusal raises PageNotFoundError, a retryable one
            # DegradedServiceError (which the retry loop keys on), etc.
            raise error_for_refusal(
                reply.code,
                f"request refused: {reply.reason}",
                reply.retry_after,
            )
        return reply

    def _call(self, message: protocol.ClientMessage) -> protocol.ClientMessage:
        if self.retry is None:
            return self._call_once(message)
        attempt = 0
        while True:
            try:
                return self._call_once(message)
            except (TransientChannelError, DegradedServiceError) as exc:
                if attempt + 1 >= self.retry.max_attempts:
                    raise
                hint = max(getattr(exc, "retry_after", 0.0), 0.0)
                delay = max(self.retry.delay_for(attempt, self._retry_rng),
                            hint)
                self.channel.clock.advance(delay)
                self.counters.increment("retries")
                attempt += 1

    def close(self) -> None:
        self.frontend.close_session(self.session_id)
