"""The query front-end running inside the secure hardware (Figure 1).

Terminates per-client encrypted sessions, decodes requests, drives the
retrieval engine, and returns results — all inside the tamper boundary.
The host server relays opaque ciphertext blobs between clients and the
coprocessor and observes only the disk trace plus message timing.

Each connected client gets its own session keys (standing in for a TLS
handshake), so clients cannot read each other's traffic either.
"""

from __future__ import annotations

from typing import Dict, Optional

from . import protocol
from ..core.database import PirDatabase
from ..crypto.suite import CipherSuite
from ..errors import (
    CapacityError,
    ConfigurationError,
    PageDeletedError,
    PageNotFoundError,
    ProtocolError,
    ReproError,
)
from ..sim.clock import VirtualClock
from ..sim.metrics import CounterSet, LatencySeries
from ..twoparty.channel import SimulatedChannel

__all__ = ["QueryFrontend", "ServiceClient"]


class QueryFrontend:
    """Session manager + request dispatcher inside the coprocessor."""

    def __init__(self, database: PirDatabase):
        self.database = database
        self._sessions: Dict[int, CipherSuite] = {}
        self._next_session = 1
        self.counters = CounterSet()

    # -- session management ----------------------------------------------------

    def open_session(self) -> int:
        """Establish a client session; returns the session id.

        Stands in for the SSL handshake: a per-session key pair is derived
        inside the boundary and (conceptually) shared with the client via
        the handshake.  :meth:`session_suite` hands the client its copy.
        """
        session_id = self._next_session
        self._next_session += 1
        self._sessions[session_id] = CipherSuite(
            b"client-session:" + session_id.to_bytes(8, "big"),
            backend="blake2",
            rng=self.database.cop.rng.spawn(f"session-{session_id}"),
        )
        self.counters.increment("sessions")
        return session_id

    def session_suite(self, session_id: int) -> CipherSuite:
        if session_id not in self._sessions:
            raise ProtocolError(f"unknown session {session_id}")
        return self._sessions[session_id]

    def close_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)

    # -- request dispatch ----------------------------------------------------------

    def serve(self, session_id: int, sealed_request: bytes) -> bytes:
        """Handle one encrypted client request; always returns a sealed reply."""
        suite = self.session_suite(session_id)
        try:
            request = protocol.decode_client_message(
                suite.decrypt_page(sealed_request)
            )
            reply = self._dispatch(request)
        except ReproError as exc:
            reply = protocol.Refused(f"{type(exc).__name__}: {exc}")
        self.counters.increment("requests")
        return suite.encrypt_page(protocol.encode_client_message(reply))

    def _dispatch(self, request: protocol.ClientMessage) -> protocol.ClientMessage:
        db = self.database
        if isinstance(request, protocol.Query):
            try:
                payload = db.query(request.page_id)
            except (PageDeletedError, PageNotFoundError) as exc:
                return protocol.Refused(f"{type(exc).__name__}: {exc}")
            return protocol.Result(request.page_id, payload)
        if isinstance(request, protocol.Update):
            db.update(request.page_id, request.payload)
            return protocol.Ok()
        if isinstance(request, protocol.Insert):
            try:
                new_id = db.insert(request.payload)
            except CapacityError as exc:
                return protocol.Refused(f"CapacityError: {exc}")
            return protocol.Result(new_id, request.payload)
        if isinstance(request, protocol.Delete):
            db.delete(request.page_id)
            return protocol.Ok()
        raise ProtocolError(
            f"frontend cannot handle {type(request).__name__}"
        )


class ServiceClient:
    """A client of the three-party service, talking over its own channel."""

    def __init__(
        self,
        frontend: QueryFrontend,
        rtt: float = 0.02,
        bandwidth: float = 10e6,
        clock: Optional[VirtualClock] = None,
    ):
        self.frontend = frontend
        self.session_id = frontend.open_session()
        self._suite = frontend.session_suite(self.session_id)
        self.channel = SimulatedChannel(
            clock if clock is not None else frontend.database.clock,
            lambda blob: frontend.serve(self.session_id, blob),
            rtt=rtt,
            bandwidth=bandwidth,
        )
        self.latencies = LatencySeries()

    def _call(self, message: protocol.ClientMessage) -> protocol.ClientMessage:
        sealed = self._suite.encrypt_page(protocol.encode_client_message(message))
        started = self.channel.clock.now
        sealed_reply = self.channel.call(sealed)
        self.latencies.record(self.channel.clock.now - started)
        reply = protocol.decode_client_message(self._suite.decrypt_page(sealed_reply))
        if isinstance(reply, protocol.Refused):
            raise ConfigurationError(f"request refused: {reply.reason}")
        return reply

    def query(self, page_id: int) -> bytes:
        reply = self._call(protocol.Query(page_id))
        if not isinstance(reply, protocol.Result):
            raise ProtocolError(f"expected Result, got {type(reply).__name__}")
        return reply.payload

    def update(self, page_id: int, payload: bytes) -> None:
        reply = self._call(protocol.Update(page_id, payload))
        if not isinstance(reply, protocol.Ok):
            raise ProtocolError(f"expected Ok, got {type(reply).__name__}")

    def insert(self, payload: bytes) -> int:
        reply = self._call(protocol.Insert(payload))
        if not isinstance(reply, protocol.Result):
            raise ProtocolError(f"expected Result, got {type(reply).__name__}")
        return reply.page_id

    def delete(self, page_id: int) -> None:
        reply = self._call(protocol.Delete(page_id))
        if not isinstance(reply, protocol.Ok):
            raise ProtocolError(f"expected Ok, got {type(reply).__name__}")

    def close(self) -> None:
        self.frontend.close_session(self.session_id)
