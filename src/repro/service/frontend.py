"""The query front-end running inside the secure hardware (Figure 1).

Terminates per-client encrypted sessions, decodes requests, drives the
retrieval engine, and returns results — all inside the tamper boundary.
The host server relays opaque ciphertext blobs between clients and the
coprocessor and observes only the disk trace plus message timing.

Each connected client gets its own session keys (standing in for a TLS
handshake), so clients cannot read each other's traffic either.

Degradation contract: every error surfaces to the client as a
:class:`~repro.service.protocol.Refused` reply with a deterministic
machine-readable code (see :func:`repro.service.health.classify`) and,
when the refusal is retryable, a retry-after hint.  Storage/crypto faults
feed the frontend's :class:`~repro.service.health.HealthMonitor`; once it
trips to *failed* the frontend sheds all load without touching the engine
until :meth:`QueryFrontend.recover` has repaired the store.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import protocol
from .health import (
    SEVERITY_FATAL,
    SEVERITY_FAULT,
    HealthMonitor,
    classify,
    error_for_refusal,
)
from ..core.database import PirDatabase
from ..crypto.suite import CipherSuite
from ..errors import (
    DegradedServiceError,
    ProtocolError,
    ReproError,
    TransientChannelError,
)
from ..faults.retry import RetryPolicy
from ..sim.clock import VirtualClock
from ..sim.metrics import CounterSet, LatencySeries
from ..twoparty.channel import SimulatedChannel

__all__ = ["QueryFrontend", "ServiceClient"]


class QueryFrontend:
    """Session manager + request dispatcher inside the coprocessor."""

    def __init__(
        self,
        database: PirDatabase,
        health: Optional[HealthMonitor] = None,
        metrics=None,
    ):
        self.database = database
        self._sessions: Dict[int, CipherSuite] = {}
        # Per-session (sealed request, sealed reply) of the last *served*
        # request, for at-least-once duplicate suppression (see serve()).
        self._last_replies: Dict[int, Tuple[bytes, bytes]] = {}
        self._next_session = 1
        self.counters = CounterSet(registry=metrics, prefix="frontend.")
        self.health = (
            health
            if health is not None
            else HealthMonitor(database.clock, counters=self.counters,
                               registry=metrics)
        )
        self.tracer = database.tracer

    # -- session management ----------------------------------------------------

    def open_session(self) -> int:
        """Establish a client session; returns the session id.

        Stands in for the SSL handshake: a per-session key pair is derived
        inside the boundary and (conceptually) shared with the client via
        the handshake.  :meth:`session_suite` hands the client its copy.
        """
        session_id = self._next_session
        self._next_session += 1
        self._sessions[session_id] = CipherSuite(
            b"client-session:" + session_id.to_bytes(8, "big"),
            backend="blake2",
            rng=self.database.cop.rng.spawn(f"session-{session_id}"),
        )
        self.counters.increment("sessions")
        return session_id

    def session_suite(self, session_id: int) -> CipherSuite:
        if session_id not in self._sessions:
            raise ProtocolError(f"unknown session {session_id}")
        return self._sessions[session_id]

    def close_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)
        self._last_replies.pop(session_id, None)

    # -- recovery ----------------------------------------------------------------

    def recover(self):
        """Run engine crash recovery and return the frontend to service.

        Returns the engine's :class:`~repro.core.engine.RecoveryReport`.
        If recovery itself fails the health state stays *failed* and the
        exception propagates to the operator.
        """
        report = self.database.recover()
        self.health.mark_recovered()
        self.counters.increment("recoveries")
        return report

    # -- request dispatch ----------------------------------------------------------

    def serve(self, session_id: int, sealed_request: bytes) -> bytes:
        """Handle one encrypted client request; always returns a sealed reply.

        At-least-once delivery safety: clients seal every logical request
        under a fresh random nonce, so two byte-identical sealed requests
        can only be the *same transmission* delivered twice (a network
        duplicate or a blind retransmission).  Replaying the duplicate
        would double-apply mutations — an Insert would leak a page, an
        Update would burn a second trace-visible request — so the frontend
        answers it from the per-session reply cache without touching the
        engine.  Only successfully dispatched replies are cached; refusals
        re-execute, which is safe because a refused request mutated
        nothing durable.
        """
        with self.tracer.span("frontend.serve"):
            suite = self.session_suite(session_id)
            cached = self._last_replies.get(session_id)
            if cached is not None and cached[0] == sealed_request:
                self.counters.increment("requests.duplicate")
                return cached[1]
            try:
                request = protocol.decode_client_message(
                    suite.decrypt_page(sealed_request)
                )
            except ReproError as exc:
                # A request that cannot even be opened is the client's
                # problem (wrong key, garbage bytes); it never reaches the
                # engine and never counts against service health.
                reply = self._refusal_for(exc, affects_health=False)
            else:
                try:
                    self.health.check()
                    reply = self._dispatch(request)
                    self.health.record_success()
                except ReproError as exc:
                    reply = self._refusal_for(exc)
            self.counters.increment("requests")
            sealed_reply = suite.encrypt_page(
                protocol.encode_client_message(reply)
            )
            if not isinstance(reply, protocol.Refused):
                self._last_replies[session_id] = (sealed_request, sealed_reply)
            return sealed_reply

    def _refusal_for(
        self, exc: ReproError, affects_health: bool = True
    ) -> protocol.Refused:
        refusal = classify(exc)
        if affects_health and refusal.severity in (SEVERITY_FAULT,
                                                   SEVERITY_FATAL):
            self.health.record_fault(fatal=refusal.severity == SEVERITY_FATAL)
        self.counters.increment(f"refused.{refusal.code}")
        if isinstance(exc, DegradedServiceError):
            retry_after = exc.retry_after
        elif refusal.retryable:
            retry_after = self.health.retry_after
        else:
            retry_after = -1.0
        return protocol.Refused(
            f"{type(exc).__name__}: {exc}", refusal.code, retry_after
        )

    def _dispatch(self, request: protocol.ClientMessage) -> protocol.ClientMessage:
        db = self.database
        if isinstance(request, protocol.Query):
            payload = db.query(request.page_id)
            return protocol.Result(request.page_id, payload)
        if isinstance(request, protocol.Update):
            db.update(request.page_id, request.payload)
            return protocol.Ok()
        if isinstance(request, protocol.Insert):
            new_id = db.insert(request.payload)
            return protocol.Result(new_id, request.payload)
        if isinstance(request, protocol.Delete):
            db.delete(request.page_id)
            return protocol.Ok()
        raise ProtocolError(
            f"frontend cannot handle {type(request).__name__}"
        )


class ServiceClient:
    """A client of the three-party service, talking over its own channel.

    With a :class:`~repro.faults.retry.RetryPolicy`, the client retries
    transient channel faults (lost/timed-out messages) and retryable
    refusals, honouring the server's retry-after hint as a floor under its
    own exponential backoff.  Backoff time advances the shared virtual
    clock and jitter comes from a spawned seeded RNG, so retried runs stay
    deterministic.  ``channel_wrapper`` interposes on the outgoing channel
    — e.g. ``lambda ch: FlakyChannel(ch, injector)`` for fault drills.
    """

    def __init__(
        self,
        frontend: QueryFrontend,
        rtt: float = 0.02,
        bandwidth: float = 10e6,
        clock: Optional[VirtualClock] = None,
        retry: Optional[RetryPolicy] = None,
        channel_wrapper=None,
    ):
        self.frontend = frontend
        self.session_id = frontend.open_session()
        self._suite = frontend.session_suite(self.session_id)
        self.channel = SimulatedChannel(
            clock if clock is not None else frontend.database.clock,
            lambda blob: frontend.serve(self.session_id, blob),
            rtt=rtt,
            bandwidth=bandwidth,
        )
        if channel_wrapper is not None:
            self.channel = channel_wrapper(self.channel)
        self.retry = retry
        self._retry_rng = frontend.database.cop.rng.spawn(
            f"client-retry-{self.session_id}"
        )
        self.counters = CounterSet()
        self.latencies = LatencySeries()

    def _call_once(self, message: protocol.ClientMessage) -> protocol.ClientMessage:
        sealed = self._suite.encrypt_page(protocol.encode_client_message(message))
        started = self.channel.clock.now
        sealed_reply = self.channel.call(sealed)
        self.latencies.record(self.channel.clock.now - started)
        reply = protocol.decode_client_message(self._suite.decrypt_page(sealed_reply))
        if isinstance(reply, protocol.Refused):
            # Surface the server's error class, not a generic client error:
            # a not-found refusal raises PageNotFoundError, a retryable one
            # DegradedServiceError (which the retry loop keys on), etc.
            raise error_for_refusal(
                reply.code,
                f"request refused: {reply.reason}",
                reply.retry_after,
            )
        return reply

    def _call(self, message: protocol.ClientMessage) -> protocol.ClientMessage:
        if self.retry is None:
            return self._call_once(message)
        attempt = 0
        while True:
            try:
                return self._call_once(message)
            except (TransientChannelError, DegradedServiceError) as exc:
                if attempt + 1 >= self.retry.max_attempts:
                    raise
                hint = max(getattr(exc, "retry_after", 0.0), 0.0)
                delay = max(self.retry.delay_for(attempt, self._retry_rng),
                            hint)
                self.channel.clock.advance(delay)
                self.counters.increment("retries")
                attempt += 1

    def query(self, page_id: int) -> bytes:
        reply = self._call(protocol.Query(page_id))
        if not isinstance(reply, protocol.Result):
            raise ProtocolError(f"expected Result, got {type(reply).__name__}")
        return reply.payload

    def update(self, page_id: int, payload: bytes) -> None:
        reply = self._call(protocol.Update(page_id, payload))
        if not isinstance(reply, protocol.Ok):
            raise ProtocolError(f"expected Ok, got {type(reply).__name__}")

    def insert(self, payload: bytes) -> int:
        reply = self._call(protocol.Insert(payload))
        if not isinstance(reply, protocol.Result):
            raise ProtocolError(f"expected Result, got {type(reply).__name__}")
        return reply.page_id

    def delete(self, page_id: int) -> None:
        reply = self._call(protocol.Delete(page_id))
        if not isinstance(reply, protocol.Ok):
            raise ProtocolError(f"expected Ok, got {type(reply).__name__}")

    def close(self) -> None:
        self.frontend.close_session(self.session_id)
