"""Three-party query service: clients <-> secure hardware over SSL (Fig. 1)."""

from .frontend import QueryFrontend, SealedReplyCache, ServiceClient
from .health import (
    DEGRADED,
    FAILED,
    HEALTHY,
    HealthMonitor,
    Refusal,
    classify,
    error_for_refusal,
)
from .protocol import (
    MAX_BATCH_OPS,
    Batch,
    BatchReply,
    Delete,
    Insert,
    Ok,
    Query,
    Refused,
    Result,
    Update,
    decode_client_message,
    encode_client_message,
)

__all__ = [
    "QueryFrontend",
    "SealedReplyCache",
    "ServiceClient",
    "HealthMonitor",
    "Refusal",
    "classify",
    "error_for_refusal",
    "HEALTHY",
    "DEGRADED",
    "FAILED",
    "MAX_BATCH_OPS",
    "Batch",
    "BatchReply",
    "Delete",
    "Insert",
    "Ok",
    "Query",
    "Refused",
    "Result",
    "Update",
    "decode_client_message",
    "encode_client_message",
]
