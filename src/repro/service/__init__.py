"""Three-party query service: clients <-> secure hardware over SSL (Fig. 1)."""

from .frontend import QueryFrontend, ServiceClient
from .protocol import (
    Delete,
    Insert,
    Ok,
    Query,
    Refused,
    Result,
    Update,
    decode_client_message,
    encode_client_message,
)

__all__ = [
    "QueryFrontend",
    "ServiceClient",
    "Delete",
    "Insert",
    "Ok",
    "Query",
    "Refused",
    "Result",
    "Update",
    "decode_client_message",
    "encode_client_message",
]
