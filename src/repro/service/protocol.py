"""Client <-> secure-hardware wire protocol (the SSL link of Figure 1).

In the three-party model any client may query the database; requests and
replies travel over per-client SSL connections that terminate *inside* the
coprocessor, so the server never sees their contents — only their timing.
We model the link as an authenticated-encrypted channel: the codec below
defines the plaintext structure, and :class:`repro.service.frontend` wraps
each message in a per-session :class:`~repro.crypto.suite.CipherSuite`
frame, standing in for the TLS record layer.

========  ===========  ===========================================
opcode    message      body
========  ===========  ===========================================
0x10      QUERY        u64 page_id
0x11      UPDATE       u64 page_id, u32 len, payload
0x12      INSERT       u32 len, payload
0x13      DELETE       u64 page_id
0x14      BATCH        u32 count, count x (u32 len, encoded op)
0x20      RESULT       u64 page_id, u32 len, payload
0x21      OK           (empty)
0x22      BATCH_REPLY  u32 count, count x (u32 len, encoded reply)
0x2F      REFUSED      u32 len, utf-8 reason,
                       u32 len, utf-8 code, f64 retry_after
========  ===========  ===========================================

REFUSED carries a machine-readable ``code`` (a stable kebab-case slug per
error class, see :mod:`repro.service.health`) next to the display-text
reason, plus a ``retry_after`` hint in seconds (negative = no hint).  A
legacy REFUSED body that ends after the reason decodes with the defaults,
so old peers interoperate.

BATCH carries several operations (QUERY/UPDATE/INSERT/DELETE — batches do
not nest) inside one sealed session frame, amortising the per-message
session-crypto and channel overhead; the frontend answers with one
BATCH_REPLY whose i-th entry is the reply to the i-th operation.  Failures
are *per-operation*: a refused op yields a REFUSED entry (with its usual
machine-readable code) in that slot while the other operations proceed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple, Union

from ..errors import ProtocolError

__all__ = [
    "Query",
    "Update",
    "Insert",
    "Delete",
    "Batch",
    "Result",
    "Ok",
    "BatchReply",
    "Refused",
    "MAX_BATCH_OPS",
    "MAX_PAYLOAD_BYTES",
    "encode_client_message",
    "decode_client_message",
]

_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

_OP_QUERY = 0x10
_OP_UPDATE = 0x11
_OP_INSERT = 0x12
_OP_DELETE = 0x13
_OP_BATCH = 0x14
_OP_RESULT = 0x20
_OP_OK = 0x21
_OP_BATCH_REPLY = 0x22
_OP_REFUSED = 0x2F

#: Upper bound on operations per BATCH — stops a single sealed message from
#: monopolising the engine (and bounds decode memory) while staying far
#: above any sensible amortisation sweet spot.
MAX_BATCH_OPS = 1024

#: Upper bound on any single length-prefixed field (payload, reason, code,
#: batch item).  The decoders check every u32 length against this cap
#: *before* trusting it, so a crafted prefix can neither trigger a huge
#: slice nor mask a structurally invalid message; it also keeps legal
#: messages inside what the network transport will carry
#: (:data:`repro.net.framing.MAX_FRAME_BYTES`).
MAX_PAYLOAD_BYTES = 4 * 1024 * 1024


def _check_length(length: int, what: str) -> int:
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"{what} length {length} exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit"
        )
    return length


@dataclass(frozen=True)
class Query:
    page_id: int


@dataclass(frozen=True)
class Update:
    page_id: int
    payload: bytes


@dataclass(frozen=True)
class Insert:
    payload: bytes


@dataclass(frozen=True)
class Delete:
    page_id: int


@dataclass(frozen=True)
class Batch:
    """Several operations sealed inside one session frame.

    ``ops`` may hold Query/Update/Insert/Delete messages only; nesting
    batches is a protocol error, as is an empty batch.
    """

    ops: Tuple["ClientMessage", ...]

    def __post_init__(self):
        object.__setattr__(self, "ops", tuple(self.ops))


@dataclass(frozen=True)
class Result:
    page_id: int
    payload: bytes


@dataclass(frozen=True)
class Ok:
    pass


@dataclass(frozen=True)
class BatchReply:
    """Positional replies to a :class:`Batch` — entry i answers op i."""

    replies: Tuple["ClientMessage", ...]

    def __post_init__(self):
        object.__setattr__(self, "replies", tuple(self.replies))


@dataclass(frozen=True)
class Refused:
    """The service declined the request.

    ``code`` is a stable machine-readable slug (empty for legacy peers);
    ``retry_after`` suggests how long to back off before retrying, in
    seconds — negative means the refusal is not retryable / no hint.
    """

    reason: str
    code: str = ""
    retry_after: float = -1.0

    @property
    def retryable(self) -> bool:
        return self.retry_after >= 0.0


ClientMessage = Union[
    Query, Update, Insert, Delete, Batch, Result, Ok, BatchReply, Refused
]

_BATCH_OPS = (Query, Update, Insert, Delete)
_BATCH_REPLIES = (Result, Ok, Refused)


def _encode_items(opcode: int, items, allowed, kind: str) -> bytes:
    if not items:
        raise ProtocolError(f"empty {kind}")
    if len(items) > MAX_BATCH_OPS:
        raise ProtocolError(
            f"{kind} of {len(items)} exceeds the {MAX_BATCH_OPS}-op limit"
        )
    parts = [bytes([opcode]), _U32.pack(len(items))]
    for item in items:
        if not isinstance(item, allowed):
            raise ProtocolError(
                f"{kind} cannot carry {type(item).__name__}"
            )
        encoded = encode_client_message(item)
        parts.append(_U32.pack(_check_length(len(encoded), f"{kind} item")))
        parts.append(encoded)
    return b"".join(parts)


def _decode_items(buffer: bytes, allowed, kind: str):
    count = _U32.unpack_from(buffer, 1)[0]
    if count == 0:
        raise ProtocolError(f"empty {kind}")
    if count > MAX_BATCH_OPS:
        raise ProtocolError(
            f"{kind} of {count} exceeds the {MAX_BATCH_OPS}-op limit"
        )
    items = []
    offset = 5
    for _ in range(count):
        length = _check_length(_U32.unpack_from(buffer, offset)[0],
                               f"{kind} item")
        offset += 4
        if offset + length > len(buffer):
            raise ProtocolError(f"bad {kind} item length")
        item = _decode_client_message(buffer[offset : offset + length])
        if not isinstance(item, allowed):
            raise ProtocolError(f"{kind} cannot carry {type(item).__name__}")
        items.append(item)
        offset += length
    if offset != len(buffer):
        raise ProtocolError(f"trailing bytes after {kind}")
    return tuple(items)


def encode_client_message(message: ClientMessage) -> bytes:
    """Serialise one client-protocol message to its wire bytes."""
    if isinstance(message, Query):
        return bytes([_OP_QUERY]) + _U64.pack(message.page_id)
    if isinstance(message, Update):
        return (bytes([_OP_UPDATE]) + _U64.pack(message.page_id)
                + _U32.pack(_check_length(len(message.payload), "payload"))
                + message.payload)
    if isinstance(message, Insert):
        return (bytes([_OP_INSERT])
                + _U32.pack(_check_length(len(message.payload), "payload"))
                + message.payload)
    if isinstance(message, Delete):
        return bytes([_OP_DELETE]) + _U64.pack(message.page_id)
    if isinstance(message, Batch):
        return _encode_items(_OP_BATCH, message.ops, _BATCH_OPS, "batch")
    if isinstance(message, BatchReply):
        return _encode_items(
            _OP_BATCH_REPLY, message.replies, _BATCH_REPLIES, "batch reply"
        )
    if isinstance(message, Result):
        return (bytes([_OP_RESULT]) + _U64.pack(message.page_id)
                + _U32.pack(_check_length(len(message.payload), "payload"))
                + message.payload)
    if isinstance(message, Ok):
        return bytes([_OP_OK])
    if isinstance(message, Refused):
        reason = message.reason.encode("utf-8")
        code = message.code.encode("utf-8")
        return (bytes([_OP_REFUSED])
                + _U32.pack(len(reason)) + reason
                + _U32.pack(len(code)) + code
                + _F64.pack(message.retry_after))
    raise ProtocolError(f"cannot encode {type(message).__name__}")


def _take_payload(buffer: bytes, offset: int) -> bytes:
    length = _check_length(_U32.unpack_from(buffer, offset)[0], "payload")
    start = offset + 4
    if start + length != len(buffer):
        raise ProtocolError("payload length does not match message size")
    return buffer[start : start + length]


def decode_client_message(buffer: bytes) -> ClientMessage:
    """Parse wire bytes; raises :class:`ProtocolError` on malformed input."""
    try:
        return _decode_client_message(buffer)
    except struct.error as exc:
        raise ProtocolError(f"truncated client message: {exc}") from exc


def _decode_client_message(buffer: bytes) -> ClientMessage:
    if not buffer:
        raise ProtocolError("empty client message")
    opcode = buffer[0]
    if opcode == _OP_QUERY:
        if len(buffer) != 9:
            raise ProtocolError("bad QUERY length")
        return Query(_U64.unpack_from(buffer, 1)[0])
    if opcode == _OP_UPDATE:
        page_id = _U64.unpack_from(buffer, 1)[0]
        return Update(page_id, _take_payload(buffer, 9))
    if opcode == _OP_INSERT:
        return Insert(_take_payload(buffer, 1))
    if opcode == _OP_DELETE:
        if len(buffer) != 9:
            raise ProtocolError("bad DELETE length")
        return Delete(_U64.unpack_from(buffer, 1)[0])
    if opcode == _OP_BATCH:
        return Batch(_decode_items(buffer, _BATCH_OPS, "batch"))
    if opcode == _OP_BATCH_REPLY:
        return BatchReply(_decode_items(buffer, _BATCH_REPLIES, "batch reply"))
    if opcode == _OP_RESULT:
        page_id = _U64.unpack_from(buffer, 1)[0]
        return Result(page_id, _take_payload(buffer, 9))
    if opcode == _OP_OK:
        if len(buffer) != 1:
            raise ProtocolError("bad OK length")
        return Ok()
    if opcode == _OP_REFUSED:
        return _decode_refused(buffer)
    raise ProtocolError(f"unknown client opcode 0x{opcode:02x}")


def _decode_refused(buffer: bytes) -> Refused:
    length = _check_length(_U32.unpack_from(buffer, 1)[0], "REFUSED reason")
    offset = 5 + length
    if offset > len(buffer):
        raise ProtocolError("bad REFUSED length")
    # The reason is display text; tolerate mangled bytes rather than
    # letting a corrupted reply crash the client.
    reason = buffer[5:offset].decode("utf-8", errors="replace")
    if offset == len(buffer):
        return Refused(reason)  # legacy form: reason only
    code_length = _check_length(_U32.unpack_from(buffer, offset)[0],
                                "REFUSED code")
    offset += 4
    if offset + code_length + _F64.size != len(buffer):
        raise ProtocolError("bad REFUSED length")
    code = buffer[offset : offset + code_length].decode("utf-8",
                                                        errors="replace")
    retry_after = _F64.unpack_from(buffer, offset + code_length)[0]
    return Refused(reason, code, retry_after)
