"""Service health tracking and graceful degradation.

Two pieces:

* :func:`classify` maps every :class:`~repro.errors.ReproError` subclass to
  a deterministic :class:`Refusal` — a stable machine-readable code, a
  retryability flag, and a severity saying how the fault affects service
  health.  Classification walks the exception's MRO, so new subclasses
  automatically inherit their parent's refusal behaviour until given an
  entry of their own.

* :class:`HealthMonitor` is the frontend's state machine::

      healthy ──(degrade_after consecutive faults)──▶ degraded
      degraded ──(success)──▶ healthy
      degraded ──(fail_after consecutive faults)──▶ failed
      any ──(fatal fault, e.g. RecoveryError)──▶ failed
      failed ──(mark_recovered(), operator/recovery action)──▶ healthy

  In the *degraded* state the service keeps working but its refusals carry
  a growing retry-after hint so well-behaved clients back off.  In the
  *failed* state it sheds all load with ``Refused(code="unavailable")``
  without touching the engine — protecting a possibly-inconsistent store
  from further writes until ``recover()`` has run.

Everything is deterministic: transitions depend only on the observed
fault/success sequence, and hints grow linearly with the fault streak, so
seeded fault runs produce byte-identical refusal streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import (
    AuthenticationError,
    CapacityError,
    ConfigurationError,
    CryptoError,
    DegradedServiceError,
    IndexError_,
    PageDeletedError,
    PageNotFoundError,
    ProtocolError,
    RecoveryError,
    ReproError,
    StorageError,
    TransientChannelError,
    TransientStorageError,
)
from ..sim.clock import VirtualClock
from ..sim.metrics import CounterSet

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "FAILED",
    "SEVERITY_CLIENT",
    "SEVERITY_FAULT",
    "SEVERITY_FATAL",
    "Refusal",
    "classify",
    "error_for_refusal",
    "HealthMonitor",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"

# How a refused request affects service health: client-caused refusals are
# the service working as intended; faults feed the degradation streak;
# fatal errors take the service down immediately.
SEVERITY_CLIENT = "client"
SEVERITY_FAULT = "fault"
SEVERITY_FATAL = "fatal"


@dataclass(frozen=True)
class Refusal:
    """Deterministic refusal descriptor for one error class."""

    code: str
    retryable: bool
    severity: str


# Most-derived classes first is not required — lookup walks the *instance's*
# MRO — but keep the table readable by hierarchy anyway.
_REFUSALS = {
    PageDeletedError: Refusal("deleted", False, SEVERITY_CLIENT),
    PageNotFoundError: Refusal("not-found", False, SEVERITY_CLIENT),
    TransientStorageError: Refusal("transient-storage", True, SEVERITY_FAULT),
    StorageError: Refusal("storage", False, SEVERITY_FAULT),
    AuthenticationError: Refusal("auth-failure", False, SEVERITY_FAULT),
    CryptoError: Refusal("crypto", False, SEVERITY_FAULT),
    TransientChannelError: Refusal("transient-channel", True, SEVERITY_FAULT),
    ProtocolError: Refusal("protocol", False, SEVERITY_CLIENT),
    ConfigurationError: Refusal("bad-request", False, SEVERITY_CLIENT),
    CapacityError: Refusal("capacity", False, SEVERITY_CLIENT),
    RecoveryError: Refusal("recovery-failed", False, SEVERITY_FATAL),
    DegradedServiceError: Refusal("unavailable", True, SEVERITY_CLIENT),
    IndexError_: Refusal("index", False, SEVERITY_FAULT),
    ReproError: Refusal("internal", False, SEVERITY_FAULT),
}


def classify(exc: BaseException) -> Refusal:
    """The deterministic refusal descriptor for any library error.

    Every :class:`ReproError` subclass resolves to exactly one entry (its
    own, or the nearest ancestor's); non-library exceptions classify as
    ``internal`` so the frontend never leaks a raw traceback to a client.
    """
    for klass in type(exc).__mro__:
        refusal = _REFUSALS.get(klass)
        if refusal is not None:
            return refusal
    return _REFUSALS[ReproError]


# Inverse of _REFUSALS at code granularity (codes are unique per class).
_CODE_ERRORS = {refusal.code: klass for klass, refusal in _REFUSALS.items()}


def error_for_refusal(
    code: str, message: str, retry_after: float = -1.0
) -> ReproError:
    """Reconstruct the client-side exception for a ``Refused`` reply.

    The inverse of :func:`classify` at refusal-code granularity, so a
    server-side ``PageNotFoundError`` surfaces to the caller as a
    :class:`~repro.errors.PageNotFoundError` rather than a generic client
    error.  Retryable refusals (``retry_after >= 0``) always come back as
    :class:`~repro.errors.DegradedServiceError` carrying the server's
    hint, which is what the client retry loop keys on; unknown or legacy
    (empty) codes fall back to the :class:`~repro.errors.ReproError` base.
    """
    if retry_after >= 0.0:
        return DegradedServiceError(message, retry_after=retry_after)
    klass = _CODE_ERRORS.get(code, ReproError)
    if klass is DegradedServiceError:  # non-retryable hint never happens,
        return DegradedServiceError(message)  # but stay constructor-safe
    return klass(message)


class HealthMonitor:
    """Consecutive-fault health state machine (see module docstring).

    ``retry_hint`` is the base retry-after suggestion; the advertised hint
    grows linearly with the current fault streak, capped at ``max_hint``.

    ``registry`` (a :class:`~repro.obs.registry.MetricsRegistry`) exposes
    the live state as gauges: ``health.state`` (0 healthy, 1 degraded,
    2 failed) and ``health.fault_streak``.
    """

    _STATE_CODES = {HEALTHY: 0, DEGRADED: 1, FAILED: 2}

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        degrade_after: int = 3,
        fail_after: int = 8,
        retry_hint: float = 0.05,
        max_hint: float = 5.0,
        counters: Optional[CounterSet] = None,
        registry=None,
    ):
        if degrade_after < 1 or fail_after < degrade_after:
            raise ConfigurationError(
                "need 1 <= degrade_after <= fail_after"
            )
        self.clock = clock
        self.degrade_after = degrade_after
        self.fail_after = fail_after
        self.retry_hint = retry_hint
        self.max_hint = max_hint
        self.counters = counters if counters is not None else CounterSet()
        self._state_gauge = (
            registry.gauge("health.state") if registry is not None else None
        )
        self._streak_gauge = (
            registry.gauge("health.fault_streak")
            if registry is not None else None
        )
        self.state = HEALTHY
        self._streak = 0
        self._publish()

    def _publish(self) -> None:
        if self._state_gauge is not None:
            self._state_gauge.set(self._STATE_CODES[self.state])
            self._streak_gauge.set(self._streak)

    @property
    def fault_streak(self) -> int:
        return self._streak

    @property
    def retry_after(self) -> float:
        """Suggested client backoff given the current fault streak."""
        return min(self.retry_hint * max(1, self._streak), self.max_hint)

    def check(self) -> None:
        """Admission control: raise instead of touching a failed engine."""
        if self.state == FAILED:
            raise DegradedServiceError(
                "service is failed pending recovery",
                retry_after=self.retry_after,
            )

    def record_success(self) -> None:
        self._streak = 0
        if self.state == DEGRADED:
            self.state = HEALTHY
            self.counters.increment("health.recovered")
        self._publish()

    def record_fault(self, fatal: bool = False) -> None:
        self._streak += 1
        self.counters.increment("health.faults")
        if fatal or self._streak >= self.fail_after:
            if self.state != FAILED:
                self.counters.increment("health.failed")
            self.state = FAILED
        elif self.state == HEALTHY and self._streak >= self.degrade_after:
            self.state = DEGRADED
            self.counters.increment("health.degraded")
        self._publish()

    def mark_recovered(self) -> None:
        """Operator/recovery acknowledgement: return to service."""
        self._streak = 0
        if self.state != HEALTHY:
            self.counters.increment("health.recovered")
        self.state = HEALTHY
        self._publish()
