"""Disk and link timing model (Table 2 of the paper).

The paper's §5 evaluation is analytical over four constants:

========================  =========  ==========================
Secure hardware cache      64 MB      :class:`repro.hardware.specs`
Disk seek time t_s         5 ms       per random access
Disk read/write r_d        100 MB/s   sequential transfer
Link bandwidth r_b         80 MB/s    coprocessor <-> host
Crypto throughput r_ed     10 MB/s    AES engine in the 4764
========================  =========  ==========================

:class:`DiskTimingModel` charges ``t_s + bytes / r_d`` per contiguous access,
which is exactly the accounting behind Eq. 8's ``4 t_s`` term (two contiguous
reads + two contiguous writes per retrieval).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["DiskTimingModel"]


@dataclass(frozen=True)
class DiskTimingModel:
    """Seek + streaming-transfer cost model for the untrusted disk."""

    seek_time: float = 5e-3
    read_bandwidth: float = 100e6
    write_bandwidth: float = 100e6

    def __post_init__(self) -> None:
        if self.seek_time < 0:
            raise ConfigurationError("seek_time must be non-negative")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be positive")

    def read_time(self, num_bytes: int) -> float:
        """Seconds to randomly seek and read ``num_bytes`` contiguous bytes."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        return self.seek_time + num_bytes / self.read_bandwidth

    def write_time(self, num_bytes: int) -> float:
        """Seconds to randomly seek and write ``num_bytes`` contiguous bytes."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        return self.seek_time + num_bytes / self.write_bandwidth

    @staticmethod
    def instantaneous() -> "DiskTimingModel":
        """A zero-cost model for experiments that only study access patterns."""
        return DiskTimingModel(seek_time=0.0, read_bandwidth=float("inf"),
                               write_bandwidth=float("inf"))
