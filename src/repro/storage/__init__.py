"""Untrusted storage substrate: pages, disk, timing model and access trace."""

from .disk import DiskStore
from .filedisk import FileDiskStore
from .merkle import AuthenticatedDisk, MerkleTree
from .page import DUMMY_ID, FLAG_DELETED, HEADER_SIZE, Page
from .tiered import MEMORY_TIER_TIMING, TieredDiskStore
from .timing import DiskTimingModel
from .trace import READ, WRITE, AccessEvent, AccessTrace, shapes_identical

__all__ = [
    "DiskStore",
    "FileDiskStore",
    "TieredDiskStore",
    "MEMORY_TIER_TIMING",
    "AuthenticatedDisk",
    "MerkleTree",
    "DUMMY_ID",
    "FLAG_DELETED",
    "HEADER_SIZE",
    "Page",
    "DiskTimingModel",
    "READ",
    "WRITE",
    "AccessEvent",
    "AccessTrace",
    "shapes_identical",
]
