"""Freshness authentication: a Merkle tree over the page frames.

The paper's threat model (§3.2) assumes an honest-but-curious server, so
per-frame MACs suffice there.  A production deployment should also resist
*rollback*: a malicious server could answer a read with an older frame for
the same location — its MAC still verifies.  The standard fix is a hash
tree over all locations whose nodes live in untrusted host memory while
only the 32-byte root stays inside the tamper boundary; every read is
checked against the root, every write refreshes its path.

:class:`MerkleTree` is the bare structure; :class:`AuthenticatedDisk` wraps
any disk-store object with transparent verify-on-read / update-on-write,
preserving the exact access interface the retrieval engine uses.  The tree
traffic itself is position-deterministic given the (already observable)
frame accesses, so it adds no access-pattern leakage.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

from ..errors import AuthenticationError, StorageError

__all__ = ["MerkleTree", "AuthenticatedDisk"]

_HASH_SIZE = 32


def _hash_leaf(index: int, frame: bytes) -> bytes:
    return hashlib.blake2b(
        b"\x00" + index.to_bytes(8, "big") + frame, digest_size=_HASH_SIZE
    ).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.blake2b(b"\x01" + left + right, digest_size=_HASH_SIZE).digest()


_EMPTY_LEAF = bytes(_HASH_SIZE)


class MerkleTree:
    """A perfect binary hash tree over ``num_leaves`` (padded to a power of 2).

    The node array models *untrusted host memory*: a verifier must never
    trust it directly — :meth:`verify` recomputes the path bottom-up from
    the candidate frame and the stored siblings and compares against a
    caller-held trusted root.
    """

    def __init__(self, num_leaves: int):
        if num_leaves <= 0:
            raise StorageError("merkle tree needs at least one leaf")
        self.num_leaves = num_leaves
        padded = 1
        while padded < num_leaves:
            padded *= 2
        self._padded = padded
        # Heap layout: node 1 is the root; leaves at [padded, 2 * padded).
        self._nodes: List[bytes] = [_EMPTY_LEAF] * (2 * padded)
        for position in range(padded - 1, 0, -1):
            self._nodes[position] = _hash_node(
                self._nodes[2 * position], self._nodes[2 * position + 1]
            )

    @property
    def root(self) -> bytes:
        """Current root (only meaningful when held by the trusted side)."""
        return self._nodes[1]

    def _leaf_position(self, index: int) -> int:
        if not 0 <= index < self.num_leaves:
            raise StorageError(f"leaf index {index} out of range")
        return self._padded + index

    # -- updates (trusted writer) ---------------------------------------------

    def update(self, index: int, frame: bytes) -> bytes:
        """Refresh one leaf and its path; returns the new root."""
        position = self._leaf_position(index)
        self._nodes[position] = _hash_leaf(index, frame)
        position //= 2
        while position >= 1:
            self._nodes[position] = _hash_node(
                self._nodes[2 * position], self._nodes[2 * position + 1]
            )
            position //= 2
        return self.root

    def update_range(self, start: int, frames: Sequence[bytes]) -> bytes:
        for offset, frame in enumerate(frames):
            self.update(start + offset, frame)
        return self.root

    # -- verification (trusted reader, untrusted nodes) --------------------------

    def proof(self, index: int) -> List[Tuple[bool, bytes]]:
        """Sibling path for a leaf: (sibling_is_right, sibling_hash) pairs."""
        position = self._leaf_position(index)
        path: List[Tuple[bool, bytes]] = []
        while position > 1:
            sibling_is_right = position % 2 == 0
            sibling = self._nodes[position + 1 if sibling_is_right else position - 1]
            path.append((sibling_is_right, sibling))
            position //= 2
        return path

    def verify(self, index: int, frame: bytes, trusted_root: bytes) -> bool:
        """Check ``frame`` at ``index`` against a *caller-held* root."""
        digest = _hash_leaf(index, frame)
        for sibling_is_right, sibling in self.proof(index):
            if sibling_is_right:
                digest = _hash_node(digest, sibling)
            else:
                digest = _hash_node(sibling, digest)
        return digest == trusted_root


class AuthenticatedDisk:
    """Freshness-verifying wrapper with the engine's disk interface.

    Holds the trusted root (conceptually inside the coprocessor); the
    Merkle nodes themselves model untrusted host memory.  Any replayed or
    altered frame fails verification on the next read with
    :class:`~repro.errors.AuthenticationError`.
    """

    def __init__(self, inner):
        self._inner = inner
        self._tree = MerkleTree(inner.num_locations)
        self._trusted_root = self._tree.root

    # -- passthrough metadata ---------------------------------------------------

    @property
    def num_locations(self) -> int:
        return self._inner.num_locations

    @property
    def frame_size(self) -> int:
        return self._inner.frame_size

    @property
    def trace(self):
        return self._inner.trace

    @property
    def clock(self):
        return self._inner.clock

    @property
    def current_request(self) -> int:
        return self._inner.current_request

    @current_request.setter
    def current_request(self, value: int) -> None:
        self._inner.current_request = value

    @property
    def trusted_root(self) -> bytes:
        return self._trusted_root

    # -- verified access -----------------------------------------------------------

    def _verify(self, location: int, frame: bytes) -> None:
        if not self._tree.verify(location, frame, self._trusted_root):
            raise AuthenticationError(
                f"freshness check failed at location {location}: the server "
                "returned a stale or altered frame"
            )

    def read(self, location: int) -> bytes:
        frame = self._inner.read(location)
        self._verify(location, frame)
        return frame

    def read_range(self, location: int, count: int) -> List[bytes]:
        frames = self._inner.read_range(location, count)
        for offset, frame in enumerate(frames):
            self._verify(location + offset, frame)
        return frames

    def write(self, location: int, frame: bytes) -> None:
        self._inner.write(location, frame)
        self._trusted_root = self._tree.update(location, frame)

    def write_range(self, location: int, frames: Sequence[bytes]) -> None:
        self._inner.write_range(location, frames)
        self._trusted_root = self._tree.update_range(location, frames)

    def read_request(self, block_start: int, count: int, extra_location: int):
        # Delegate to the inner store's combined form so remote transports
        # keep their single-round-trip batching; verify everything returned.
        frames, extra = self._inner.read_request(block_start, count,
                                                 extra_location)
        for offset, frame in enumerate(frames):
            self._verify(block_start + offset, frame)
        self._verify(extra_location, extra)
        return frames, extra

    def write_request(self, block_start: int, frames: Sequence[bytes],
                      extra_location: int, extra_frame: bytes) -> None:
        self._inner.write_request(block_start, frames, extra_location,
                                  extra_frame)
        self._tree.update_range(block_start, frames)
        self._trusted_root = self._tree.update(extra_location, extra_frame)

    def upload(self, start: int, frames: Sequence[bytes]) -> None:
        """Setup-time bulk write (remote transports); seeds the tree."""
        self._inner.upload(start, frames)
        self._trusted_root = self._tree.update_range(start, frames)

    # -- diagnostics -----------------------------------------------------------------

    def peek(self, location: int) -> Optional[bytes]:
        return self._inner.peek(location)

    def initialised_locations(self) -> int:
        return self._inner.initialised_locations()
