"""File-backed page store: the untrusted disk as an actual file.

:class:`DiskStore` keeps frames in memory, which is right for simulation.
For deployments (and for exercising the system against real I/O paths)
:class:`FileDiskStore` provides the same interface over a single flat file
of fixed-size frames — location ``i`` lives at byte offset ``i * frame_size``.

Timing note: the *virtual* timing model is still applied (that is what the
cost reproduction is calibrated on); real I/O latency additionally shows up
as wall-clock time, which the micro-benchmarks measure separately.  An
uninitialised location is all zero bytes, which can never be a valid frame
(the MAC check fails), so reads of never-written locations surface as
:class:`~repro.errors.StorageError` here just like the in-memory store.

Durability: a configurable fsync policy trades write latency against the
window of frames an OS crash can lose — the intent journal makes either
choice *consistent* (a torn write-back is rolled forward from the journal),
the policy only bounds how much committed work a power cut may force the
journal to replay.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from .disk import DiskStore
from .timing import DiskTimingModel
from .trace import READ, WRITE, AccessEvent, AccessTrace
from ..errors import ConfigurationError, StorageError
from ..obs.tracer import Tracer
from ..sim.clock import VirtualClock

__all__ = ["FileDiskStore", "SYNC_ALWAYS", "SYNC_ON_FLUSH", "SYNC_NEVER"]

SYNC_ALWAYS = "always"      # fsync after every write_range (safest, slowest)
SYNC_ON_FLUSH = "on-flush"  # fsync only in flush()/close() (the default)
SYNC_NEVER = "never"        # never fsync; OS decides (simulation/benchmarks)

_SYNC_POLICIES = (SYNC_ALWAYS, SYNC_ON_FLUSH, SYNC_NEVER)


class FileDiskStore(DiskStore):
    """Drop-in :class:`DiskStore` storing frames in one file on the host FS."""

    def __init__(
        self,
        path: str,
        num_locations: int,
        frame_size: int,
        timing: Optional[DiskTimingModel] = None,
        clock: Optional[VirtualClock] = None,
        trace: Optional[AccessTrace] = None,
        sync_policy: str = SYNC_ON_FLUSH,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__(num_locations, frame_size, timing, clock, trace,
                         tracer)
        if sync_policy not in _SYNC_POLICIES:
            raise ConfigurationError(
                f"unknown sync_policy {sync_policy!r}; "
                f"expected one of {_SYNC_POLICIES}"
            )
        self._frames = []  # type: ignore[assignment]  # unused by this subclass
        self.path = path
        self.sync_policy = sync_policy
        self._written = bytearray((num_locations + 7) // 8)
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.truncate(num_locations * frame_size)

    # -- bitmap of initialised locations ---------------------------------------

    def _mark_written(self, location: int) -> None:
        self._written[location // 8] |= 1 << (location % 8)

    def _is_written(self, location: int) -> bool:
        return bool(self._written[location // 8] >> (location % 8) & 1)

    # -- overridden access primitives -------------------------------------------

    def read_range(self, location: int, count: int) -> List[bytes]:
        self._check_range(location, count)
        for offset in range(count):
            if not self._is_written(location + offset):
                raise StorageError(
                    f"location {location + offset} was never written"
                )
        with self.tracer.span("disk.read", nbytes=count * self.frame_size):
            self.clock.advance(self.timing.read_time(count * self.frame_size))
            self._file.seek(location * self.frame_size)
            blob = self._file.read(count * self.frame_size)
            if len(blob) != count * self.frame_size:
                raise StorageError("short read from backing file")
            frames = [
                blob[i * self.frame_size : (i + 1) * self.frame_size]
                for i in range(count)
            ]
            self.trace.record(
                AccessEvent(READ, location, count, self.current_request,
                            self.clock.now)
            )
        return frames

    def write_range(self, location: int, frames: Sequence[bytes]) -> None:
        self._check_range(location, len(frames))
        for frame in frames:
            self._check_frame(frame)
        with self.tracer.span("disk.write",
                              nbytes=len(frames) * self.frame_size):
            self.clock.advance(
                self.timing.write_time(len(frames) * self.frame_size)
            )
            self._file.seek(location * self.frame_size)
            self._file.write(b"".join(frames))
            if self.sync_policy == SYNC_ALWAYS:
                with self.tracer.span("disk.fsync"):
                    self._file.flush()
                    os.fsync(self._file.fileno())
            for offset in range(len(frames)):
                self._mark_written(location + offset)
            self.trace.record(
                AccessEvent(WRITE, location, len(frames), self.current_request,
                            self.clock.now)
            )

    def peek(self, location: int) -> Optional[bytes]:
        if location < 0 or location >= self.num_locations:
            raise StorageError(f"location {location} out of range")
        if not self._is_written(location):
            return None
        self._file.seek(location * self.frame_size)
        return self._file.read(self.frame_size)

    def initialised_locations(self) -> int:
        return sum(
            1 for loc in range(self.num_locations) if self._is_written(loc)
        )

    # -- lifecycle ---------------------------------------------------------------

    def flush(self) -> None:
        """Push buffered frames down; fsync unless the policy says never."""
        with self.tracer.span("disk.fsync"):
            self._file.flush()
            if self.sync_policy != SYNC_NEVER:
                os.fsync(self._file.fileno())

    def close(self) -> None:
        """Durably close the store; idempotent and crash-safe.

        Flushes (and fsyncs, per the policy) before closing, so a clean
        shutdown never leaves frames only in userspace buffers.  Safe to
        call any number of times, including after a failed close: the
        handle is only marked closed once the OS confirms it.
        """
        if self._file.closed:
            return
        self.flush()
        self._file.close()

    def __enter__(self) -> "FileDiskStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
