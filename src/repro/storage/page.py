"""Logical database pages and their on-disk byte layout.

The paper models the database as ``n`` pages, each a tuple ``(id, data)``
with ids in ``[0, n)``.  Dummy pages (padding so n is a multiple of k, and
pre-allocated slots for future insertions, §4.3) carry the reserved id
:data:`DUMMY_ID`.

On-disk plaintext layout (before encryption into a frame)::

    id (8B big-endian) || flags (1B) || payload length (4B) || payload || zero pad

so a plaintext page occupies exactly ``HEADER_SIZE + capacity`` bytes
regardless of how much payload it carries — page size must never leak the
page's identity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError

__all__ = ["Page", "DUMMY_ID", "HEADER_SIZE", "FLAG_DELETED"]

DUMMY_ID = 2**64 - 1
HEADER_SIZE = 8 + 1 + 4
FLAG_DELETED = 0x01


@dataclass(frozen=True)
class Page:
    """An immutable logical page: identity, payload and lifecycle flags."""

    page_id: int
    payload: bytes = b""
    deleted: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.page_id <= DUMMY_ID:
            raise StorageError(f"page id {self.page_id} out of range")

    @property
    def is_dummy(self) -> bool:
        """True for padding/reserved pages that hold no user data."""
        return self.page_id == DUMMY_ID

    @property
    def is_free(self) -> bool:
        """True if this slot can host a future insertion (dummy or deleted)."""
        return self.is_dummy or self.deleted

    @staticmethod
    def dummy() -> "Page":
        """A fresh padding page (deleted, so it is insertion-eligible)."""
        return Page(DUMMY_ID, b"", deleted=True)

    def with_payload(self, payload: bytes) -> "Page":
        """Copy of this page carrying new payload (used by modifications)."""
        return Page(self.page_id, payload, deleted=False)

    def mark_deleted(self) -> "Page":
        """Copy of this page flagged deleted (payload wiped)."""
        return Page(self.page_id, b"", deleted=True)

    # -- byte layout ----------------------------------------------------------

    def encode(self, capacity: int) -> bytes:
        """Serialise into exactly ``HEADER_SIZE + capacity`` plaintext bytes."""
        if capacity < 0:
            raise StorageError("page capacity must be non-negative")
        if len(self.payload) > capacity:
            raise StorageError(
                f"payload of {len(self.payload)} bytes exceeds page capacity {capacity}"
            )
        flags = FLAG_DELETED if self.deleted else 0
        header = (
            self.page_id.to_bytes(8, "big")
            + bytes([flags])
            + len(self.payload).to_bytes(4, "big")
        )
        # join (not +) so zero-copy memoryview payloads — what the fused
        # batch path decodes pages into — serialise without materialising.
        return b"".join(
            (header, self.payload, bytes(capacity - len(self.payload)))
        )

    @staticmethod
    def decode(raw) -> "Page":
        """Parse bytes (or a zero-copy memoryview) produced by :meth:`encode`.

        When ``raw`` is a memoryview the payload stays a view into the
        underlying buffer — no copy is made until the page is re-encoded
        or the payload crosses a ``bytes()`` boundary.
        """
        if len(raw) < HEADER_SIZE:
            raise StorageError(f"page buffer of {len(raw)} bytes is shorter than header")
        page_id = int.from_bytes(raw[0:8], "big")
        flags = raw[8]
        length = int.from_bytes(raw[9:13], "big")
        if HEADER_SIZE + length > len(raw):
            raise StorageError("page header declares payload longer than buffer")
        payload = raw[HEADER_SIZE : HEADER_SIZE + length]
        return Page(page_id, payload, deleted=bool(flags & FLAG_DELETED))

    @staticmethod
    def plaintext_size(capacity: int) -> int:
        """Plaintext bytes occupied by a page with the given payload capacity."""
        if capacity < 0:
            raise StorageError("page capacity must be non-negative")
        return HEADER_SIZE + capacity
