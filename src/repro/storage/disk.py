"""The untrusted server disk: a flat array of encrypted page frames.

This is the only state the adversary controls.  Every read/write goes through
here, is charged to the virtual clock via :class:`DiskTimingModel`, and is
recorded in the :class:`AccessTrace` (the adversary's observation channel).

Frames are opaque byte strings to this layer; all encryption happens inside
the secure-hardware boundary before bytes reach the disk.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .timing import DiskTimingModel
from .trace import READ, WRITE, AccessEvent, AccessTrace
from ..errors import StorageError
from ..obs.tracer import NULL_TRACER, Tracer
from ..sim.clock import VirtualClock

__all__ = ["DiskStore"]


class DiskStore:
    """Fixed-size array of page frames with timing + trace instrumentation."""

    def __init__(
        self,
        num_locations: int,
        frame_size: int,
        timing: Optional[DiskTimingModel] = None,
        clock: Optional[VirtualClock] = None,
        trace: Optional[AccessTrace] = None,
        tracer: Optional[Tracer] = None,
    ):
        if num_locations <= 0:
            raise StorageError("disk must have at least one location")
        if frame_size <= 0:
            raise StorageError("frame size must be positive")
        self.num_locations = num_locations
        self.frame_size = frame_size
        self.timing = timing if timing is not None else DiskTimingModel.instantaneous()
        self.clock = clock if clock is not None else VirtualClock()
        self.trace = trace if trace is not None else AccessTrace()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._frames: List[Optional[bytes]] = [None] * num_locations
        # Ordinal of the in-flight client request; set by the engine so the
        # trace can attribute accesses to requests.
        self.current_request: int = -1

    # -- bounds ---------------------------------------------------------------

    def _check_range(self, location: int, count: int) -> None:
        if count <= 0:
            raise StorageError("access count must be positive")
        if location < 0 or location + count > self.num_locations:
            raise StorageError(
                f"access [{location}, {location + count}) outside disk of "
                f"{self.num_locations} locations"
            )

    def _check_frame(self, frame: bytes) -> None:
        if len(frame) != self.frame_size:
            raise StorageError(
                f"frame of {len(frame)} bytes does not match disk frame size "
                f"{self.frame_size}"
            )

    # -- access ----------------------------------------------------------------

    def read(self, location: int) -> bytes:
        """Read one frame (charges one seek + one frame transfer)."""
        return self.read_range(location, 1)[0]

    def read_range(self, location: int, count: int) -> List[bytes]:
        """Read ``count`` consecutive frames as one contiguous disk access."""
        self._check_range(location, count)
        with self.tracer.span("disk.read", nbytes=count * self.frame_size):
            self.clock.advance(self.timing.read_time(count * self.frame_size))
            frames: List[bytes] = []
            for offset in range(count):
                frame = self._frames[location + offset]
                if frame is None:
                    raise StorageError(
                        f"location {location + offset} was never written"
                    )
                frames.append(frame)
            self.trace.record(
                AccessEvent(READ, location, count, self.current_request,
                            self.clock.now)
            )
        return frames

    def write(self, location: int, frame: bytes) -> None:
        """Write one frame (charges one seek + one frame transfer)."""
        self.write_range(location, [frame])

    def write_range(self, location: int, frames: Sequence[bytes]) -> None:
        """Write consecutive frames as one contiguous disk access."""
        self._check_range(location, len(frames))
        for frame in frames:
            self._check_frame(frame)
        with self.tracer.span("disk.write",
                              nbytes=len(frames) * self.frame_size):
            self.clock.advance(
                self.timing.write_time(len(frames) * self.frame_size)
            )
            for offset, frame in enumerate(frames):
                self._frames[location + offset] = frame
            self.trace.record(
                AccessEvent(WRITE, location, len(frames), self.current_request,
                            self.clock.now)
            )

    # -- request-granular access -----------------------------------------------
    #
    # One Figure-3 request touches a block plus one extra location.  These
    # combined entry points keep the local disk behaviour identical (two
    # separate contiguous accesses each way) while letting remote transports
    # (repro.twoparty.RemoteDisk) override them with a single round trip.

    def read_request(
        self, block_start: int, count: int, extra_location: int
    ) -> "tuple[List[bytes], bytes]":
        """Read a block and one extra frame for a single retrieval request."""
        frames = self.read_range(block_start, count)
        extra = self.read(extra_location)
        return frames, extra

    def write_request(
        self,
        block_start: int,
        frames: Sequence[bytes],
        extra_location: int,
        extra_frame: bytes,
    ) -> None:
        """Write back a block and one extra frame for a retrieval request."""
        self.write_range(block_start, frames)
        self.write(extra_location, extra_frame)

    # -- adversary-side helpers --------------------------------------------------

    def peek(self, location: int) -> Optional[bytes]:
        """Raw frame bytes without timing/trace (what the curious server sees).

        Intentionally *not* used by the secure-hardware code path; exists so
        tests and the adversary model can inspect ciphertexts.
        """
        if location < 0 or location >= self.num_locations:
            raise StorageError(f"location {location} out of range")
        return self._frames[location]

    def initialised_locations(self) -> int:
        """Number of locations that hold a frame."""
        return sum(1 for frame in self._frames if frame is not None)
