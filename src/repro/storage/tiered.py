"""Hot/cold tiered page store: a memory tier fronting the slow disk.

The engine's round-robin schedule re-reads and rewrites the same block of
frames once per scan, and the online reshuffler (``shuffle/online.py``)
relocates a working set of frames far more often than the long tail.
:class:`TieredDiskStore` keeps that frequently-relocated working set in a
memory-backed **hot tier** in front of any cold store with the
:class:`~repro.storage.disk.DiskStore` interface (typically a
:class:`~repro.storage.filedisk.FileDiskStore`).

Privacy: the hot tier holds *ciphertext* frames in untrusted host memory —
exactly the bytes the cold disk would hold.  Every access still records the
same :class:`~repro.storage.trace.AccessEvent` (op, location, count) in the
same order, so the adversary-visible access *shape* is byte-identical with
and without the tier (Patel/Persiano/Yeo's observation that storage
placement may depend on public access metadata only); the tier changes
timing, never the sequence.

Consistency: writes are **write-through** — the cold store is updated
before the hot copy, so the hot tier never holds the only copy of a frame
and a crash can at worst lose *cache warmth*, never data.  Membership
changes (promotions and evictions) are appended to a small journal file so
a restart can re-warm the hot set from the cold store instead of starting
cold.

Counters (``tier.`` prefix): ``hit``/``miss`` count frames served from the
hot/cold tier, ``promote``/``evict`` count membership changes.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from typing import List, Optional, Sequence

from .disk import DiskStore
from .timing import DiskTimingModel
from .trace import READ, WRITE, AccessEvent
from ..errors import ConfigurationError
from ..sim.metrics import CounterSet

__all__ = ["TieredDiskStore", "MEMORY_TIER_TIMING"]

# Memory-bandwidth timing for hot hits on the virtual clock: no seek, and
# transfer at DRAM-copy rather than disk rates.  Cold accesses keep the
# cold store's own model, so the virtual-time win of a hit is explicit.
MEMORY_TIER_TIMING = DiskTimingModel(
    seek_time=0.0, read_bandwidth=10e9, write_bandwidth=10e9
)

# Journal record: one membership change per record.
_REC = struct.Struct(">BQ")
_OP_PROMOTE = 1
_OP_EVICT = 2


class TieredDiskStore:
    """LRU memory tier over a cold store, write-through, trace-preserving.

    Drop-in for the engine-facing :class:`DiskStore` interface (the same
    wrapper contract as :class:`~repro.faults.wrappers.FaultyDiskStore`).

    Parameters
    ----------
    cold:
        The authoritative store.  Always holds every committed frame.
    hot_capacity:
        Maximum frames resident in the hot tier (LRU eviction beyond it).
    hot_timing:
        Virtual-clock model charged for hot hits; defaults to
        :data:`MEMORY_TIER_TIMING`.
    journal_path:
        Optional path for the membership journal.  When the file already
        exists its surviving prefix is replayed and the hot set re-warmed
        from the cold store (torn trailing records are discarded, the
        same tail-trust rule as the replication backlog).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` mirroring
        the ``tier.*`` counters.
    """

    def __init__(
        self,
        cold: DiskStore,
        hot_capacity: int,
        hot_timing: Optional[DiskTimingModel] = None,
        journal_path: Optional[str] = None,
        metrics=None,
    ):
        if hot_capacity <= 0:
            raise ConfigurationError("hot tier needs a positive capacity")
        self.cold = cold
        self.hot_capacity = hot_capacity
        self.hot_timing = hot_timing if hot_timing is not None else MEMORY_TIER_TIMING
        self.counters = CounterSet(registry=metrics, prefix="tier.")
        self._hot: "OrderedDict[int, bytes]" = OrderedDict()
        self._journal_path = journal_path
        self._journal_file = None
        self._journal_records = 0
        self._closed = False
        if journal_path is not None:
            self._warm_from_journal(journal_path)
            self._journal_file = open(journal_path, "ab")

    # -- passthrough metadata --------------------------------------------------

    @property
    def inner(self):
        return self.cold

    @property
    def num_locations(self) -> int:
        return self.cold.num_locations

    @property
    def frame_size(self) -> int:
        return self.cold.frame_size

    @property
    def timing(self):
        return self.cold.timing

    @property
    def trace(self):
        return self.cold.trace

    @property
    def clock(self):
        return self.cold.clock

    @property
    def tracer(self):
        return self.cold.tracer

    @property
    def current_request(self) -> int:
        return self.cold.current_request

    @current_request.setter
    def current_request(self, value: int) -> None:
        self.cold.current_request = value

    @property
    def hot_frames(self) -> int:
        """Frames currently resident in the hot tier."""
        return len(self._hot)

    def hit_rate(self) -> float:
        """Fraction of read frames served from the hot tier so far."""
        hits = self.counters.get("hit")
        total = hits + self.counters.get("miss")
        return hits / total if total else 0.0

    # -- membership journal ----------------------------------------------------

    def _warm_from_journal(self, path: str) -> None:
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            blob = handle.read()
        usable = len(blob) - len(blob) % _REC.size
        members: "OrderedDict[int, None]" = OrderedDict()
        for offset in range(0, usable, _REC.size):
            op, location = _REC.unpack_from(blob, offset)
            if op == _OP_PROMOTE and 0 <= location < self.num_locations:
                members[location] = None
                members.move_to_end(location)
            elif op == _OP_EVICT:
                members.pop(location, None)
            # Unknown ops are skipped: the journal is advisory warmth, so
            # a future format extension must not brick old readers.
        for location in members:
            frame = self.cold.peek(location)
            if frame is not None:
                self._hot[location] = frame
        while len(self._hot) > self.hot_capacity:
            self._hot.popitem(last=False)
        # Rewrite compactly: the replayed history collapses to one promote
        # per surviving member, which also drops any torn tail on disk.
        with open(path, "wb") as handle:
            for location in self._hot:
                handle.write(_REC.pack(_OP_PROMOTE, location))
            handle.flush()
            os.fsync(handle.fileno())
        self._journal_records = len(self._hot)

    def _journal(self, op: int, location: int) -> None:
        if self._journal_file is None:
            return
        self._journal_file.write(_REC.pack(op, location))
        self._journal_records += 1
        # Compact once the log is dominated by dead churn; the live state
        # is at most hot_capacity promotes.
        if self._journal_records > max(64, 8 * self.hot_capacity):
            self._journal_file.flush()
            self._journal_file.close()
            with open(self._journal_path, "wb") as handle:
                for member in self._hot:
                    handle.write(_REC.pack(_OP_PROMOTE, member))
            self._journal_file = open(self._journal_path, "ab")
            self._journal_records = len(self._hot)

    # -- tier maintenance ------------------------------------------------------

    def _promote(self, location: int, frame: bytes) -> None:
        if location in self._hot:
            self._hot[location] = frame
            self._hot.move_to_end(location)
            return
        self._hot[location] = frame
        self.counters.increment("promote")
        self._journal(_OP_PROMOTE, location)
        while len(self._hot) > self.hot_capacity:
            victim, _ = self._hot.popitem(last=False)
            self.counters.increment("evict")
            self._journal(_OP_EVICT, victim)

    # -- access ----------------------------------------------------------------

    def read(self, location: int) -> bytes:
        return self.read_range(location, 1)[0]

    def read_range(self, location: int, count: int) -> List[bytes]:
        span = range(location, location + count)
        if all(loc in self._hot for loc in span):
            # Hot hit: same trace event, memory-tier timing.
            self.cold._check_range(location, count)
            nbytes = count * self.frame_size
            with self.tracer.span("tier.hot_read", nbytes=nbytes):
                self.clock.advance(self.hot_timing.read_time(nbytes))
                frames = [self._hot[loc] for loc in span]
                for loc in span:
                    self._hot.move_to_end(loc)
                self.trace.record(
                    AccessEvent(READ, location, count, self.current_request,
                                self.clock.now)
                )
            self.counters.increment("hit", count)
            return frames
        frames = self.cold.read_range(location, count)
        self.counters.increment("miss", count)
        for loc, frame in zip(span, frames):
            self._promote(loc, frame)
        return frames

    def write(self, location: int, frame: bytes) -> None:
        self.write_range(location, [frame])

    def write_range(self, location: int, frames: Sequence[bytes]) -> None:
        # Write-through: cold first (authoritative, charges + traces), then
        # refresh the hot copies so subsequent reads hit.
        self.cold.write_range(location, frames)
        for offset, frame in enumerate(frames):
            self._promote(location + offset, bytes(frame))

    # -- request-granular access -------------------------------------------------

    def read_request(
        self, block_start: int, count: int, extra_location: int
    ) -> "tuple[List[bytes], bytes]":
        frames = self.read_range(block_start, count)
        extra = self.read(extra_location)
        return frames, extra

    def write_request(
        self,
        block_start: int,
        frames: Sequence[bytes],
        extra_location: int,
        extra_frame: bytes,
    ) -> None:
        self.write_range(block_start, frames)
        self.write(extra_location, extra_frame)

    # -- adversary-side helpers --------------------------------------------------

    def peek(self, location: int) -> Optional[bytes]:
        return self.cold.peek(location)

    def initialised_locations(self) -> int:
        return self.cold.initialised_locations()

    # -- lifecycle ---------------------------------------------------------------

    def flush(self) -> None:
        if self._journal_file is not None and not self._closed:
            self._journal_file.flush()
            os.fsync(self._journal_file.fileno())
        flush = getattr(self.cold, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._journal_file is not None:
            self._journal_file.flush()
            os.fsync(self._journal_file.fileno())
            self._journal_file.close()
        close = getattr(self.cold, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "TieredDiskStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
