"""The adversary's view: a complete trace of disk accesses.

Per the threat model (§3.2) the server sees *which disk locations* are read
and written and *when*, but not page contents (encrypted, fresh nonce per
write) nor the client's query (SSL).  :class:`AccessTrace` records exactly
that observable information; the empirical privacy analysis and the tracking
adversary consume it and nothing else, which keeps the simulated adversary
honest about what it could really observe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["AccessEvent", "AccessTrace", "READ", "WRITE"]

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class AccessEvent:
    """One contiguous disk access visible to the server.

    Attributes
    ----------
    op:
        ``"read"`` or ``"write"``.
    location:
        First disk location touched.
    count:
        Number of consecutive locations in this access.
    request_index:
        Ordinal of the client request during which the access happened
        (-1 for setup-time accesses such as the initial shuffle).
    timestamp:
        Simulated time at which the access completed.
    """

    op: str
    location: int
    count: int
    request_index: int = -1
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ConfigurationError(f"unknown access op {self.op!r}")
        if self.location < 0 or self.count <= 0:
            raise ConfigurationError("invalid access range")

    @property
    def locations(self) -> range:
        """The contiguous range of disk locations this event covers."""
        return range(self.location, self.location + self.count)


class AccessTrace:
    """Append-only log of :class:`AccessEvent`, with analysis helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[AccessEvent] = []

    def record(self, event: AccessEvent) -> None:
        if self.enabled:
            self._events.append(event)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[AccessEvent]:
        return list(self._events)

    # -- analysis helpers -------------------------------------------------------

    def events_for_request(self, request_index: int) -> List[AccessEvent]:
        """All accesses performed while serving one client request."""
        return [e for e in self._events if e.request_index == request_index]

    def request_shape(self, request_index: int) -> List[Tuple[str, int]]:
        """The (op, count) sequence of a request — its identity-free shape.

        Two requests are indistinguishable to a shape-counting adversary iff
        this value matches; the scheme guarantees every request produces the
        same shape (see ``tests/test_trace_uniformity.py``).
        """
        return [(e.op, e.count) for e in self.events_for_request(request_index)]

    def location_read_counts(self) -> Counter:
        """How many times each individual location was read."""
        counts: Counter = Counter()
        for event in self._events:
            if event.op == READ:
                for loc in event.locations:
                    counts[loc] += 1
        return counts

    def location_write_counts(self) -> Counter:
        """How many times each individual location was written."""
        counts: Counter = Counter()
        for event in self._events:
            if event.op == WRITE:
                for loc in event.locations:
                    counts[loc] += 1
        return counts

    def num_requests(self) -> int:
        """Number of distinct non-setup requests appearing in the trace."""
        seen = {e.request_index for e in self._events if e.request_index >= 0}
        return len(seen)

    def bytes_transferred(self, frame_size: int) -> int:
        """Total bytes moved over the disk interface, given the frame size."""
        if frame_size <= 0:
            raise ConfigurationError("frame_size must be positive")
        return sum(e.count * frame_size for e in self._events)

    def summary(self) -> Dict[str, float]:
        reads = sum(1 for e in self._events if e.op == READ)
        writes = sum(1 for e in self._events if e.op == WRITE)
        return {
            "events": float(len(self._events)),
            "reads": float(reads),
            "writes": float(writes),
            "requests": float(self.num_requests()),
        }


def shapes_identical(trace: AccessTrace, first: int, last: Optional[int] = None) -> bool:
    """True if every request in ``[first, last]`` produced the same access shape."""
    if last is None:
        last = trace.num_requests() - 1
    if last < first:
        return True
    reference = trace.request_shape(first)
    return all(trace.request_shape(i) == reference for i in range(first + 1, last + 1))
