"""Private query processing: paged B+-tree and spatial grid over PIR pages."""

from .btree import NO_PAGE, BTree, BTreeBuilder, InternalNode, LeafNode, decode_node
from .btree_writer import BTreeWriter
from .grid import (
    NO_CELL,
    GridBuilder,
    GridGeometry,
    GridIndex,
    SpatialPoint,
    decode_cell,
)
from .private_index import PrivateKeyValueStore, PrivateSpatialStore

__all__ = [
    "NO_PAGE",
    "BTree",
    "BTreeBuilder",
    "BTreeWriter",
    "InternalNode",
    "LeafNode",
    "decode_node",
    "NO_CELL",
    "GridBuilder",
    "GridGeometry",
    "GridIndex",
    "SpatialPoint",
    "decode_cell",
    "PrivateKeyValueStore",
    "PrivateSpatialStore",
]
