"""Private query processing: indexes stored in a PirDatabase.

These classes bind an index structure to a private page store so that every
index-page access is a private retrieval — the architecture of [23] that
motivates the paper.  They also count retrievals per query, the quantity
that makes perfect-privacy PIR "tens of seconds even for moderate databases"
and the c-approximate scheme attractive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .btree import BTree, BTreeBuilder
from .btree_writer import BTreeWriter
from .grid import GridBuilder, GridIndex, SpatialPoint
from ..core.database import PirDatabase
from ..errors import IndexError_

__all__ = ["PrivateKeyValueStore", "PrivateSpatialStore"]


class PrivateKeyValueStore:
    """An ordered key-value store with private point and range lookups."""

    def __init__(self, database: PirDatabase, root_page_id: int, height: int):
        self.database = database
        self.root_page_id = root_page_id
        self.height = height
        self._retrievals = 0

    @classmethod
    def create(
        cls,
        items: Sequence[Tuple[int, bytes]],
        cache_capacity: int,
        target_c: float = 2.0,
        page_capacity: int = 256,
        **database_options,
    ) -> "PrivateKeyValueStore":
        """Bulk-load a B+-tree over ``items`` and wrap it in a PirDatabase.

        Extra keyword arguments are forwarded to
        :meth:`~repro.core.PirDatabase.create` (seed, spec, backend, ...).
        """
        builder = BTreeBuilder(page_capacity)
        pages, root, height = builder.build(sorted(items))
        database = PirDatabase.create(
            pages,
            cache_capacity=cache_capacity,
            target_c=target_c,
            page_capacity=page_capacity,
            **database_options,
        )
        return cls(database, root, height)

    def _tree(self) -> BTree:
        def fetch(page_id: int) -> bytes:
            self._retrievals += 1
            return self.database.query(page_id)

        return BTree(fetch, self.root_page_id)

    @property
    def retrievals(self) -> int:
        """Total private page retrievals performed by index queries so far."""
        return self._retrievals

    def get(self, key: int) -> Optional[bytes]:
        """Private point lookup: one retrieval per tree level."""
        return self._tree().get(key)

    def range(self, low: int, high: int) -> List[Tuple[int, bytes]]:
        """Private range scan (descent + one retrieval per touched leaf)."""
        return list(self._tree().range(low, high))

    def query_cost_estimate(self) -> float:
        """Expected seconds per point lookup (height x Eq. 8 per-request cost)."""
        return self.height * self.database.expected_query_time()

    # -- mutation (requires reserve pages for node splits) --------------------

    def put(self, key: int, value: bytes) -> None:
        """Insert or overwrite a key; node splits consume reserve pages."""
        writer = BTreeWriter(self.database, self.root_page_id)
        writer.insert(key, value)
        if writer.root_page_id != self.root_page_id:
            self.root_page_id = writer.root_page_id
            self.height += 1

    def remove(self, key: int) -> bool:
        """Delete a key; returns False if it was absent."""
        writer = BTreeWriter(self.database, self.root_page_id)
        return writer.delete(key)


class PrivateSpatialStore:
    """Location-private nearest-neighbour search over a paged grid."""

    def __init__(self, database: PirDatabase, index: GridIndex):
        self.database = database
        self._index = index
        self._retrievals = 0

    @classmethod
    def create(
        cls,
        points: Sequence[SpatialPoint],
        cache_capacity: int,
        target_c: float = 2.0,
        page_capacity: int = 512,
        **database_options,
    ) -> "PrivateSpatialStore":
        builder = GridBuilder(page_capacity)
        pages, geometry = builder.build(points)
        database = PirDatabase.create(
            pages,
            cache_capacity=cache_capacity,
            target_c=target_c,
            page_capacity=page_capacity,
            **database_options,
        )
        store = cls.__new__(cls)
        store.database = database
        store._retrievals = 0

        def fetch(page_id: int) -> bytes:
            store._retrievals += 1
            return database.query(page_id)

        store._index = GridIndex(fetch, geometry)
        return store

    @property
    def retrievals(self) -> int:
        return self._retrievals

    def knn(self, x: float, y: float, k: int = 1) -> List[Tuple[float, SpatialPoint]]:
        """The k nearest points of interest; the provider learns nothing
        about (x, y) beyond the c-approximate relocation bound."""
        if k <= 0:
            raise IndexError_("k must be positive")
        return self._index.knn(x, y, k)

    def nearest(self, x: float, y: float) -> Tuple[float, SpatialPoint]:
        results = self.knn(x, y, 1)
        if not results:
            raise IndexError_("spatial store is empty")
        return results[0]

    def within(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> List[SpatialPoint]:
        """Private spatial range query over an axis-aligned rectangle."""
        return self._index.range_query(min_x, min_y, max_x, max_y)
