"""A paged B+-tree laid out on PIR pages.

The paper's motivation (§1-2, following [23]) is private query processing:
the client resolves queries by privately retrieving pages of a disk-resident
index.  This module provides that index: a bulk-loaded B+-tree whose nodes
serialise into fixed-capacity page payloads, so a tree built here can be
stored directly as the record list of a :class:`~repro.core.PirDatabase`
and traversed with one private page retrieval per level.

Node wire format (inside one page payload):

* leaf:      ``0x01 | u16 n | u64 next_leaf | n * (u64 key, u16 len, bytes)``
* internal:  ``0x02 | u16 n | (n+1) * u64 child | n * u64 key``

Keys are unsigned 64-bit integers; ``next_leaf`` is ``NO_PAGE`` for the last
leaf.  Page ids are assigned contiguously, leaves first, root last — the
root id is returned by the builder and is the only piece of metadata the
client must remember.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import IndexError_

__all__ = ["NO_PAGE", "LeafNode", "InternalNode", "BTreeBuilder", "BTree"]

NO_PAGE = 2**64 - 1

_LEAF = 0x01
_INTERNAL = 0x02
_U64 = struct.Struct(">Q")
_U16 = struct.Struct(">H")


@dataclass
class LeafNode:
    """Sorted (key, value) entries plus the sibling pointer."""

    keys: List[int]
    values: List[bytes]
    next_leaf: int = NO_PAGE

    def encode(self) -> bytes:
        if len(self.keys) != len(self.values):
            raise IndexError_("leaf keys/values length mismatch")
        parts = [bytes([_LEAF]), _U16.pack(len(self.keys)), _U64.pack(self.next_leaf)]
        for key, value in zip(self.keys, self.values):
            if len(value) > 0xFFFF:
                raise IndexError_("value longer than 65535 bytes")
            parts.append(_U64.pack(key))
            parts.append(_U16.pack(len(value)))
            parts.append(value)
        return b"".join(parts)

    def encoded_size(self) -> int:
        return 3 + 8 + sum(8 + 2 + len(v) for v in self.values)


@dataclass
class InternalNode:
    """Separator keys and child page ids: child[i] covers keys < keys[i]."""

    keys: List[int]
    children: List[int]

    def encode(self) -> bytes:
        if len(self.children) != len(self.keys) + 1:
            raise IndexError_("internal node needs len(children) == len(keys) + 1")
        parts = [bytes([_INTERNAL]), _U16.pack(len(self.keys))]
        parts.extend(_U64.pack(child) for child in self.children)
        parts.extend(_U64.pack(key) for key in self.keys)
        return b"".join(parts)

    def encoded_size(self) -> int:
        return 3 + 8 * (len(self.children) + len(self.keys))

    def child_for(self, key: int) -> int:
        """The child page to descend into for ``key``."""
        index = 0
        while index < len(self.keys) and key >= self.keys[index]:
            index += 1
        return self.children[index]


def decode_node(payload: bytes):
    """Parse a page payload into a :class:`LeafNode` or :class:`InternalNode`."""
    if not payload:
        raise IndexError_("empty page is not a B+-tree node")
    kind = payload[0]
    count = _U16.unpack_from(payload, 1)[0]
    if kind == _LEAF:
        next_leaf = _U64.unpack_from(payload, 3)[0]
        offset = 11
        keys: List[int] = []
        values: List[bytes] = []
        for _ in range(count):
            keys.append(_U64.unpack_from(payload, offset)[0])
            length = _U16.unpack_from(payload, offset + 8)[0]
            start = offset + 10
            values.append(payload[start : start + length])
            offset = start + length
        return LeafNode(keys, values, next_leaf)
    if kind == _INTERNAL:
        offset = 3
        children = []
        for _ in range(count + 1):
            children.append(_U64.unpack_from(payload, offset)[0])
            offset += 8
        keys = []
        for _ in range(count):
            keys.append(_U64.unpack_from(payload, offset)[0])
            offset += 8
        return InternalNode(keys, children)
    raise IndexError_(f"unknown node tag 0x{kind:02x}")


class BTreeBuilder:
    """Bottom-up bulk loader producing page payloads ready for PirDatabase."""

    def __init__(self, page_capacity: int):
        if page_capacity < 64:
            raise IndexError_("page_capacity too small for any useful node")
        self.page_capacity = page_capacity

    def build(self, items: Sequence[Tuple[int, bytes]]) -> Tuple[List[bytes], int, int]:
        """Return ``(page_payloads, root_page_id, height)``.

        ``items`` must be sorted by key and keys must be unique.
        """
        if not items:
            raise IndexError_("cannot build an empty B+-tree")
        for (a, _), (b, _) in zip(items, items[1:]):
            if a >= b:
                raise IndexError_("items must be strictly sorted by key")

        pages: List[bytes] = []

        def emit(encoded: bytes) -> int:
            if len(encoded) > self.page_capacity:
                raise IndexError_(
                    f"node of {len(encoded)} bytes exceeds page capacity "
                    f"{self.page_capacity}"
                )
            pages.append(encoded)
            return len(pages) - 1

        # Leaves: greedy fill under the byte budget.
        leaves: List[LeafNode] = []
        current = LeafNode([], [])
        for key, value in items:
            entry_size = 8 + 2 + len(value)
            if current.keys and current.encoded_size() + entry_size > self.page_capacity:
                leaves.append(current)
                current = LeafNode([], [])
            if LeafNode([key], [value]).encoded_size() > self.page_capacity:
                raise IndexError_(f"single entry for key {key} exceeds page capacity")
            current.keys.append(key)
            current.values.append(bytes(value))
        leaves.append(current)

        # Leaves occupy ids [0, len(leaves)), so sibling pointers are known
        # before encoding.
        leaf_ids = list(range(len(leaves)))
        for index, leaf in enumerate(leaves):
            leaf.next_leaf = leaf_ids[index + 1] if index + 1 < len(leaves) else NO_PAGE
            emit(leaf.encode())

        # Internal levels.
        level_ids = leaf_ids
        level_min_keys = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level_ids) > 1:
            height += 1
            next_ids: List[int] = []
            next_min_keys: List[int] = []
            node = InternalNode([], [level_ids[0]])
            node_min = level_min_keys[0]
            for child_id, child_min in zip(level_ids[1:], level_min_keys[1:]):
                trial = InternalNode(node.keys + [child_min],
                                     node.children + [child_id])
                if trial.encoded_size() > self.page_capacity:
                    next_ids.append(emit(node.encode()))
                    next_min_keys.append(node_min)
                    node = InternalNode([], [child_id])
                    node_min = child_min
                else:
                    node = trial
            next_ids.append(emit(node.encode()))
            next_min_keys.append(node_min)
            level_ids = next_ids
            level_min_keys = next_min_keys

        return pages, level_ids[0], height


class BTree:
    """Read-side traversal over any page-fetching function.

    ``fetch(page_id) -> payload bytes`` decouples the tree from the storage:
    pass ``db.query`` for private traversal, or a plain list getter for
    direct (non-private) access in tests.
    """

    def __init__(self, fetch: Callable[[int], bytes], root_page_id: int):
        self._fetch = fetch
        self.root_page_id = root_page_id
        self.pages_fetched = 0

    def _load(self, page_id: int):
        self.pages_fetched += 1
        return decode_node(self._fetch(page_id))

    def _descend_to_leaf(self, key: int) -> LeafNode:
        node = self._load(self.root_page_id)
        while isinstance(node, InternalNode):
            node = self._load(node.child_for(key))
        if not isinstance(node, LeafNode):
            raise IndexError_("descent did not end at a leaf")
        return node

    def get(self, key: int) -> Optional[bytes]:
        """Point lookup; None if the key is absent."""
        leaf = self._descend_to_leaf(key)
        for leaf_key, value in zip(leaf.keys, leaf.values):
            if leaf_key == key:
                return value
        return None

    def range(self, low: int, high: int) -> Iterator[Tuple[int, bytes]]:
        """All (key, value) with ``low <= key <= high``, in key order."""
        if low > high:
            return
        leaf = self._descend_to_leaf(low)
        while True:
            for key, value in zip(leaf.keys, leaf.values):
                if key > high:
                    return
                if key >= low:
                    yield key, value
            if leaf.next_leaf == NO_PAGE:
                return
            node = self._load(leaf.next_leaf)
            if not isinstance(node, LeafNode):
                raise IndexError_("sibling pointer led to a non-leaf page")
            leaf = node
