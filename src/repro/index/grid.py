"""A paged spatial grid for private location-based queries.

The paper's opening motivation is location privacy: an LBS can track a user
through its query log (§1).  With the grid below stored in a
:class:`~repro.core.PirDatabase`, nearest-neighbour queries touch only
private page retrievals, so the provider learns nothing about the user's
location — the application studied in [17, 23].

Layout: the bounding box is cut into ``cells_x x cells_y`` cells; each cell
serialises into one *head* page
(``u64 next_page | u16 n | n * (f64 x, f64 y, u16 len, bytes label)``)
plus, when a dense cell overflows the page capacity, a chain of overflow
pages linked by ``next_page`` (``NO_CELL`` terminates).  The builder first
refines the grid resolution toward balanced cells, then chains whatever
residual density remains — so arbitrarily clustered data always builds.  kNN
search expands rings of cells around the query point and stops once the
next ring cannot contain a closer point than the current k-th best — the
textbook CPM-style expansion.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..errors import IndexError_

__all__ = ["SpatialPoint", "GridBuilder", "GridIndex", "decode_cell", "NO_CELL"]

_U16 = struct.Struct(">H")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

#: Sentinel terminating a cell's overflow chain.
NO_CELL = 2**64 - 1


@dataclass(frozen=True)
class SpatialPoint:
    """A labelled point of interest."""

    x: float
    y: float
    label: bytes = b""

    def distance_to(self, x: float, y: float) -> float:
        return math.hypot(self.x - x, self.y - y)


def encode_cell(points: Sequence[SpatialPoint], next_page: int = NO_CELL) -> bytes:
    """Serialise one cell page: chain pointer, count, then the points."""
    parts = [_U64.pack(next_page), _U16.pack(len(points))]
    for point in points:
        if len(point.label) > 0xFFFF:
            raise IndexError_("label longer than 65535 bytes")
        parts.append(_F64.pack(point.x))
        parts.append(_F64.pack(point.y))
        parts.append(_U16.pack(len(point.label)))
        parts.append(point.label)
    return b"".join(parts)


def decode_cell(payload: bytes) -> Tuple[List[SpatialPoint], int]:
    """Parse a cell page payload; returns (points, next_page)."""
    if len(payload) < 10:
        raise IndexError_("cell payload too short")
    next_page = _U64.unpack_from(payload, 0)[0]
    count = _U16.unpack_from(payload, 8)[0]
    offset = 10
    points: List[SpatialPoint] = []
    for _ in range(count):
        x = _F64.unpack_from(payload, offset)[0]
        y = _F64.unpack_from(payload, offset + 8)[0]
        length = _U16.unpack_from(payload, offset + 16)[0]
        start = offset + 18
        points.append(SpatialPoint(x, y, payload[start : start + length]))
        offset = start + length
    return points, next_page


def _entry_size(point: SpatialPoint) -> int:
    return 8 + 8 + 2 + len(point.label)


_CELL_HEADER = 8 + 2


@dataclass(frozen=True)
class GridGeometry:
    """Where the grid sits in space and how it maps to page ids."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    cells_x: int
    cells_y: int

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """Clamped cell coordinates of an arbitrary point."""
        span_x = max(self.max_x - self.min_x, 1e-12)
        span_y = max(self.max_y - self.min_y, 1e-12)
        cx = int((x - self.min_x) / span_x * self.cells_x)
        cy = int((y - self.min_y) / span_y * self.cells_y)
        return (
            min(max(cx, 0), self.cells_x - 1),
            min(max(cy, 0), self.cells_y - 1),
        )

    def page_of(self, cx: int, cy: int) -> int:
        return cy * self.cells_x + cx

    @property
    def cell_width(self) -> float:
        return (self.max_x - self.min_x) / self.cells_x

    @property
    def cell_height(self) -> float:
        return (self.max_y - self.min_y) / self.cells_y


class GridBuilder:
    """Partition points into cell pages sized to the page capacity."""

    def __init__(self, page_capacity: int):
        if page_capacity < 32:
            raise IndexError_("page_capacity too small for any cell")
        self.page_capacity = page_capacity

    def build(
        self, points: Sequence[SpatialPoint], max_cells: int = 256
    ) -> Tuple[List[bytes], GridGeometry]:
        """Return (page payloads, geometry).

        Pages ``[0, cells_x * cells_y)`` are the row-major cell heads;
        overflow pages for dense cells follow, linked via each page's
        ``next_page`` pointer.  Resolution is refined until cells fit or
        ``max_cells`` per axis is reached, after which density is absorbed
        by chaining.
        """
        if not points:
            raise IndexError_("cannot build a grid over no points")
        for point in points:
            if _CELL_HEADER + _entry_size(point) > self.page_capacity:
                raise IndexError_("a single point exceeds the page capacity")
        min_x = min(p.x for p in points)
        max_x = max(p.x for p in points)
        min_y = min(p.y for p in points)
        max_y = max(p.y for p in points)
        # Refine toward one-page cells, then chain whatever remains.
        cells = max(1, math.isqrt(len(points) // 4) or 1)
        while True:
            geometry = GridGeometry(min_x, min_y, max_x, max_y, cells, cells)
            buckets: List[List[SpatialPoint]] = [
                [] for _ in range(cells * cells)
            ]
            for point in points:
                cx, cy = geometry.cell_of(point.x, point.y)
                buckets[geometry.page_of(cx, cy)].append(point)
            fits = all(
                _CELL_HEADER + sum(_entry_size(p) for p in bucket)
                <= self.page_capacity
                for bucket in buckets
            )
            if fits or cells >= max_cells:
                break
            cells *= 2
        return self._paginate(buckets), geometry

    def _paginate(self, buckets: List[List[SpatialPoint]]) -> List[bytes]:
        """Lay out head pages and overflow chains."""
        # First split every bucket into page-sized groups.
        groups_per_cell: List[List[List[SpatialPoint]]] = []
        for bucket in buckets:
            groups: List[List[SpatialPoint]] = [[]]
            used = _CELL_HEADER
            for point in bucket:
                size = _entry_size(point)
                if used + size > self.page_capacity and groups[-1]:
                    groups.append([])
                    used = _CELL_HEADER
                groups[-1].append(point)
                used += size
            groups_per_cell.append(groups)
        # Assign ids: heads are [0, len(buckets)); overflow pages follow.
        next_overflow_id = len(buckets)
        chain_ids: List[List[int]] = []
        for cell_index, groups in enumerate(groups_per_cell):
            ids = [cell_index]
            for _ in groups[1:]:
                ids.append(next_overflow_id)
                next_overflow_id += 1
            chain_ids.append(ids)
        payloads: List[bytes] = [b""] * next_overflow_id
        for groups, ids in zip(groups_per_cell, chain_ids):
            for position, (group, page_id) in enumerate(zip(groups, ids)):
                next_page = ids[position + 1] if position + 1 < len(ids) else NO_CELL
                payloads[page_id] = encode_cell(group, next_page)
        return payloads


class GridIndex:
    """kNN search over any page-fetching function (pass ``db.query``)."""

    def __init__(self, fetch: Callable[[int], bytes], geometry: GridGeometry):
        self._fetch = fetch
        self.geometry = geometry
        self.pages_fetched = 0

    def _cell_points(self, cx: int, cy: int) -> List[SpatialPoint]:
        """All points of a cell, following its overflow chain."""
        page_id = self.geometry.page_of(cx, cy)
        points: List[SpatialPoint] = []
        hops = 0
        while page_id != NO_CELL:
            self.pages_fetched += 1
            chunk, page_id = decode_cell(self._fetch(page_id))
            points.extend(chunk)
            hops += 1
            if hops > 1_000_000:
                raise IndexError_("overflow chain does not terminate")
        return points

    def knn(self, x: float, y: float, k: int = 1) -> List[Tuple[float, SpatialPoint]]:
        """The k nearest points to (x, y) as (distance, point), ascending.

        Ring expansion: ring r holds the cells at Chebyshev distance r from
        the query cell; once the best possible distance of ring r exceeds
        the current k-th best, the search is complete.
        """
        if k <= 0:
            raise IndexError_("k must be positive")
        geometry = self.geometry
        qx, qy = geometry.cell_of(x, y)
        best: List[Tuple[float, SpatialPoint]] = []
        min_cell_span = min(geometry.cell_width, geometry.cell_height)
        max_ring = max(geometry.cells_x, geometry.cells_y)
        for ring in range(max_ring + 1):
            if len(best) >= k:
                # Any point in ring r is at least (r-1) cell spans away.
                lower_bound = max(0, ring - 1) * min_cell_span
                if lower_bound > best[k - 1][0]:
                    break
            for cx, cy in self._ring_cells(qx, qy, ring):
                for point in self._cell_points(cx, cy):
                    best.append((point.distance_to(x, y), point))
            best.sort(key=lambda pair: pair[0])
            del best[k:]
        return best

    def range_query(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> List[SpatialPoint]:
        """All points inside the axis-aligned rectangle (inclusive bounds).

        Fetches exactly the cells intersecting the rectangle — for the
        private deployment that is one retrieval per intersected cell page
        (plus overflow chain hops).
        """
        if min_x > max_x or min_y > max_y:
            raise IndexError_("empty rectangle: min must not exceed max")
        geometry = self.geometry
        low_cx, low_cy = geometry.cell_of(min_x, min_y)
        high_cx, high_cy = geometry.cell_of(max_x, max_y)
        results: List[SpatialPoint] = []
        for cy in range(low_cy, high_cy + 1):
            for cx in range(low_cx, high_cx + 1):
                for point in self._cell_points(cx, cy):
                    if min_x <= point.x <= max_x and min_y <= point.y <= max_y:
                        results.append(point)
        return results

    def _ring_cells(self, qx: int, qy: int, ring: int):
        geometry = self.geometry
        if ring == 0:
            yield qx, qy
            return
        for cx in range(qx - ring, qx + ring + 1):
            for cy in (qy - ring, qy + ring):
                if 0 <= cx < geometry.cells_x and 0 <= cy < geometry.cells_y:
                    yield cx, cy
        for cy in range(qy - ring + 1, qy + ring):
            for cx in (qx - ring, qx + ring):
                if 0 <= cx < geometry.cells_x and 0 <= cy < geometry.cells_y:
                    yield cx, cy
