"""Read-write B+-tree over a private page store.

The bulk loader in :mod:`repro.index.btree` builds a static tree; real
workloads also insert and delete keys.  This module adds that, with every
node touch being a private page operation:

* node rewrites go through ``db.update`` (trace-identical to queries, §4.3),
* node *allocations* for splits consume the database's reserved free pages
  via ``db.insert`` — page ids double as child pointers, so a freshly
  allocated id plugs straight into the parent node,
* key deletion rewrites the leaf in place (no rebalancing — leaves may
  underflow, which costs read amplification but never correctness; classic
  B-link-tree pragmatism).

The writer keeps no plaintext copy of the tree: every descent re-reads the
(private) pages, so concurrent writers through the same database would see
each other's committed node images.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .btree import InternalNode, LeafNode, decode_node
from ..core.database import PirDatabase
from ..errors import CapacityError, IndexError_

__all__ = ["BTreeWriter"]


class BTreeWriter:
    """Mutating operations over a B+-tree stored in a :class:`PirDatabase`."""

    def __init__(self, database: PirDatabase, root_page_id: int,
                 page_capacity: Optional[int] = None):
        self.database = database
        self.root_page_id = root_page_id
        self.page_capacity = (
            page_capacity if page_capacity is not None
            else database.params.page_capacity
        )

    # -- reads -------------------------------------------------------------

    def _load(self, page_id: int):
        return decode_node(self.database.query(page_id))

    def get(self, key: int) -> Optional[bytes]:
        node = self._load(self.root_page_id)
        while isinstance(node, InternalNode):
            node = self._load(node.child_for(key))
        for leaf_key, value in zip(node.keys, node.values):
            if leaf_key == key:
                return value
        return None

    # -- writes ------------------------------------------------------------

    def insert(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key``; splits nodes as necessary."""
        split = self._insert_into(self.root_page_id, key, value)
        if split is not None:
            separator, new_child = split
            old_root = self.root_page_id
            new_root = InternalNode([separator], [old_root, new_child])
            encoded = new_root.encode()
            if len(encoded) > self.page_capacity:
                raise IndexError_("new root does not fit a page")
            try:
                self.root_page_id = self.database.insert(encoded)
            except CapacityError as exc:
                raise IndexError_(
                    "tree grew past the database's reserved free pages; "
                    "provision a larger reserve_fraction"
                ) from exc

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False if it was absent.  No rebalancing."""
        path: List[Tuple[int, InternalNode]] = []
        page_id = self.root_page_id
        node = self._load(page_id)
        while isinstance(node, InternalNode):
            path.append((page_id, node))
            page_id = node.child_for(key)
            node = self._load(page_id)
        if key not in node.keys:
            return False
        index = node.keys.index(key)
        del node.keys[index]
        del node.values[index]
        self.database.update(page_id, node.encode())
        return True

    # -- internals -----------------------------------------------------------

    def _insert_into(
        self, page_id: int, key: int, value: bytes
    ) -> Optional[Tuple[int, int]]:
        """Insert under ``page_id``; returns (separator, new_page_id) if split."""
        node = self._load(page_id)
        if isinstance(node, LeafNode):
            return self._insert_into_leaf(page_id, node, key, value)

        child_index = 0
        while child_index < len(node.keys) and key >= node.keys[child_index]:
            child_index += 1
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        separator, new_child = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, new_child)
        if node.encoded_size() <= self.page_capacity:
            self.database.update(page_id, node.encode())
            return None
        return self._split_internal(page_id, node)

    def _insert_into_leaf(
        self, page_id: int, leaf: LeafNode, key: int, value: bytes
    ) -> Optional[Tuple[int, int]]:
        if LeafNode([key], [value]).encoded_size() > self.page_capacity:
            raise IndexError_("entry larger than a page")
        position = 0
        while position < len(leaf.keys) and leaf.keys[position] < key:
            position += 1
        if position < len(leaf.keys) and leaf.keys[position] == key:
            leaf.values[position] = value  # overwrite
        else:
            leaf.keys.insert(position, key)
            leaf.values.insert(position, value)
        if leaf.encoded_size() <= self.page_capacity:
            self.database.update(page_id, leaf.encode())
            return None
        return self._split_leaf(page_id, leaf)

    def _allocate(self, encoded: bytes) -> int:
        try:
            return self.database.insert(encoded)
        except CapacityError as exc:
            raise IndexError_(
                "no free pages left for a node split; provision a larger "
                "reserve_fraction at database creation"
            ) from exc

    def _split_leaf(self, page_id: int, leaf: LeafNode) -> Tuple[int, int]:
        # Split by *bytes*, not entry count: with variable-size values an
        # entry-count middle can leave one half still over capacity.  Pick
        # the split point that minimises the larger half (leaves hold few
        # entries, so the scan is cheap).
        sizes = [8 + 2 + len(value) for value in leaf.values]
        total = sum(sizes)
        best_middle, best_worst = 1, float("inf")
        running = 0
        for index in range(len(sizes) - 1):
            running += sizes[index]
            worst_half = max(running, total - running)
            if worst_half < best_worst:
                best_middle, best_worst = index + 1, worst_half
        middle = best_middle
        right = LeafNode(leaf.keys[middle:], leaf.values[middle:],
                         next_leaf=leaf.next_leaf)
        if right.encoded_size() > self.page_capacity:
            raise IndexError_(
                "leaf split cannot satisfy page capacity; entries are too "
                "large relative to the page size"
            )
        right_id = self._allocate(right.encode())
        left = LeafNode(leaf.keys[:middle], leaf.values[:middle],
                        next_leaf=right_id)
        if left.encoded_size() > self.page_capacity:
            raise IndexError_(
                "leaf split cannot satisfy page capacity; entries are too "
                "large relative to the page size"
            )
        self.database.update(page_id, left.encode())
        return right.keys[0], right_id

    def _split_internal(
        self, page_id: int, node: InternalNode
    ) -> Tuple[int, int]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = InternalNode(node.keys[middle + 1 :],
                             node.children[middle + 1 :])
        right_id = self._allocate(right.encode())
        left = InternalNode(node.keys[:middle], node.children[: middle + 1])
        self.database.update(page_id, left.encode())
        return separator, right_id
