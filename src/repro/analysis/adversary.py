"""A Bayesian tracking adversary over the observable disk trace.

Threat model (§3.2): the server sees which locations are read/written and
knows every algorithm inside the secure hardware, but not the keys, the
cache contents, or the client queries.  The strongest thing it can do about
a single page is *probabilistic tracking*: suppose the adversary learns (by
out-of-band means) that page ``p`` was the page fetched as the extra read of
request ``t0``.  From that instant:

* ``p`` sits in the cache; each subsequent request evicts it with
  probability 1/m (Eq. 1),
* if evicted at request ``t``, it lands uniformly on the k block locations
  of request ``t`` (Eq. 2) — the adversary sees exactly which block that is,
* once relocated, a later request may pick ``p`` up again (as target or
  random extra) — but the adversary cannot tell which of the k+1 touched
  pages moved, so its belief spreads.

:class:`TrackingAdversary` maintains the exact posterior over "still cached"
vs. each disk location, folding in one observed request at a time.  The
posterior's max/min ratio over fully-mixed locations is the operational
meaning of Definition 1, and the tests check it never exceeds the configured
``c`` once every location has been swept.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError

__all__ = ["TrackingAdversary"]


class TrackingAdversary:
    """Posterior tracker for one page, fed with observed request footprints."""

    def __init__(self, num_locations: int, block_size: int, cache_capacity: int):
        if num_locations <= 0 or block_size <= 0 or cache_capacity < 2:
            raise ConfigurationError("invalid adversary model parameters")
        if num_locations % block_size != 0:
            raise ConfigurationError("num_locations must be a multiple of block_size")
        self.num_locations = num_locations
        self.block_size = block_size
        self.cache_capacity = cache_capacity
        # Belief state: probability the page is still cached, plus a
        # probability per disk location.  Initialised to "just entered cache".
        self.cached_probability = 1.0
        self.location_probability: List[float] = [0.0] * num_locations
        self.requests_observed = 0

    # -- observation ---------------------------------------------------------

    def observe_request(self, block_start: int, extra_location: int) -> None:
        """Fold in one observed request: block [block_start, +k) and one extra read.

        Belief update:

        1. If the page is cached (prob ``q``), this request evicts it with
           probability 1/m, spreading ``q/m`` uniformly over the k block
           locations.
        2. If the page sits on a location touched by this request (any of
           the k block slots or the extra), it may have been picked up into
           the cache: exactly one of the k+1 pages read moves to the cache,
           each equally likely from the adversary's viewpoint (the swap
           randomisation of lines 17-20 makes the moved slot uniform).
           The remaining mass redistributes uniformly over the k+1 written
           locations.
        """
        k = self.block_size
        if block_start % k != 0 or not 0 <= block_start < self.num_locations:
            raise ConfigurationError(f"invalid block start {block_start}")
        if not 0 <= extra_location < self.num_locations:
            raise ConfigurationError(f"invalid extra location {extra_location}")
        touched = list(range(block_start, block_start + k))
        if extra_location not in touched:
            touched.append(extra_location)

        # Mass currently sitting on touched locations.
        touched_mass = sum(self.location_probability[loc] for loc in touched)

        # Step 2: of the touched mass, 1/(k+1) moves to the cache, the rest
        # is shuffled uniformly across the written-back slots.
        to_cache = touched_mass / (k + 1)
        stays = touched_mass - to_cache

        # Step 1: cached mass may be evicted into the k block slots.
        evicted = self.cached_probability / self.cache_capacity
        self.cached_probability = self.cached_probability - evicted + to_cache

        per_block_slot = evicted / k
        per_touched_slot = stays / len(touched)
        for loc in touched:
            self.location_probability[loc] = per_touched_slot
        for loc in range(block_start, block_start + k):
            self.location_probability[loc] += per_block_slot

        self.requests_observed += 1

    # -- queries ---------------------------------------------------------------

    def belief(self) -> Dict[str, float]:
        """Summary of the posterior (should always sum to ~1)."""
        disk_mass = sum(self.location_probability)
        return {
            "cached": self.cached_probability,
            "on_disk": disk_mass,
            "total": self.cached_probability + disk_mass,
        }

    def normalisation_error(self) -> float:
        return abs(self.belief()["total"] - 1.0)

    def max_location_probability(self) -> float:
        return max(self.location_probability)

    def min_location_probability(self) -> float:
        return min(self.location_probability)

    def posterior_ratio(self) -> float:
        """Max/min posterior over locations — compare against Definition 1's c.

        Meaningful once every location has been written at least once since
        tracking started (one full scan, T = n/k requests); before that the
        minimum is a structural zero.
        """
        low = self.min_location_probability()
        if low <= 0:
            raise ConfigurationError(
                "posterior ratio undefined before a full scan has completed"
            )
        return self.max_location_probability() / low

    def guess(self) -> int:
        """The adversary's single best location guess (argmax posterior)."""
        best, best_probability = 0, -1.0
        for location, probability in enumerate(self.location_probability):
            if probability > best_probability:
                best, best_probability = location, probability
        return best
