"""Statistical tooling for the empirical privacy experiments.

The Monte-Carlo validation compares observed landing histograms against the
closed-form distribution of §4.2.  Eyeballing ratios is not enough for a
reproduction, so this module provides the standard machinery:

* Pearson chi-square goodness-of-fit (p-value via the regularised upper
  incomplete gamma function — implemented from ``math.lgamma`` so the
  library core stays dependency-light; cross-checked against scipy in the
  tests),
* Wilson score intervals for the per-offset landing frequencies,
* maximum-likelihood fit of the geometric eviction law (Eq. 1), whose
  success parameter should recover ``1/m``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "chi_square_test",
    "ChiSquareResult",
    "wilson_interval",
    "fit_geometric",
    "spearman_rank_correlation",
]


def _regularized_gamma_q(s: float, x: float) -> float:
    """Q(s, x) = Gamma(s, x) / Gamma(s): the chi-square survival function
    is Q(df/2, x/2).  Series expansion for x < s + 1, continued fraction
    otherwise (Numerical Recipes construction)."""
    if x < 0 or s <= 0:
        raise ConfigurationError("invalid incomplete-gamma arguments")
    if x == 0:
        return 1.0
    if x < s + 1:
        # P(s, x) by series; Q = 1 - P.
        term = 1.0 / s
        total = term
        denominator = s
        for _ in range(10_000):
            denominator += 1.0
            term *= x / denominator
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        log_p = math.log(total) + s * math.log(x) - x - math.lgamma(s)
        return max(0.0, 1.0 - math.exp(log_p))
    # Q(s, x) by Lentz continued fraction.
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 10_000):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    log_q = math.log(h) + s * math.log(x) - x - math.lgamma(s)
    return min(1.0, math.exp(log_q))


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a goodness-of-fit test."""

    statistic: float
    degrees_of_freedom: int
    p_value: float

    def rejects_at(self, alpha: float = 0.01) -> bool:
        """True if the observed data rejects the model at level alpha."""
        return self.p_value < alpha


def chi_square_test(
    observed: Sequence[int], expected_probabilities: Sequence[float]
) -> ChiSquareResult:
    """Pearson chi-square test of ``observed`` counts against a model.

    ``expected_probabilities`` must sum to ~1; degrees of freedom are
    ``len(bins) - 1`` (no parameters estimated from the data).
    """
    if len(observed) != len(expected_probabilities):
        raise ConfigurationError("observed and expected lengths differ")
    if len(observed) < 2:
        raise ConfigurationError("need at least two bins")
    total = sum(observed)
    if total <= 0:
        raise ConfigurationError("observed counts must be positive in total")
    if abs(sum(expected_probabilities) - 1.0) > 1e-6:
        raise ConfigurationError("expected probabilities must sum to 1")
    statistic = 0.0
    for count, probability in zip(observed, expected_probabilities):
        expected = total * probability
        if expected <= 0:
            raise ConfigurationError("expected bin count must be positive")
        statistic += (count - expected) ** 2 / expected
    dof = len(observed) - 1
    p_value = _regularized_gamma_q(dof / 2.0, statistic / 2.0)
    return ChiSquareResult(statistic, dof, p_value)


def wilson_interval(
    successes: int, trials: int, z: float = 2.5758  # 99% two-sided
) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0 or not 0 <= successes <= trials:
        raise ConfigurationError("invalid binomial inputs")
    p_hat = successes / trials
    denominator = 1 + z**2 / trials
    centre = (p_hat + z**2 / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denominator
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def fit_geometric(samples: Sequence[int]) -> float:
    """MLE of the success probability of a geometric law on {1, 2, ...}.

    For eviction times this should recover 1/m (Eq. 1):
    ``p_hat = 1 / mean(samples)``.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    if any(value < 1 for value in samples):
        raise ConfigurationError("geometric samples start at 1")
    return len(samples) / sum(samples)


def spearman_rank_correlation(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Spearman's rho between two equal-length sequences (average ranks).

    Used by the frequency-analysis experiment to quantify how well the
    server's per-location read counts track true page popularity.
    """
    if len(first) != len(second):
        raise ConfigurationError("sequences must have equal length")
    if len(first) < 2:
        raise ConfigurationError("need at least two observations")

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
                j += 1
            average_rank = (i + j) / 2.0 + 1.0
            for position in range(i, j + 1):
                result[order[position]] = average_rank
            i = j + 1
        return result

    rank_a = ranks(first)
    rank_b = ranks(second)
    mean_a = sum(rank_a) / len(rank_a)
    mean_b = sum(rank_b) / len(rank_b)
    covariance = sum(
        (a - mean_a) * (b - mean_b) for a, b in zip(rank_a, rank_b)
    )
    variance_a = sum((a - mean_a) ** 2 for a in rank_a)
    variance_b = sum((b - mean_b) ** 2 for b in rank_b)
    if variance_a == 0 or variance_b == 0:
        return 0.0
    return covariance / math.sqrt(variance_a * variance_b)
