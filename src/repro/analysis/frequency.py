"""Frequency-analysis attack: why encryption alone is not enough (§1).

The paper's introduction dismisses encryption-only outsourcing because "if
the server has knowledge of the access patterns of the database records
(i.e., their relative popularities), it can extract some information about
a query through the records included in the result set."  This module makes
that argument executable:

* :class:`StaticEncryptedStore` — the strawman: pages encrypted once and
  parked at fixed (secretly permuted) locations; each query reads exactly
  the target's location.
* :class:`FrequencyAnalyst` — the server-side attack: count reads per
  location, rank locations by frequency, and match them against the known
  popularity ranking of the plaintext records.

Against the static store under a skewed workload the analyst recovers the
hot pages almost perfectly; against the c-approximate scheme the continuous
relocation flattens per-location frequencies toward uniform and the
correlation collapses.  ``bench_frequency`` runs both and prints the
comparison; the tests pin the qualitative gap.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .stats import spearman_rank_correlation
from ..baselines.base import CryptoEndpoint
from ..core.database import PirDatabase
from ..errors import ConfigurationError, PageNotFoundError
from ..hardware.specs import HardwareSpec
from ..shuffle.permutation import Permutation
from ..storage.page import Page
from ..storage.trace import READ, AccessTrace

__all__ = ["StaticEncryptedStore", "FrequencyAnalyst", "run_frequency_experiment",
           "FrequencyExperimentResult"]


class StaticEncryptedStore:
    """Encryption-only outsourcing: secret permutation, fixed locations.

    This is the §1 "data encryption" strawman, not a PIR scheme: contents
    are hidden, but each logical page always resolves to the same physical
    location, so access frequencies transfer one-to-one.
    """

    name = "static-encrypted"

    def __init__(self, endpoint: CryptoEndpoint, disk, permutation: Permutation):
        self._endpoint = endpoint
        self._disk = disk
        self._permutation = permutation

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        page_capacity: int = 64,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        master_key: bytes = b"static-store-key",
    ) -> "StaticEncryptedStore":
        if not records:
            raise ConfigurationError("records must be non-empty")
        endpoint = CryptoEndpoint(page_capacity, master_key, spec, seed,
                                  cipher_backend)
        disk = endpoint.new_disk(len(records))
        permutation = Permutation.random(len(records), endpoint.rng)
        for page_id, payload in enumerate(records):
            disk.write(
                permutation.apply(page_id),
                endpoint.seal(Page(page_id, bytes(payload))),
            )
        return cls(endpoint, disk, permutation)

    @property
    def num_pages(self) -> int:
        return self._disk.num_locations

    @property
    def trace(self) -> AccessTrace:
        return self._disk.trace

    def retrieve(self, page_id: int) -> bytes:
        if not 0 <= page_id < self.num_pages:
            raise PageNotFoundError(f"page id {page_id} out of range")
        frame = self._disk.read(self._permutation.apply(page_id))
        self._endpoint.charge_ingest(1)
        return self._endpoint.unseal(frame).payload

    def location_of(self, page_id: int) -> int:
        """Ground truth for scoring the attack (not available to the server)."""
        return self._permutation.apply(page_id)


class FrequencyAnalyst:
    """The honest-but-curious server counting reads per disk location."""

    def __init__(self, num_locations: int):
        if num_locations <= 0:
            raise ConfigurationError("num_locations must be positive")
        self.num_locations = num_locations

    def read_counts(
        self, trace: AccessTrace, setup_cutoff: Optional[int] = None
    ) -> Counter:
        """Per-location read counts over a trace.

        Pass ``setup_cutoff`` to ignore accesses attributed to requests
        before that index (e.g. to drop a warm-up phase); by default every
        read in the trace counts, which is what a server that watched from
        the start would have.
        """
        counts: Counter = Counter()
        for event in trace:
            if event.op != READ:
                continue
            if setup_cutoff is not None and event.request_index < setup_cutoff:
                continue
            for location in event.locations:
                counts[location] += 1
        return counts

    def hottest_locations(self, trace: AccessTrace, top: int = 1) -> List[int]:
        counts = self.read_counts(trace)
        ranked = sorted(range(self.num_locations),
                        key=lambda loc: (-counts[loc], loc))
        return ranked[:top]

    def frequency_vector(self, trace: AccessTrace) -> List[float]:
        counts = self.read_counts(trace)
        total = sum(counts.values()) or 1
        return [counts[loc] / total for loc in range(self.num_locations)]

    def uniformity_gap(self, trace: AccessTrace) -> float:
        """Total-variation distance of observed read frequencies from uniform.

        Near 0 means the trace carries no popularity signal at all.
        """
        frequencies = self.frequency_vector(trace)
        uniform = 1.0 / self.num_locations
        return 0.5 * sum(abs(f - uniform) for f in frequencies)


@dataclass(frozen=True)
class FrequencyExperimentResult:
    """Attack effectiveness against one scheme."""

    scheme: str
    popularity_correlation: float
    hot_page_identified: bool
    uniformity_gap: float


def run_frequency_experiment(
    workload: Sequence[int],
    static_store: StaticEncryptedStore,
    pir_database: PirDatabase,
    popularity: Optional[Dict[int, int]] = None,
) -> List[FrequencyExperimentResult]:
    """Run the same workload against both schemes and score the attack.

    ``popularity`` defaults to the workload's own empirical counts (the
    strongest background knowledge the §1 adversary could have).
    Correlation is computed between each *location's* read count and the
    popularity of the page that truly lives there (static ground truth;
    for the PIR scheme, the page that lived there at setup — which is the
    best stale knowledge an adversary could hold).
    """
    if not workload:
        raise ConfigurationError("workload must be non-empty")
    counts = popularity if popularity is not None else Counter(workload)

    # Remember the PIR database's initial layout before it churns.
    pm = pir_database.cop.page_map
    initial_layout: Dict[int, int] = {}
    for page_id in range(pir_database.num_pages):
        location = pm.lookup(page_id)
        if not location.in_cache:
            initial_layout[location.position] = page_id

    static_store.trace.clear()
    pir_database.trace.clear()
    for page_id in workload:
        static_store.retrieve(page_id)
        pir_database.query(page_id)

    results = []
    hot_page = max(counts, key=lambda pid: counts[pid])

    analyst = FrequencyAnalyst(static_store.num_pages)
    vector = analyst.frequency_vector(static_store.trace)
    truth = [
        counts.get(static_store._permutation.invert(loc), 0)
        for loc in range(static_store.num_pages)
    ]
    results.append(
        FrequencyExperimentResult(
            scheme=static_store.name,
            popularity_correlation=spearman_rank_correlation(vector, truth),
            hot_page_identified=(
                analyst.hottest_locations(static_store.trace, 1)[0]
                == static_store.location_of(hot_page)
            ),
            uniformity_gap=analyst.uniformity_gap(static_store.trace),
        )
    )

    analyst = FrequencyAnalyst(pir_database.params.num_locations)
    vector = analyst.frequency_vector(pir_database.trace)
    truth = [
        counts.get(initial_layout.get(loc, -1), 0)
        for loc in range(pir_database.params.num_locations)
    ]
    hot_initial_location = next(
        (loc for loc, pid in initial_layout.items() if pid == hot_page), -1
    )
    results.append(
        FrequencyExperimentResult(
            scheme="c-approx",
            popularity_correlation=spearman_rank_correlation(vector, truth),
            hot_page_identified=(
                analyst.hottest_locations(pir_database.trace, 1)[0]
                == hot_initial_location
            ),
            uniformity_gap=analyst.uniformity_gap(pir_database.trace),
        )
    )
    return results
