"""Long-run mixing of the continuous reshuffle.

Definition 1 bounds the distribution of a *single* relocation.  A natural
follow-up question (the paper's implicit long-run story) is how quickly the
whole layout mixes: after enough requests, a page that has been touched at
least once should be found at a uniformly random location, and the overall
permutation of touched pages should keep randomising forever instead of
decaying back to any reference layout.

This module measures that on the executed engine:

* :func:`measure_displacement` — how far pages drift from their original
  locations as requests accumulate (mean normalised displacement against
  the uniform-expectation baseline of ~n/3 for circular distance);
* :func:`measure_location_mixing` — for one tracked page, the distribution
  of its location sampled every full scan period across a long run,
  compared with uniform via total variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.database import PirDatabase
from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError

__all__ = ["DisplacementSeries", "measure_displacement", "measure_location_mixing"]


@dataclass(frozen=True)
class DisplacementSeries:
    """Mean page displacement sampled along a request stream."""

    checkpoints: List[int]
    mean_displacement: List[float]
    num_locations: int

    @property
    def uniform_expectation(self) -> float:
        """Expected circular distance between two uniform locations: ~n/4."""
        return self.num_locations / 4.0

    def final_relative_to_uniform(self) -> float:
        """Final mean displacement over the uniform expectation (-> 1)."""
        return self.mean_displacement[-1] / self.uniform_expectation


def _circular_distance(a: int, b: int, n: int) -> int:
    difference = abs(a - b)
    return min(difference, n - difference)


def measure_displacement(
    db: PirDatabase,
    total_requests: int,
    checkpoints: int = 10,
    rng: SecureRandom = None,
) -> DisplacementSeries:
    """Drive uniform queries and sample mean displacement from the initial layout."""
    if total_requests <= 0 or checkpoints <= 0:
        raise ConfigurationError("positive request and checkpoint counts required")
    rng = rng if rng is not None else SecureRandom()
    pm = db.cop.page_map
    n = db.params.num_locations
    initial: Dict[int, int] = {}
    for page_id in range(db.params.total_pages):
        entry = pm.lookup(page_id)
        if not entry.in_cache:
            initial[page_id] = entry.position

    stops = sorted({max(1, round(total_requests * (i + 1) / checkpoints))
                    for i in range(checkpoints)})
    series_checkpoints: List[int] = []
    series_displacement: List[float] = []
    issued = 0
    for stop in stops:
        while issued < stop:
            db.query(rng.randrange(db.params.num_user_pages))
            issued += 1
        moved = []
        for page_id, origin in initial.items():
            entry = pm.lookup(page_id)
            if not entry.in_cache:
                moved.append(_circular_distance(entry.position, origin, n))
        series_checkpoints.append(issued)
        series_displacement.append(sum(moved) / len(moved))
    return DisplacementSeries(series_checkpoints, series_displacement, n)


def measure_location_mixing(
    db: PirDatabase,
    tracked_page: int,
    samples: int = 200,
    rng: SecureRandom = None,
    interval_requests: int = None,
) -> float:
    """TV distance between a tracked page's long-run location samples and uniform.

    Samples the page's disk location every ``interval_requests`` of uniform
    background traffic; a well-mixed scheme drives this toward the
    multinomial sampling-noise floor.  The interval must comfortably exceed
    the page's expected move time (~ n_user requests to be picked up plus m
    to be evicted) or consecutive samples are autocorrelated and the TV
    estimate is inflated; the default uses that expectation.
    """
    if samples <= 0:
        raise ConfigurationError("samples must be positive")
    rng = rng if rng is not None else SecureRandom()
    pm = db.cop.page_map
    n = db.params.num_locations
    if interval_requests is None:
        interval_requests = db.params.num_user_pages + 3 * db.params.cache_capacity
    if interval_requests <= 0:
        raise ConfigurationError("interval_requests must be positive")
    counts = [0] * n
    collected = 0
    while collected < samples:
        for _ in range(interval_requests):
            candidate = rng.randrange(db.params.num_user_pages)
            db.query(candidate)
        entry = pm.lookup(tracked_page)
        if not entry.in_cache:
            counts[entry.position] += 1
            collected += 1
    uniform = 1.0 / n
    total = sum(counts)
    return 0.5 * sum(abs(count / total - uniform) for count in counts)
