"""Analytical cost model of §5 — regenerates Figures 4, 5, 6, 7.

Eq. 7 (secure storage)::

    S = n * (log2(n) + 1) / 8  +  (m + k + 1) * B     [bytes]

Eq. 8 (constant per-query time)::

    Q_t = 4 * t_s + 2 * (k + 1) * B * (1/r_d + 1/r_b + 1/r_ed)

with k from Eq. 6.  The paper's §5 numbers are analytical evaluations of
these formulas over the Table-2 constants; this module reproduces them
exactly (the tests pin the headline values: 27 ms for 1 GB / 1 KB pages at
c = 2, etc.) and adds the two-party variant behind Figure 7.

Every figure's panel definitions (database sizes, cache-size sweeps, epsilon
sweeps) are encoded here so benchmarks and docs share one source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.params import required_block_size
from ..errors import ConfigurationError
from ..hardware.specs import GIGABYTE, IBM_4764, HardwareSpec

__all__ = [
    "ConfigurationPoint",
    "AnalyticalCostModel",
    "TwoPartyCostModel",
    "eq8_terms",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "figure7_series",
    "headline_numbers",
    "FIGURE4_PANELS",
    "FIGURE5_PANELS",
    "FIGURE6_PANELS",
    "FIGURE7_PANELS",
    "FIGURE6_EPSILONS",
]


@dataclass(frozen=True)
class ConfigurationPoint:
    """One point of a figure: a fully resolved (n, m, k) with its costs."""

    database_bytes: int
    page_size: int
    num_pages: int
    cache_pages: int
    block_size: int
    privacy_c: float
    query_time: float
    secure_storage_bytes: float

    @property
    def scan_period(self) -> float:
        return self.num_pages / self.block_size

    @property
    def secure_storage_mb(self) -> float:
        return self.secure_storage_bytes / 1e6

    @property
    def secure_storage_gb(self) -> float:
        return self.secure_storage_bytes / 1e9


def eq8_terms(
    spec: HardwareSpec, block_size: int, page_size: int
) -> Dict[str, float]:
    """Eq. 8 decomposed into its four additive terms, in seconds per query.

    ``seek`` is ``4 * t_s`` (two reads + two writes, one seek each);
    ``disk``, ``link`` and ``crypto`` are the ``2(k+1)B`` transfer charged
    at ``r_d``, ``r_b`` and ``r_ed`` respectively; ``total`` is their sum,
    identical to :meth:`AnalyticalCostModel.query_time`.  This is the
    single source of truth for the per-phase predictions used by
    :class:`repro.obs.costcheck.CostModelCheck` and the per-phase columns
    of ``benchmarks/bench_headline.py``.
    """
    if block_size < 1 or page_size <= 0:
        raise ConfigurationError("block_size and page_size must be positive")
    moved = 2 * (block_size + 1) * page_size
    terms = {
        "seek": 4 * spec.disk.seek_time,
        "disk": moved / spec.disk.read_bandwidth,
        "link": moved / spec.link_bandwidth,
        "crypto": moved / spec.crypto_throughput,
    }
    terms["total"] = sum(terms.values())
    return terms


class AnalyticalCostModel:
    """Eqs. 7-8 over a hardware spec (three-party, coprocessor deployment)."""

    def __init__(self, spec: HardwareSpec = IBM_4764):
        self.spec = spec

    def query_time(self, block_size: int, page_size: int) -> float:
        """Eq. 8: the constant response time for one private retrieval."""
        if block_size < 1 or page_size <= 0:
            raise ConfigurationError("block_size and page_size must be positive")
        spec = self.spec
        per_byte = (
            1.0 / spec.disk.read_bandwidth
            + 1.0 / spec.link_bandwidth
            + 1.0 / spec.crypto_throughput
        )
        return 4 * spec.disk.seek_time + 2 * (block_size + 1) * page_size * per_byte

    @staticmethod
    def secure_storage_bytes(
        num_pages: int, cache_pages: int, block_size: int, page_size: int
    ) -> float:
        """Eq. 7: pageMap bits plus the cache and serverBlock page buffers."""
        if min(num_pages, cache_pages, block_size, page_size) <= 0:
            raise ConfigurationError("all Eq. 7 inputs must be positive")
        page_map = num_pages * (math.log2(num_pages) + 1) / 8.0
        return page_map + (cache_pages + block_size + 1) * page_size

    def point(
        self,
        database_bytes: int,
        page_size: int,
        cache_pages: int,
        privacy_c: float,
    ) -> ConfigurationPoint:
        """Resolve one configuration: n from the DB size, k from Eq. 6."""
        num_pages = database_bytes // page_size
        if num_pages <= 0:
            raise ConfigurationError("database smaller than one page")
        block_size = required_block_size(num_pages, cache_pages, privacy_c)
        return ConfigurationPoint(
            database_bytes=database_bytes,
            page_size=page_size,
            num_pages=num_pages,
            cache_pages=cache_pages,
            block_size=block_size,
            privacy_c=privacy_c,
            query_time=self.query_time(block_size, page_size),
            secure_storage_bytes=self.secure_storage_bytes(
                num_pages, cache_pages, block_size, page_size
            ),
        )

    def units_required(self, point: ConfigurationPoint) -> int:
        """Coprocessors needed to host the configuration's secure storage."""
        return math.ceil(point.secure_storage_bytes / self.spec.secure_memory)

    def cache_required(
        self,
        database_bytes: int,
        page_size: int,
        privacy_c: float,
        target_seconds: float,
    ) -> ConfigurationPoint:
        """Smallest cache m meeting a response-time target (inverse of §5).

        Solves Eq. 8 for the largest admissible k, then Eq. 6 for the m that
        produces it — the calculation behind §5's "sub-second page retrieval
        on 1 TB needs over 4 GB of secure storage".  Raises if the target is
        below the 4-seek floor.
        """
        spec = self.spec
        floor = 4 * spec.disk.seek_time
        if target_seconds <= floor:
            raise ConfigurationError(
                f"target {target_seconds}s is below the 4-seek floor {floor}s"
            )
        per_byte = (
            1.0 / spec.disk.read_bandwidth
            + 1.0 / spec.link_bandwidth
            + 1.0 / spec.crypto_throughput
        )
        k_max = math.floor(
            (target_seconds - floor) / (2 * page_size * per_byte) - 1
        )
        if k_max < 1:
            raise ConfigurationError(
                "target time admits no block at this page size"
            )
        num_pages = database_bytes // page_size
        # Eq. 6 inverted: T = n/k and (1-1/m)^(T-1) = 1/c
        # => m = 1 / (1 - c^(-1/(T-1))).
        period = num_pages / k_max
        if period <= 1:
            cache = 2
        else:
            cache = math.ceil(1.0 / (1.0 - privacy_c ** (-1.0 / (period - 1))))
        cache = max(2, cache)
        point = self.point(database_bytes, page_size, cache, privacy_c)
        # Integer rounding can leave k one notch high; nudge m up until the
        # target is met (few iterations: k is monotone in m).
        while point.query_time > target_seconds:
            cache = math.ceil(cache * 1.02) + 1
            point = self.point(database_bytes, page_size, cache, privacy_c)
        return point


class TwoPartyCostModel:
    """Figure 7's deployment: the owner *is* the secure hardware (§3.1, §5).

    The secure-memory constraint disappears (any server has gigabytes of
    RAM); the bottleneck becomes the network, which must carry 2(k+1) pages
    per query.  The paper's prototype ran over WiFi with a simulated 50 ms
    RTT; ``network_bandwidth`` is calibrated (DESIGN.md §3, EXPERIMENTS.md)
    so the model reproduces the paper's measured 0.737 s at
    (1 TB, B = 1 KB, m = 2 x 10^6).
    """

    def __init__(
        self,
        rtt: float = 0.05,
        network_bandwidth: float = 2.33e6,
        owner_crypto_throughput: float = 100e6,
        spec: HardwareSpec = IBM_4764,
    ):
        if rtt < 0 or network_bandwidth <= 0 or owner_crypto_throughput <= 0:
            raise ConfigurationError("invalid two-party model constants")
        self.rtt = rtt
        self.network_bandwidth = network_bandwidth
        self.owner_crypto_throughput = owner_crypto_throughput
        self.spec = spec

    def query_time(self, block_size: int, page_size: int) -> float:
        """One RTT plus provider disk plus the double page transfer + crypto."""
        if block_size < 1 or page_size <= 0:
            raise ConfigurationError("block_size and page_size must be positive")
        moved = 2 * (block_size + 1) * page_size
        per_byte = 1.0 / self.network_bandwidth + 1.0 / self.owner_crypto_throughput
        disk = 4 * self.spec.disk.seek_time + moved / self.spec.disk.read_bandwidth
        return self.rtt + disk + moved * per_byte

    @staticmethod
    def owner_storage_bytes(
        num_pages: int, cache_pages: int, block_size: int, page_size: int
    ) -> float:
        """Same Eq. 7 structure, now charged against the owner's RAM."""
        return AnalyticalCostModel.secure_storage_bytes(
            num_pages, cache_pages, block_size, page_size
        )

    def point(
        self,
        database_bytes: int,
        page_size: int,
        cache_pages: int,
        privacy_c: float,
    ) -> ConfigurationPoint:
        num_pages = database_bytes // page_size
        block_size = required_block_size(num_pages, cache_pages, privacy_c)
        return ConfigurationPoint(
            database_bytes=database_bytes,
            page_size=page_size,
            num_pages=num_pages,
            cache_pages=cache_pages,
            block_size=block_size,
            privacy_c=privacy_c,
            query_time=self.query_time(block_size, page_size),
            secure_storage_bytes=self.owner_storage_bytes(
                num_pages, cache_pages, block_size, page_size
            ),
        )


# ---------------------------------------------------------------------------
# Figure definitions — panels exactly as printed in the paper.
# ---------------------------------------------------------------------------

KILOBYTE = 1000  # the paper's 1KB page with n = 10^6 for 1GB implies decimal units

#: Figure 4: B = 1 KB, c = 2; cache-size sweeps per database size.
FIGURE4_PANELS: Dict[str, Dict[str, Sequence[int]]] = {
    "1GB": {"db_bytes": (1 * GIGABYTE,), "cache_sizes": (1_000, 5_000, 10_000, 20_000, 50_000)},
    "10GB": {"db_bytes": (10 * GIGABYTE,), "cache_sizes": (10_000, 20_000, 50_000, 80_000, 100_000)},
    "100GB": {"db_bytes": (100 * GIGABYTE,), "cache_sizes": (50_000, 100_000, 200_000, 300_000, 500_000)},
    "1TB": {"db_bytes": (1000 * GIGABYTE,), "cache_sizes": (100_000, 200_000, 300_000, 400_000, 500_000)},
}

#: Figure 5: B = 10 KB, c = 2.
FIGURE5_PANELS: Dict[str, Dict[str, Sequence[int]]] = {
    "1GB": {"db_bytes": (1 * GIGABYTE,), "cache_sizes": (1_000, 2_000, 3_000, 4_000, 5_000)},
    "10GB": {"db_bytes": (10 * GIGABYTE,), "cache_sizes": (2_500, 5_000, 10_000, 20_000, 50_000)},
    "100GB": {"db_bytes": (100 * GIGABYTE,), "cache_sizes": (10_000, 20_000, 40_000, 60_000, 80_000)},
    "1TB": {"db_bytes": (1000 * GIGABYTE,), "cache_sizes": (50_000, 100_000, 200_000, 300_000, 400_000)},
}

#: Figure 6: response time vs. epsilon (c = 1 + eps), B = 1 KB, m fixed per DB.
FIGURE6_PANELS: Dict[str, Dict[str, int]] = {
    "1GB": {"db_bytes": 1 * GIGABYTE, "cache_pages": 50_000},
    "10GB": {"db_bytes": 10 * GIGABYTE, "cache_pages": 100_000},
    "100GB": {"db_bytes": 100 * GIGABYTE, "cache_pages": 500_000},
    "1TB": {"db_bytes": 1000 * GIGABYTE, "cache_pages": 500_000},
}

FIGURE6_EPSILONS: Sequence[float] = (0.01, 0.05, 0.1, 0.5, 1.0)

#: Figure 7: two-party model, 1 TB database, c = 2.
FIGURE7_PANELS: Dict[str, Dict[str, Sequence[int]]] = {
    "1KB": {
        "db_bytes": (1000 * GIGABYTE,),
        "page_size": (1 * KILOBYTE,),
        "cache_sizes": (500_000, 1_000_000, 1_500_000, 2_000_000),
    },
    "10KB": {
        "db_bytes": (1000 * GIGABYTE,),
        "page_size": (10 * KILOBYTE,),
        "cache_sizes": (300_000, 500_000, 700_000, 1_000_000),
    },
}


def figure4_series(
    model: AnalyticalCostModel = AnalyticalCostModel(), privacy_c: float = 2.0
) -> Dict[str, List[ConfigurationPoint]]:
    """All four panels of Figure 4 (1 KB pages)."""
    return {
        panel: [
            model.point(definition["db_bytes"][0], 1 * KILOBYTE, m, privacy_c)
            for m in definition["cache_sizes"]
        ]
        for panel, definition in FIGURE4_PANELS.items()
    }


def figure5_series(
    model: AnalyticalCostModel = AnalyticalCostModel(), privacy_c: float = 2.0
) -> Dict[str, List[ConfigurationPoint]]:
    """All four panels of Figure 5 (10 KB pages)."""
    return {
        panel: [
            model.point(definition["db_bytes"][0], 10 * KILOBYTE, m, privacy_c)
            for m in definition["cache_sizes"]
        ]
        for panel, definition in FIGURE5_PANELS.items()
    }


def figure6_series(
    model: AnalyticalCostModel = AnalyticalCostModel(),
    epsilons: Sequence[float] = FIGURE6_EPSILONS,
) -> Dict[str, List[ConfigurationPoint]]:
    """All four panels of Figure 6 (response time vs. c = 1 + eps, 1 KB pages)."""
    return {
        panel: [
            model.point(
                definition["db_bytes"], 1 * KILOBYTE,
                definition["cache_pages"], 1.0 + eps,
            )
            for eps in epsilons
        ]
        for panel, definition in FIGURE6_PANELS.items()
    }


def figure7_series(
    model: TwoPartyCostModel = TwoPartyCostModel(), privacy_c: float = 2.0
) -> Dict[str, List[ConfigurationPoint]]:
    """Both panels of Figure 7 (two-party model, 1 TB database)."""
    return {
        panel: [
            model.point(
                definition["db_bytes"][0], definition["page_size"][0], m, privacy_c
            )
            for m in definition["cache_sizes"]
        ]
        for panel, definition in FIGURE7_PANELS.items()
    }


def headline_numbers(
    model: AnalyticalCostModel = AnalyticalCostModel(),
) -> List[Dict[str, object]]:
    """The response times quoted in §5's prose, with the paper's values.

    Each row: description, paper-reported seconds, model-computed seconds.
    """
    rows = [
        ("1GB, 1KB pages, m=50k, c=2", 1 * GIGABYTE, KILOBYTE, 50_000, 2.0, 0.027),
        ("1GB, 10KB pages, m=5k, c=2", 1 * GIGABYTE, 10 * KILOBYTE, 5_000, 2.0, 0.094),
        ("10GB, 1KB pages, 1 unit (m=20k), c=2", 10 * GIGABYTE, KILOBYTE, 20_000, 2.0, 0.197),
        ("10GB, 1KB pages, 2 units (m=80k), c=2", 10 * GIGABYTE, KILOBYTE, 80_000, 2.0, 0.065),
        ("100GB, 1KB pages, m=200k, c=2", 100 * GIGABYTE, KILOBYTE, 200_000, 2.0, 0.197),
        ("1TB, 1KB pages, m=500k, c=2", 1000 * GIGABYTE, KILOBYTE, 500_000, 2.0, 0.727),
    ]
    results: List[Dict[str, object]] = []
    for label, db_bytes, page, m, c, paper_seconds in rows:
        point = model.point(db_bytes, page, m, c)
        results.append(
            {
                "label": label,
                "paper_seconds": paper_seconds,
                "model_seconds": point.query_time,
                "block_size": point.block_size,
                "page_size": point.page_size,
                "storage_mb": point.secure_storage_mb,
                "units": model.units_required(point),
            }
        )
    return results
