"""Theoretical privacy model of the continuous reshuffle (Eqs. 1-5).

Setting (Section 4.2): page ``p`` enters the cache at request t = 0.  At each
later request it is evicted with probability 1/m (randomized replacement), and
when evicted it lands uniformly on one of the k locations of the block being
accessed at that request.  The round-robin schedule revisits each location
every T = n/k requests, so the *stationary* probability that p ends up at a
particular location depends only on that location's phase offset within the
scan — locations visited sooner after t = 0 are more likely.

This module computes the exact landing distribution, its extremes (Eqs. 3-4),
the privacy ratio (Eq. 5 / Definition 1), and distance-from-uniform measures
used by the empirical validation in :mod:`repro.analysis.empirical`.
"""

from __future__ import annotations

import math
from typing import List

from ..core.params import achieved_privacy, eviction_probability
from ..errors import ConfigurationError

__all__ = [
    "offset_landing_probabilities",
    "location_landing_distribution",
    "max_landing_probability",
    "min_landing_probability",
    "privacy_ratio",
    "landing_entropy_bits",
    "total_variation_from_uniform",
    "empirical_ratio",
]


def _validate(n: int, m: int, k: int) -> int:
    if n <= 0 or k <= 0 or n % k != 0:
        raise ConfigurationError("need n > 0 divisible by k")
    if m < 2:
        raise ConfigurationError("cache capacity m must be at least 2")
    return n // k


def offset_landing_probabilities(n: int, m: int, k: int) -> List[float]:
    """Per-*location* landing probability by scan offset t = 1..T.

    Entry ``t-1`` is the probability that page p (cached at t = 0) is
    eventually written to one specific location of the block accessed at
    offset t of the scan — the closed form of summing Eq. 2 over all later
    sweeps:  ``(1-1/m)^(t-1) / (m k (1 - (1-1/m)^T))``.

    The k locations of the offset-1 block attain the maximum (Eq. 3); the
    offset-T block the minimum (Eq. 4).
    """
    period = _validate(n, m, k)
    decay = 1.0 - 1.0 / m
    normaliser = m * k * (1.0 - decay**period)
    return [decay ** (t - 1) / normaliser for t in range(1, period + 1)]


def location_landing_distribution(n: int, m: int, k: int) -> List[float]:
    """Landing probability for each of the n disk locations (sums to 1).

    Location ``j`` belongs to block ``j // k``, which the round-robin
    schedule reaches at offset ``(j // k) + 1`` relative to a request issued
    just before block 0 — callers tracking a specific insertion instant
    should rotate the list by the block pointer at that instant.
    """
    per_offset = offset_landing_probabilities(n, m, k)
    distribution: List[float] = []
    for block_index in range(n // k):
        distribution.extend([per_offset[block_index]] * k)
    return distribution


def max_landing_probability(n: int, m: int, k: int) -> float:
    """Eq. 3: probability of the likeliest single location."""
    return offset_landing_probabilities(n, m, k)[0]


def min_landing_probability(n: int, m: int, k: int) -> float:
    """Eq. 4: probability of the least likely single location."""
    return offset_landing_probabilities(n, m, k)[-1]


def privacy_ratio(n: int, m: int, k: int) -> float:
    """Eq. 5: max/min landing-probability ratio = the achieved c.

    Algebraically identical to :func:`repro.core.params.achieved_privacy`;
    computed from the extremes here as a cross-check used by the tests.
    """
    return max_landing_probability(n, m, k) / min_landing_probability(n, m, k)


def landing_entropy_bits(n: int, m: int, k: int) -> float:
    """Shannon entropy of the landing distribution, in bits.

    Perfect PIR (uniform relocation) gives ``log2(n)``; the gap to that
    ceiling is the information the server can gain about one relocation.
    """
    return -sum(
        p * math.log2(p) for p in location_landing_distribution(n, m, k) if p > 0
    )


def total_variation_from_uniform(n: int, m: int, k: int) -> float:
    """Total-variation distance between the landing distribution and uniform."""
    uniform = 1.0 / n
    return 0.5 * sum(
        abs(p - uniform) for p in location_landing_distribution(n, m, k)
    )


def empirical_ratio(counts: List[int], smoothing: float = 1.0) -> float:
    """Max/min ratio of observed per-bin counts with additive smoothing.

    Used to estimate c from Monte-Carlo landing histograms; ``smoothing``
    (Laplace) keeps finite-sample zeros from blowing the ratio up.
    """
    if not counts:
        raise ConfigurationError("counts must be non-empty")
    if smoothing < 0:
        raise ConfigurationError("smoothing must be non-negative")
    high = max(counts) + smoothing
    low = min(counts) + smoothing
    if low == 0:
        raise ConfigurationError("cannot form a ratio with zero counts and no smoothing")
    return high / low


def sanity_check(n: int, m: int, k: int, tolerance: float = 1e-9) -> None:
    """Assert internal consistency of the closed forms (used by tests).

    * the location distribution sums to 1;
    * Eq. 5 computed from extremes equals the params-module formula;
    * the eviction law (Eq. 1) sums to 1 over t.
    """
    distribution = location_landing_distribution(n, m, k)
    if abs(sum(distribution) - 1.0) > tolerance:
        raise ConfigurationError("landing distribution does not sum to 1")
    direct = achieved_privacy(n, m, k)
    via_extremes = privacy_ratio(n, m, k)
    if abs(direct - via_extremes) > tolerance * max(1.0, direct):
        raise ConfigurationError("Eq. 5 disagrees with Eq. 6 inversion")
    horizon = max(10 * m, 1000)
    mass = sum(eviction_probability(m, t) for t in range(1, horizon + 1))
    if mass > 1.0 + tolerance:
        raise ConfigurationError("eviction law exceeds unit mass")
