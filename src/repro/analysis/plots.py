"""ASCII rendering of figure series for terminal benchmark output.

The paper's Figures 4-7 are log-scale line plots; the benches print tables
*and* a terminal sketch of each curve, so the reproduced shapes can be
eyeballed directly in ``bench_output.txt`` without any plotting stack.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["ascii_plot", "ascii_bar_chart"]


def _log_position(value: float, low: float, high: float) -> float:
    return (math.log10(value) - math.log10(low)) / (
        math.log10(high) - math.log10(low)
    )


def _linear_position(value: float, low: float, high: float) -> float:
    return (value - low) / (high - low)


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = True,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (label, xs, ys) series on a character grid.

    Each series gets a distinct marker; points are connected visually by
    their placement only (scatter-style), which is plenty for monotone
    cost curves.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    markers = "*o+x#@%&"
    all_x = [x for _label, xs, _ys in series for x in xs]
    all_y = [y for _label, _xs, ys in series for y in ys]
    if not all_x:
        raise ConfigurationError("series contain no points")
    if log_x and min(all_x) <= 0:
        raise ConfigurationError("log x-axis requires positive x values")
    if log_y and min(all_y) <= 0:
        raise ConfigurationError("log y-axis requires positive y values")
    x_low, x_high = min(all_x), max(all_x)
    y_low, y_high = min(all_y), max(all_y)
    if x_low == x_high:
        x_high = x_low + 1
    if y_low == y_high:
        y_high = y_low * 10 if log_y else y_low + 1

    position_x = _log_position if log_x else _linear_position
    position_y = _log_position if log_y else _linear_position

    grid = [[" "] * width for _ in range(height)]
    for index, (label, xs, ys) in enumerate(series):
        if len(xs) != len(ys):
            raise ConfigurationError(f"series {label!r} has mismatched lengths")
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            column = round(position_x(x, x_low, x_high) * (width - 1))
            row = round(position_y(y, y_low, y_high) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_value = f"{y_high:.3g}"
    bottom_value = f"{y_low:.3g}"
    gutter = max(len(top_value), len(bottom_value)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_value.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_value.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}|")
    axis = f"{x_low:.3g}".ljust(width - 10) + f"{x_high:.3g}".rjust(10)
    lines.append(" " * gutter + "+" + "-" * width + "+")
    lines.append(" " * (gutter + 1) + axis)
    scale = f"[{y_label}{' log' if log_y else ''}] vs [{x_label}{' log' if log_x else ''}]"
    legend = "  ".join(
        f"{markers[i % len(markers)]} {label}"
        for i, (label, _xs, _ys) in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + scale + "   " + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Horizontal bars, linear scale — for distributions and comparisons."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must have equal length")
    if not labels:
        raise ConfigurationError("need at least one bar")
    if min(values) < 0:
        raise ConfigurationError("bar values must be non-negative")
    peak = max(values) or 1.0
    name_width = max(len(str(label)) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{str(label).rjust(name_width)} |{bar.ljust(width)} {value:.4g}")
    return "\n".join(lines)
