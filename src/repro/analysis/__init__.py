"""Privacy analysis (Eqs. 1-5), Monte-Carlo validation, adversary model,
and the §5 analytical cost model that regenerates the paper's figures."""

from .adversary import TrackingAdversary
from .costmodel import (
    AnalyticalCostModel,
    ConfigurationPoint,
    TwoPartyCostModel,
    figure4_series,
    figure5_series,
    figure6_series,
    figure7_series,
    headline_numbers,
)
from .empirical import LandingExperiment, measure_landing_distribution
from .frequency import (
    FrequencyAnalyst,
    FrequencyExperimentResult,
    StaticEncryptedStore,
    run_frequency_experiment,
)
from .mixing import (
    DisplacementSeries,
    measure_displacement,
    measure_location_mixing,
)
from .plots import ascii_bar_chart, ascii_plot
from .stats import (
    ChiSquareResult,
    chi_square_test,
    fit_geometric,
    spearman_rank_correlation,
    wilson_interval,
)
from .sweep import EnginePoint, run_engine_sweep, write_csv
from .privacy import (
    empirical_ratio,
    landing_entropy_bits,
    location_landing_distribution,
    max_landing_probability,
    min_landing_probability,
    offset_landing_probabilities,
    privacy_ratio,
    total_variation_from_uniform,
)

__all__ = [
    "TrackingAdversary",
    "AnalyticalCostModel",
    "ConfigurationPoint",
    "TwoPartyCostModel",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "figure7_series",
    "headline_numbers",
    "LandingExperiment",
    "measure_landing_distribution",
    "FrequencyAnalyst",
    "FrequencyExperimentResult",
    "StaticEncryptedStore",
    "run_frequency_experiment",
    "DisplacementSeries",
    "measure_displacement",
    "measure_location_mixing",
    "ascii_bar_chart",
    "ascii_plot",
    "ChiSquareResult",
    "chi_square_test",
    "fit_geometric",
    "spearman_rank_correlation",
    "wilson_interval",
    "empirical_ratio",
    "landing_entropy_bits",
    "location_landing_distribution",
    "max_landing_probability",
    "min_landing_probability",
    "offset_landing_probabilities",
    "privacy_ratio",
    "total_variation_from_uniform",
    "EnginePoint",
    "run_engine_sweep",
    "write_csv",
]
