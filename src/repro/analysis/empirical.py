"""Monte-Carlo validation of the privacy analysis on the *real* engine.

The theory of §4.2 predicts, for a page entering the cache at t = 0:

* it leaves at request t with geometric probability (Eq. 1),
* it lands uniformly within the k locations of the block accessed at t (Eq. 2),
* grouped by scan offset, landing probabilities decay by (1-1/m) per offset,
  giving the max/min ratio c of Eq. 5.

:func:`measure_landing_distribution` runs the actual
:class:`~repro.core.engine.RetrievalEngine` (not a re-derivation of the math)
many times: it pushes a tracked page into the cache, drives the system with
background queries until the page is evicted, and records where it landed
relative to the scan position at insertion time.  The resulting histograms
are compared against the closed forms by the test-suite and the
``bench_privacy`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .privacy import empirical_ratio, offset_landing_probabilities
from ..core.database import PirDatabase
from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError

__all__ = ["LandingExperiment", "measure_landing_distribution"]


@dataclass
class LandingExperiment:
    """Aggregated Monte-Carlo landing observations."""

    num_locations: int
    block_size: int
    cache_capacity: int
    trials: int
    offset_counts: List[int] = field(default_factory=list)
    slot_counts: List[int] = field(default_factory=list)
    eviction_times: List[int] = field(default_factory=list)

    @property
    def scan_period(self) -> int:
        return self.num_locations // self.block_size

    def empirical_c(self, smoothing: float = 1.0) -> float:
        """Observed max/min landing ratio across scan offsets.

        Unbiased but high-variance (the extreme bins hold few samples);
        prefer :meth:`fitted_c` when trials are scarce relative to T.
        """
        return empirical_ratio(self.offset_counts, smoothing)

    def fitted_c(self) -> float:
        """Low-variance estimate of c via the geometric eviction law.

        Fits the eviction-time samples by maximum likelihood (`p_hat =
        1/mean`, Eq. 1) and plugs into Eq. 5:
        ``c = (1 - p_hat)^-(T - 1)``.  Uses every sample instead of only
        the two extreme offset bins.
        """
        if not self.eviction_times:
            raise ConfigurationError("no eviction times recorded")
        p_hat = len(self.eviction_times) / sum(self.eviction_times)
        p_hat = min(p_hat, 1.0 - 1e-12)
        return (1.0 - p_hat) ** (-(self.scan_period - 1))

    def theoretical_offset_probabilities(self) -> List[float]:
        """Per-offset landing probability implied by Eqs. 1-5.

        Per *block* at offset t (k locations each), i.e. the per-location
        value of :func:`offset_landing_probabilities` times k.
        """
        per_location = offset_landing_probabilities(
            self.num_locations, self.cache_capacity, self.block_size
        )
        return [p * self.block_size for p in per_location]

    def observed_offset_frequencies(self) -> List[float]:
        total = sum(self.offset_counts)
        if total == 0:
            raise ConfigurationError("no landing observations recorded")
        return [count / total for count in self.offset_counts]

    def total_variation_error(self) -> float:
        """TV distance between observed and theoretical offset distributions."""
        theory = self.theoretical_offset_probabilities()
        observed = self.observed_offset_frequencies()
        return 0.5 * sum(abs(a - b) for a, b in zip(theory, observed))

    def mean_eviction_time(self) -> float:
        """Should concentrate near m (mean of the geometric law, Eq. 1)."""
        if not self.eviction_times:
            raise ConfigurationError("no eviction times recorded")
        return sum(self.eviction_times) / len(self.eviction_times)


def measure_landing_distribution(
    db: PirDatabase,
    trials: int = 500,
    rng: Optional[SecureRandom] = None,
    max_wait_requests: Optional[int] = None,
) -> LandingExperiment:
    """Track page relocations through the live engine.

    Each trial: (1) query a random live page until it is resident in the
    cache, (2) note the round-robin block pointer, (3) issue background
    queries for *other* pages until the tracked page is evicted to disk,
    (4) record the landing block's scan offset (1..T), the landing slot
    within that block, and the eviction time.
    """
    if trials <= 0:
        raise ConfigurationError("trials must be positive")
    if db.params.num_user_pages < 2:
        raise ConfigurationError(
            "landing measurement needs at least two user pages (background "
            "queries must avoid the tracked page)"
        )
    rng = rng if rng is not None else SecureRandom()
    params = db.params
    engine = db.engine
    pm = db.cop.page_map
    period = params.scan_period
    wait_limit = max_wait_requests or 200 * params.cache_capacity

    experiment = LandingExperiment(
        num_locations=params.num_locations,
        block_size=params.block_size,
        cache_capacity=params.cache_capacity,
        trials=trials,
        offset_counts=[0] * period,
        slot_counts=[0] * params.block_size,
    )

    def background_query(excluding: int) -> None:
        while True:
            candidate = rng.randrange(params.num_user_pages)
            if candidate != excluding:
                engine.retrieve(candidate)
                return

    for _ in range(trials):
        tracked = rng.randrange(params.num_user_pages)
        # Step 1: ensure the tracked page is cached.
        attempts = 0
        while not pm.is_cached(tracked):
            engine.retrieve(tracked)
            attempts += 1
            if attempts > wait_limit:
                raise ConfigurationError(
                    "tracked page would not settle in the cache; configuration "
                    "is degenerate (m too small relative to churn)"
                )
        # Step 2: reference scan position at insertion time.
        start_block = engine.next_block_index
        # Step 3: drive the system until eviction.
        elapsed = 0
        while pm.is_cached(tracked):
            background_query(tracked)
            elapsed += 1
            if elapsed > wait_limit:
                raise ConfigurationError(
                    "tracked page was never evicted within the wait limit"
                )
        # Step 4: record landing placement.
        location = pm.lookup(tracked).position
        landing_block = location // params.block_size
        offset = (landing_block - start_block) % params.num_blocks  # 0-based
        experiment.offset_counts[offset] += 1
        experiment.slot_counts[location % params.block_size] += 1
        experiment.eviction_times.append(elapsed)

    return experiment
