"""Parameter sweeps over the executed engine, with CSV export.

The figure benches sweep the *analytical* model; this module sweeps the
*executed* system — building a real database per configuration, driving a
workload, and recording measured quantities (virtual-clock latency,
empirical privacy, storage) — and writes machine-readable CSVs so results
can be post-processed outside Python.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, fields
from typing import Iterable, List, Optional, Sequence

from .empirical import measure_landing_distribution
from ..baselines import make_records
from ..core.database import PirDatabase
from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError
from ..hardware.specs import HardwareSpec

__all__ = ["EnginePoint", "run_engine_sweep", "write_csv"]


@dataclass(frozen=True)
class EnginePoint:
    """One executed configuration's measurements."""

    num_user_pages: int
    num_locations: int
    cache_capacity: int
    block_size: int
    target_c: float
    achieved_c: float
    measured_c: float
    mean_latency: float
    secure_storage_bytes: int
    requests: int

    @classmethod
    def csv_header(cls) -> List[str]:
        return [field.name for field in fields(cls)]

    def csv_row(self) -> List[object]:
        return [getattr(self, field.name) for field in fields(self)]


def run_engine_sweep(
    num_records: int,
    cache_capacities: Sequence[int],
    target_c: float = 2.0,
    page_capacity: int = 16,
    trials: int = 300,
    workload_length: int = 200,
    spec: Optional[HardwareSpec] = None,
    seed: int = 1,
) -> List[EnginePoint]:
    """Build and measure one executed database per cache capacity.

    For each m: solve k from (n, m, c), run ``workload_length`` uniform
    queries for the latency figure, then ``trials`` tracked relocations for
    the measured privacy ratio.
    """
    if not cache_capacities:
        raise ConfigurationError("need at least one cache capacity")
    points: List[EnginePoint] = []
    records = make_records(num_records, min(16, page_capacity))
    for index, cache in enumerate(cache_capacities):
        db = PirDatabase.create(
            records,
            cache_capacity=cache,
            target_c=target_c,
            page_capacity=page_capacity,
            reserve_fraction=0.2,
            cipher_backend="null",
            trace_enabled=False,
            seed=seed + index,
            spec=spec if spec is not None else HardwareSpec(),
        )
        rng = SecureRandom(seed + 1000 + index)
        started = db.clock.now
        for _ in range(workload_length):
            db.query(rng.randrange(num_records))
        mean_latency = (db.clock.now - started) / workload_length
        experiment = measure_landing_distribution(
            db, trials=trials, rng=rng.spawn("landing")
        )
        points.append(
            EnginePoint(
                num_user_pages=num_records,
                num_locations=db.params.num_locations,
                cache_capacity=cache,
                block_size=db.params.block_size,
                target_c=target_c,
                achieved_c=db.params.achieved_c,
                measured_c=experiment.fitted_c(),
                mean_latency=mean_latency,
                secure_storage_bytes=db.storage_report().total,
                requests=db.engine.request_count,
            )
        )
    return points


def write_csv(path: str, header: Sequence[str],
              rows: Iterable[Sequence[object]]) -> int:
    """Write rows to ``path``; returns the number of data rows written."""
    if not header:
        raise ConfigurationError("CSV header must be non-empty")
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            if len(row) != len(header):
                raise ConfigurationError(
                    f"row of {len(row)} fields does not match header of "
                    f"{len(header)}"
                )
            writer.writerow(list(row))
            count += 1
    return count
