"""Network clients for the PIR serving stack.

:class:`NetworkClient` is the blocking mirror of
:class:`~repro.service.frontend.ServiceClient`: same typed operation
surface (via :class:`~repro.service.frontend.ClientOperationsMixin`),
same retry discipline keyed on :class:`~repro.errors
.TransientChannelError` and retryable refusals — but over a real TCP
socket, with real ``time.sleep`` backoff instead of virtual-clock
advances.

Duplicate safety: each logical call seals its request **once** and
retransmits the *same* sealed bytes under the *same* request id on every
retry.  The frontend's reply cache answers a byte-identical duplicate
without re-executing, so a retransmission after a lost reply cannot
double-apply a mutation.  Replies carrying an older request id (the late
answer to a transmission we gave up on) are discarded, keeping the
stream synchronised.

Reconnect-and-resume: a connection reset or read timeout mid-request no
longer surfaces as a hard error.  The client tears the socket down,
re-dials, presents its session id in a RESUME frame (the server — or a
cluster backend adopting the session after failover — re-attaches the
suite and reply cache), and retransmits the identical sealed bytes.  A
read timeout can leave half a frame in the old receive buffer, which is
why the *only* safe reaction to any transport error is a fresh
connection — never another read on the same socket.  Connect and read
deadlines are configured separately and both surface as the typed
:class:`~repro.errors.NetTimeoutError`.

:class:`AsyncNetworkClient` is the coroutine variant used by the load
generator — same framing, handshake and request-id discipline, one
outstanding request per connection.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from .framing import (
    Bye,
    Hello,
    NetRefused,
    Reply,
    Request,
    Resume,
    Welcome,
    decode_net_message,
    encode_net_message,
    read_frame_async,
    read_frame_sock,
    write_frame_async,
    write_frame_sock,
)
from ..crypto.rng import SecureRandom
from ..crypto.suite import CipherSuite
from ..errors import (
    DegradedServiceError,
    NetTimeoutError,
    ProtocolError,
    TransientChannelError,
)
from ..faults.retry import RetryPolicy
from ..service import protocol
from ..service.frontend import (
    SESSION_BACKEND,
    ClientOperationsMixin,
    session_master_key,
)
from ..service.health import error_for_refusal
from ..sim.metrics import CounterSet, LatencySeries

__all__ = ["NetworkClient", "AsyncNetworkClient"]

#: Never sleep longer than this between retries, whatever the server's
#: retry-after hint says — a buggy hint must not hang a client for hours.
MAX_BACKOFF_S = 5.0


def _client_suite(session_id: int, seed: Optional[int] = None) -> CipherSuite:
    """The client's copy of the session suite (see ``session_master_key``).

    Nonces only need uniqueness — they travel inside each frame — so the
    client draws them from its own RNG; the two ends' streams are
    independent by construction (different seed derivations).
    """
    rng = SecureRandom(seed).spawn(f"net-client-nonces-{session_id}")
    return CipherSuite(session_master_key(session_id),
                       backend=SESSION_BACKEND, rng=rng)


def _check_handshake_reply(message) -> int:
    if isinstance(message, NetRefused):
        raise error_for_refusal(
            message.refusal.code,
            f"handshake refused: {message.refusal.reason}",
            message.refusal.retry_after,
        )
    if not isinstance(message, Welcome):
        raise ProtocolError(
            f"handshake expected WELCOME, got {type(message).__name__}"
        )
    return message.session_id


def _reply_sealed(message, request_id: int) -> Optional[bytes]:
    """Sealed reply bytes if ``message`` answers ``request_id``.

    Returns None for a stale reply (an answer to an earlier transmission
    we already gave up on — discard and keep reading); raises for
    refusals and stream desynchronisation.
    """
    if isinstance(message, (Reply, NetRefused)):
        if message.request_id < request_id:
            return None
        if message.request_id > request_id:
            raise ProtocolError(
                f"reply for request {message.request_id} while "
                f"{request_id} is outstanding"
            )
        if isinstance(message, NetRefused):
            raise error_for_refusal(
                message.refusal.code,
                f"request refused: {message.refusal.reason}",
                message.refusal.retry_after,
            )
        return message.sealed
    raise ProtocolError(f"unexpected {type(message).__name__} frame")


class NetworkClient(ClientOperationsMixin):
    """Blocking TCP client with the :class:`ServiceClient` surface.

    With a :class:`~repro.faults.retry.RetryPolicy`, transient channel
    faults (timeouts — the connection survives) and retryable refusals
    (admission sheds, degraded service) are retried with exponential
    backoff, honouring the server's retry-after hint as a floor.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        rng_seed: Optional[int] = None,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ):
        """``timeout`` is the back-compat deadline for both phases;
        ``connect_timeout``/``read_timeout`` override it separately — a
        connect timeout means "host is down" (a router should try another
        member), a read timeout means "request lost in flight" (reconnect
        and retransmit).
        """
        self.host = host
        self.port = port
        self.connect_timeout = (connect_timeout if connect_timeout is not None
                                else timeout)
        self.read_timeout = (read_timeout if read_timeout is not None
                             else timeout)
        self.retry = retry
        self._retry_rng = SecureRandom(rng_seed).spawn("net-client-retry")
        self.counters = CounterSet()
        self.latencies = LatencySeries()
        self._next_request_id = 1
        self._sock: Optional[socket.socket] = self._dial()
        try:
            write_frame_sock(self._sock, encode_net_message(Hello()))
            reply = decode_net_message(read_frame_sock(self._sock))
            self.session_id = _check_handshake_reply(reply)
        except BaseException:
            self._sock.close()
            raise
        self._suite = _client_suite(self.session_id, rng_seed)

    # -- transport -------------------------------------------------------------

    def _dial(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except socket.timeout as exc:
            raise NetTimeoutError(
                f"connect to {self.host}:{self.port} timed out"
            ) from exc
        except OSError as exc:
            raise TransientChannelError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        sock.settimeout(self.read_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reconnect(self) -> None:
        """Re-dial and RESUME the session on the fresh connection."""
        self._teardown()
        sock = self._dial()
        try:
            write_frame_sock(sock,
                             encode_net_message(Resume(self.session_id)))
            reply = decode_net_message(read_frame_sock(sock))
            resumed = _check_handshake_reply(reply)
            if resumed != self.session_id:
                raise ProtocolError(
                    f"resumed session {resumed} != {self.session_id}"
                )
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self.counters.increment("reconnects")

    def _transact(self, request_id: int, sealed: bytes) -> bytes:
        """One transmission: send the sealed request, read its sealed reply.

        On a transport error (reset, peer gone, read deadline) the broken
        socket is torn down and — once per transaction, even without a
        retry policy — the client reconnects, resumes its session and
        retransmits the identical bytes; the server's reply cache turns
        the duplicate into the original reply.  Exposed for tests that
        need to retransmit the exact same bytes; normal callers go through
        the operation methods.
        """
        resumed = False
        while True:
            try:
                if self._sock is None:
                    self._reconnect()
                write_frame_sock(
                    self._sock, encode_net_message(Request(request_id, sealed))
                )
                while True:
                    message = decode_net_message(read_frame_sock(self._sock))
                    sealed_reply = _reply_sealed(message, request_id)
                    if sealed_reply is not None:
                        return sealed_reply
            except TransientChannelError:
                # A timed-out read may leave half a frame buffered on the
                # old socket; the only safe continuation is a fresh
                # connection.  Resume once, then let the error propagate
                # to the retry policy (which re-enters with _sock=None).
                self._teardown()
                if resumed:
                    raise
                resumed = True
                self._reconnect()
                self.counters.increment("retransmits")

    def _call(self, message: protocol.ClientMessage) -> protocol.ClientMessage:
        sealed = self._suite.encrypt_page(
            protocol.encode_client_message(message)
        )
        request_id = self._next_request_id
        self._next_request_id += 1
        attempt = 0
        while True:
            started = time.monotonic()
            try:
                sealed_reply = self._transact(request_id, sealed)
                self.latencies.record(time.monotonic() - started)
                reply = protocol.decode_client_message(
                    self._suite.decrypt_page(sealed_reply)
                )
                if isinstance(reply, protocol.Refused):
                    raise error_for_refusal(
                        reply.code,
                        f"request refused: {reply.reason}",
                        reply.retry_after,
                    )
                return reply
            except (TransientChannelError, DegradedServiceError) as exc:
                if (self.retry is None
                        or attempt + 1 >= self.retry.max_attempts):
                    raise
                hint = max(getattr(exc, "retry_after", 0.0), 0.0)
                delay = min(
                    max(self.retry.delay_for(attempt, self._retry_rng), hint),
                    MAX_BACKOFF_S,
                )
                time.sleep(delay)
                self.counters.increment("retries")
                attempt += 1

    def close(self) -> None:
        """Orderly goodbye; safe to call twice or on a broken socket."""
        if self._sock is None:
            return
        try:
            write_frame_sock(self._sock, encode_net_message(Bye()))
        except TransientChannelError:
            pass
        try:
            self._sock.close()
        finally:
            self._sock = None

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AsyncNetworkClient:
    """Coroutine TCP client for load generation — one request in flight.

    No built-in *refusal* retry: the load generator decides what to do
    with a :class:`~repro.errors.DegradedServiceError` (count the shed,
    back off, or give up) because that *is* the measurement.  Transport
    failures, though, reconnect-and-resume exactly like the blocking
    client — a chaos drill measures the service through faults, not the
    fault itself.
    """

    def __init__(self, reader, writer, session_id: int,
                 rng_seed: Optional[int] = None,
                 host: Optional[str] = None, port: Optional[int] = None):
        self._reader = reader
        self._writer = writer
        self.session_id = session_id
        self.host = host
        self.port = port
        self._suite = _client_suite(session_id, rng_seed)
        self._next_request_id = 1
        self.counters = CounterSet()
        self.latencies = LatencySeries()

    @classmethod
    async def connect(cls, host: str, port: int,
                      rng_seed: Optional[int] = None) -> "AsyncNetworkClient":
        import asyncio

        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise TransientChannelError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        try:
            await write_frame_async(writer, encode_net_message(Hello()))
            reply = decode_net_message(await read_frame_async(reader))
            session_id = _check_handshake_reply(reply)
        except BaseException:
            writer.close()
            raise
        return cls(reader, writer, session_id, rng_seed, host=host, port=port)

    async def _reconnect(self) -> None:
        """Re-dial and RESUME the session (needs host/port from connect())."""
        import asyncio

        if self.host is None or self.port is None:
            raise TransientChannelError(
                "connection lost and no dial address to resume with"
            )
        self._writer.close()
        try:
            reader, writer = await asyncio.open_connection(self.host,
                                                           self.port)
        except OSError as exc:
            raise TransientChannelError(
                f"cannot reconnect to {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            await write_frame_async(
                writer, encode_net_message(Resume(self.session_id))
            )
            reply = decode_net_message(await read_frame_async(reader))
            resumed = _check_handshake_reply(reply)
            if resumed != self.session_id:
                raise ProtocolError(
                    f"resumed session {resumed} != {self.session_id}"
                )
        except BaseException:
            writer.close()
            raise
        self._reader, self._writer = reader, writer
        self.counters.increment("reconnects")

    async def call(
        self, message: protocol.ClientMessage
    ) -> protocol.ClientMessage:
        """One sealed round trip; raises the refusal's error class."""
        sealed = self._suite.encrypt_page(
            protocol.encode_client_message(message)
        )
        request_id = self._next_request_id
        self._next_request_id += 1
        started = time.monotonic()
        resumed = False
        while True:
            try:
                await write_frame_async(
                    self._writer,
                    encode_net_message(Request(request_id, sealed)),
                )
                while True:
                    reply = decode_net_message(
                        await read_frame_async(self._reader)
                    )
                    sealed_reply = _reply_sealed(reply, request_id)
                    if sealed_reply is not None:
                        break
                break
            except (TransientChannelError, ConnectionError, OSError) as exc:
                if resumed:
                    if isinstance(exc, TransientChannelError):
                        raise
                    raise TransientChannelError(
                        f"connection lost: {exc}"
                    ) from exc
                resumed = True
                await self._reconnect()
                self.counters.increment("retransmits")
        self.latencies.record(time.monotonic() - started)
        decoded = protocol.decode_client_message(
            self._suite.decrypt_page(sealed_reply)
        )
        if isinstance(decoded, protocol.Refused):
            raise error_for_refusal(
                decoded.code,
                f"request refused: {decoded.reason}",
                decoded.retry_after,
            )
        return decoded

    async def query(self, page_id: int) -> bytes:
        reply = await self.call(protocol.Query(page_id))
        if not isinstance(reply, protocol.Result):
            raise ProtocolError(f"expected Result, got {type(reply).__name__}")
        return reply.payload

    async def close(self) -> None:
        try:
            await write_frame_async(self._writer, encode_net_message(Bye()))
        except (TransientChannelError, ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
