"""Length-prefixed framing and the network envelope protocol.

Two layers live here, both below the sealed
:mod:`repro.service.protocol` messages:

* **Framing** — every transmission on the TCP stream is
  ``u32 length || body``.  The length prefix is validated against
  :data:`MAX_FRAME_BYTES` *before* any body bytes are read or allocated,
  so a garbage or hostile prefix (``0xFFFFFFFF`` from a port scanner, a
  desynchronised peer) costs four bytes of buffering, not 4 GiB.  Both
  sync-socket helpers (used by the blocking :class:`~repro.net.client
  .NetworkClient`) and asyncio helpers (used by the server and the async
  load-generator client) share the same checks.

* **Envelope messages** — a one-byte type tag plus body, carried inside a
  frame.  The envelope maps connections onto frontend sessions and carries
  admission-control refusals that must be readable *before* a session
  suite exists:

  ==========  ===========  ===============================================
  tag         message      body
  ==========  ===========  ===============================================
  0x01        HELLO        magic ``RPIR``, u8 protocol version
  0x02        WELCOME      u64 session id (the handshake's shared secret)
  0x03        REQUEST      u32 request id, sealed service-protocol bytes
  0x04        REPLY        u32 request id, u64 replication watermark,
                           sealed service-protocol bytes
  0x05        REFUSED      u32 request id, plaintext encoded
                           :class:`repro.service.protocol.Refused`
  0x06        BYE          (empty) — orderly session close
  0x07        PING         (empty) — health probe; no session required
  0x08        PONG         u8 flags (bit 0 = draining), u32 open sessions
  0x09        RESUME       u64 session id — re-attach after reconnect
  0x0A        REPL_RECORD  origin address, u64 sequence, sealed
                           replication record bytes
  0x0B        REPL_ACK     origin address, u64 highest contiguously
                           applied sequence from that origin
  0x0C        REPL_QUERY   origin address — "how far have you applied
                           that origin's stream?"
  0x0D        REPL_STATE   origin address, u64 applied sequence — the
                           answer to REPL_QUERY
  ==========  ===========  ===============================================

  Origin addresses in the REPL_* messages are u16-length-prefixed UTF-8
  ``host:port`` strings — a backend's advertised address doubles as its
  replication stream identity.

  Request ids are per-connection client-chosen sequence numbers echoed in
  the matching REPLY/REFUSED, so a client that timed out and retransmitted
  can discard the late reply to an earlier transmission instead of
  desynchronising the stream.  Envelope REFUSED is plaintext because it
  carries no secrets (reason/code/retry-after) and must be expressible
  when no session exists yet (handshake shed) or when the worker cannot
  seal (unknown/reaped session).

  PING/PONG carry the health-gated cluster membership (DESIGN.md §13): the
  router probes each backend on an interval and a backend answers without
  touching the engine, so a wedged worker pool still shows up as a probe
  timeout rather than a false "healthy".  PONG is plaintext for the same
  reason REFUSED is: it exists before any session does, and it carries
  nothing the connection pattern itself does not already reveal.

  The REPL_* messages carry DESIGN.md §13's sealed replication stream
  between cluster backends.  A connection whose first frame is REPL_QUERY
  or REPL_RECORD is a peer replication channel, not a client session: the
  sender streams sealed, sequence-numbered records and the receiver
  answers each with the highest sequence it has *contiguously* applied
  from that origin, which doubles as the catch-up cursor after a restart.
  Record bodies are sealed under the replica-shared master key and padded
  to a fixed size before sealing, so neither the router nor a network
  observer learns which requests were writes.  The REPLY watermark is the
  serving backend's own replication sequence after the request — plain
  u64, because it is a request *counter*, which connection-level traffic
  analysis already reveals; the router uses it for read-your-writes
  failover gating and strips it before forwarding to clients.

  RESUME replaces HELLO on a re-dialled connection: the client presents
  the session id from its original WELCOME and the server re-attaches the
  connection to that session's suite and reply cache, so a retransmitted
  sealed request dedupes instead of double-applying.  Cluster backends
  additionally *adopt* unknown resumed ids (the suite is a pure function
  of the id — see :func:`repro.service.frontend.session_master_key`),
  which is what lets the router fail a session over to a replica.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass
from typing import Union

from ..errors import NetTimeoutError, ProtocolError, TransientChannelError
from ..service import protocol

__all__ = [
    "MAX_FRAME_BYTES",
    "NET_VERSION",
    "NET_MAGIC",
    "Hello",
    "Welcome",
    "Request",
    "Reply",
    "NetRefused",
    "Bye",
    "Ping",
    "Pong",
    "Resume",
    "ReplRecord",
    "ReplAck",
    "ReplQuery",
    "ReplState",
    "encode_net_message",
    "decode_net_message",
    "encode_frame",
    "read_frame_async",
    "write_frame_async",
    "read_frame_sock",
    "write_frame_sock",
]

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

#: Hard cap on one framed transmission.  Large enough for any sensible
#: sealed batch (a full-size BATCH of page-sized ops), small enough that a
#: hostile length prefix cannot make the server allocate unbounded memory.
#: Checked on both send and receive, before the body is read.
MAX_FRAME_BYTES = 16 * 1024 * 1024

NET_MAGIC = b"RPIR"
NET_VERSION = 1

_T_HELLO = 0x01
_T_WELCOME = 0x02
_T_REQUEST = 0x03
_T_REPLY = 0x04
_T_REFUSED = 0x05
_T_BYE = 0x06
_T_PING = 0x07
_T_PONG = 0x08
_T_RESUME = 0x09
_T_REPL_RECORD = 0x0A
_T_REPL_ACK = 0x0B
_T_REPL_QUERY = 0x0C
_T_REPL_STATE = 0x0D

_PONG_DRAINING = 0x01

#: Upper bound on an advertised ``host:port`` origin string; anything
#: longer than this in a REPL_* body is a desynchronised or hostile peer.
_MAX_ORIGIN_BYTES = 256


@dataclass(frozen=True)
class Hello:
    version: int = NET_VERSION


@dataclass(frozen=True)
class Welcome:
    session_id: int


@dataclass(frozen=True)
class Request:
    request_id: int
    sealed: bytes


@dataclass(frozen=True)
class Reply:
    """A sealed answer to one REQUEST.

    ``repl_seq`` is the serving backend's replication high-water mark
    after this request (0 when the backend has no replication attached).
    The cluster router records it per session as the read-your-writes
    floor for failover, and forwards clients a plain ``repl_seq == 0``
    reply so the watermark never leaves the cluster.
    """

    request_id: int
    sealed: bytes
    repl_seq: int = 0


@dataclass(frozen=True)
class NetRefused:
    """An envelope-level refusal (admission shed, drain, dead session).

    ``request_id`` echoes the refused REQUEST (0 for handshake-stage
    refusals); ``refusal`` reuses the service protocol's machine-readable
    :class:`~repro.service.protocol.Refused` shape, so clients surface it
    through the same :func:`~repro.service.health.error_for_refusal` path
    as a sealed refusal.
    """

    request_id: int
    refusal: protocol.Refused


@dataclass(frozen=True)
class Bye:
    pass


@dataclass(frozen=True)
class Ping:
    """Health probe.  Answered with :class:`Pong` outside any session."""


@dataclass(frozen=True)
class Pong:
    """Health probe answer.

    ``draining`` lets the router stop pinning *new* sessions to a member
    that is being rolled while its in-flight work finishes; ``sessions``
    is the member's open-session count, the router's least-loaded routing
    signal.
    """

    draining: bool
    sessions: int


@dataclass(frozen=True)
class Resume:
    """Re-attach a re-dialled connection to an existing session."""

    session_id: int


@dataclass(frozen=True)
class ReplRecord:
    """One sealed replication record from ``origin``'s stream."""

    origin: str
    seq: int
    sealed: bytes


@dataclass(frozen=True)
class ReplAck:
    """Receiver's highest contiguously applied sequence from ``origin``.

    An ack below the sequence just sent means the receiver could not take
    the record (apply queue full, draining); the streamer backs off and
    retransmits — records are idempotent under sequence tracking.
    """

    origin: str
    seq: int


@dataclass(frozen=True)
class ReplQuery:
    """Ask a backend how far it has applied ``origin``'s stream."""

    origin: str


@dataclass(frozen=True)
class ReplState:
    """Answer to :class:`ReplQuery`: applied sequence for ``origin``."""

    origin: str
    applied: int


NetMessage = Union[
    Hello, Welcome, Request, Reply, NetRefused, Bye, Ping, Pong, Resume,
    ReplRecord, ReplAck, ReplQuery, ReplState,
]


def _encode_origin(origin: str) -> bytes:
    encoded = origin.encode("utf-8")
    if len(encoded) > _MAX_ORIGIN_BYTES:
        raise ProtocolError(
            f"origin address of {len(encoded)} bytes exceeds the "
            f"{_MAX_ORIGIN_BYTES}-byte cap"
        )
    return struct.pack(">H", len(encoded)) + encoded


def _decode_origin(body: bytes, offset: int) -> "tuple[str, int]":
    (length,) = struct.unpack_from(">H", body, offset)
    if length > _MAX_ORIGIN_BYTES:
        raise ProtocolError(
            f"origin address of {length} bytes exceeds the "
            f"{_MAX_ORIGIN_BYTES}-byte cap"
        )
    start = offset + 2
    encoded = body[start:start + length]
    if len(encoded) != length:
        raise ProtocolError("truncated origin address")
    return encoded.decode("utf-8"), start + length


def encode_net_message(message: NetMessage) -> bytes:
    """Serialise one envelope message (the body of a frame)."""
    if isinstance(message, Hello):
        return bytes([_T_HELLO]) + NET_MAGIC + bytes([message.version])
    if isinstance(message, Welcome):
        return bytes([_T_WELCOME]) + _U64.pack(message.session_id)
    if isinstance(message, Request):
        return (bytes([_T_REQUEST]) + _U32.pack(message.request_id)
                + message.sealed)
    if isinstance(message, Reply):
        return (bytes([_T_REPLY]) + _U32.pack(message.request_id)
                + _U64.pack(message.repl_seq) + message.sealed)
    if isinstance(message, NetRefused):
        return (bytes([_T_REFUSED]) + _U32.pack(message.request_id)
                + protocol.encode_client_message(message.refusal))
    if isinstance(message, Bye):
        return bytes([_T_BYE])
    if isinstance(message, Ping):
        return bytes([_T_PING])
    if isinstance(message, Pong):
        flags = _PONG_DRAINING if message.draining else 0
        return bytes([_T_PONG, flags]) + _U32.pack(message.sessions)
    if isinstance(message, Resume):
        return bytes([_T_RESUME]) + _U64.pack(message.session_id)
    if isinstance(message, ReplRecord):
        return (bytes([_T_REPL_RECORD]) + _encode_origin(message.origin)
                + _U64.pack(message.seq) + message.sealed)
    if isinstance(message, ReplAck):
        return (bytes([_T_REPL_ACK]) + _encode_origin(message.origin)
                + _U64.pack(message.seq))
    if isinstance(message, ReplQuery):
        return bytes([_T_REPL_QUERY]) + _encode_origin(message.origin)
    if isinstance(message, ReplState):
        return (bytes([_T_REPL_STATE]) + _encode_origin(message.origin)
                + _U64.pack(message.applied))
    raise ProtocolError(f"cannot encode {type(message).__name__}")


def decode_net_message(body: bytes) -> NetMessage:
    """Parse a frame body; raises :class:`ProtocolError` on malformed input."""
    if not body:
        raise ProtocolError("empty network message")
    tag = body[0]
    try:
        if tag == _T_HELLO:
            if len(body) != 6 or body[1:5] != NET_MAGIC:
                raise ProtocolError("malformed HELLO")
            return Hello(body[5])
        if tag == _T_WELCOME:
            if len(body) != 9:
                raise ProtocolError("bad WELCOME length")
            return Welcome(_U64.unpack_from(body, 1)[0])
        if tag == _T_REQUEST:
            return Request(_U32.unpack_from(body, 1)[0], body[5:])
        if tag == _T_REPLY:
            return Reply(_U32.unpack_from(body, 1)[0], body[13:],
                         _U64.unpack_from(body, 5)[0])
        if tag == _T_REFUSED:
            refusal = protocol.decode_client_message(body[5:])
            if not isinstance(refusal, protocol.Refused):
                raise ProtocolError("REFUSED envelope without Refused body")
            return NetRefused(_U32.unpack_from(body, 1)[0], refusal)
        if tag == _T_BYE:
            if len(body) != 1:
                raise ProtocolError("bad BYE length")
            return Bye()
        if tag == _T_PING:
            if len(body) != 1:
                raise ProtocolError("bad PING length")
            return Ping()
        if tag == _T_PONG:
            if len(body) != 6:
                raise ProtocolError("bad PONG length")
            return Pong(bool(body[1] & _PONG_DRAINING),
                        _U32.unpack_from(body, 2)[0])
        if tag == _T_RESUME:
            if len(body) != 9:
                raise ProtocolError("bad RESUME length")
            return Resume(_U64.unpack_from(body, 1)[0])
        if tag == _T_REPL_RECORD:
            origin, offset = _decode_origin(body, 1)
            return ReplRecord(origin, _U64.unpack_from(body, offset)[0],
                              body[offset + 8:])
        if tag == _T_REPL_ACK:
            origin, offset = _decode_origin(body, 1)
            if len(body) != offset + 8:
                raise ProtocolError("bad REPL_ACK length")
            return ReplAck(origin, _U64.unpack_from(body, offset)[0])
        if tag == _T_REPL_QUERY:
            origin, offset = _decode_origin(body, 1)
            if len(body) != offset:
                raise ProtocolError("bad REPL_QUERY length")
            return ReplQuery(origin)
        if tag == _T_REPL_STATE:
            origin, offset = _decode_origin(body, 1)
            if len(body) != offset + 8:
                raise ProtocolError("bad REPL_STATE length")
            return ReplState(origin, _U64.unpack_from(body, offset)[0])
    except struct.error as exc:
        raise ProtocolError(f"truncated network message: {exc}") from exc
    raise ProtocolError(f"unknown network message tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def _check_frame_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return length


def encode_frame(body: bytes) -> bytes:
    """Prefix ``body`` with its length; refuses oversized bodies."""
    return _U32.pack(_check_frame_length(len(body))) + body


async def read_frame_async(reader) -> bytes:
    """Read one frame from an :class:`asyncio.StreamReader`.

    The length prefix is validated before the body is awaited, so an
    oversized prefix is rejected without buffering the claimed payload.
    Raises :class:`TransientChannelError` when the peer closes mid-frame.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise TransientChannelError("connection closed") from exc
        raise TransientChannelError("connection closed mid-frame") from exc
    length = _check_frame_length(_U32.unpack(prefix)[0])
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransientChannelError("connection closed mid-frame") from exc


async def write_frame_async(writer, body: bytes) -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` and drain."""
    writer.write(encode_frame(body))
    await writer.drain()


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            raise NetTimeoutError("socket read deadline expired") from exc
        except OSError as exc:
            raise TransientChannelError(f"socket receive failed: {exc}") from exc
        if not chunk:
            raise TransientChannelError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(sock: socket.socket) -> bytes:
    """Blocking read of one frame from a connected socket.

    Mirrors :func:`read_frame_async`: the length prefix is validated
    against :data:`MAX_FRAME_BYTES` before any body byte is read.
    """
    length = _check_frame_length(_U32.unpack(_recv_exactly(sock, 4))[0])
    return _recv_exactly(sock, length)


def write_frame_sock(sock: socket.socket, body: bytes) -> None:
    """Blocking write of one frame to a connected socket."""
    try:
        sock.sendall(encode_frame(body))
    except socket.timeout as exc:
        raise NetTimeoutError("socket send deadline expired") from exc
    except OSError as exc:
        raise TransientChannelError(f"socket send failed: {exc}") from exc
