"""Real TCP serving stack for the PIR service (DESIGN.md §12).

Carries the sealed :mod:`repro.service.protocol` frames over sockets:
length-prefixed framing with a hard size cap (:mod:`~repro.net.framing`),
an asyncio server bridging connections to the synchronous engine through
worker threads with graceful drain (:mod:`~repro.net.server`), admission
control that sheds load with retryable refusals
(:mod:`~repro.net.admission`), and blocking/async clients mirroring
:class:`~repro.service.frontend.ServiceClient`
(:mod:`~repro.net.client`).
"""

from .admission import AdmissionController, TokenBucket
from .client import AsyncNetworkClient, NetworkClient
from .framing import MAX_FRAME_BYTES
from .server import PirServer, ServerThread

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "NetworkClient",
    "AsyncNetworkClient",
    "MAX_FRAME_BYTES",
    "PirServer",
    "ServerThread",
]
