"""Admission control for the network server: shed load, don't drop it.

Three independent gates, all answering with the *existing* retryable
refusal vocabulary (:class:`repro.service.protocol.Refused` with code
``unavailable`` and a positive ``retry_after``) instead of slamming the
connection shut — a shed client backs off and retries through the same
:class:`~repro.errors.DegradedServiceError` path it already uses for a
degraded engine:

* a **max-concurrent-sessions** cap, checked at handshake time;
* a **token bucket** bounding sustained request rate (capacity = burst);
* a **queue-depth** bound — when the worker queue backs up, extra
  requests are refused before they enqueue, keeping worst-case latency
  for admitted requests proportional to the configured depth.

Every shed increments ``net.shed`` plus a per-gate counter
(``net.shed.sessions`` / ``net.shed.rate`` / ``net.shed.queue``), so the
load generator and the perf gate can observe backpressure engaging.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..errors import ConfigurationError
from ..service import protocol
from ..sim.metrics import CounterSet

__all__ = ["TokenBucket", "AdmissionController"]

#: Refusal code for admission sheds — the same retryable slug a degraded
#: engine uses, so existing client retry loops honour it unchanged.
SHED_CODE = "unavailable"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``capacity`` burst.

    ``time_source`` defaults to :func:`time.monotonic`; tests inject a fake
    clock for deterministic refill behaviour.  Acquisition is not
    thread-safe on its own — the server consults it only from the
    event-loop thread — but :meth:`retune` may be called concurrently
    (the :mod:`repro.plan` controller runs on its own thread), so the
    refill/retune pair shares an internal lock.
    """

    def __init__(
        self,
        rate: float,
        capacity: float,
        time_source: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or capacity <= 0:
            raise ConfigurationError(
                "token bucket rate and capacity must be positive"
            )
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._time_source = time_source
        self._tokens = self.capacity
        self._last_refill = time_source()
        self._lock = threading.Lock()

    def retune(self, rate: Optional[float] = None,
               capacity: Optional[float] = None) -> None:
        """Change ``rate`` and/or ``capacity`` without resetting the level.

        Accrued tokens at the old rate are banked first, then the new
        parameters apply; shrinking ``capacity`` clips the current level
        so a burst allowance cut takes effect immediately.
        """
        if rate is not None and rate <= 0:
            raise ConfigurationError("token bucket rate must be positive")
        if capacity is not None and capacity <= 0:
            raise ConfigurationError("token bucket capacity must be positive")
        with self._lock:
            self._refill_locked()
            if rate is not None:
                self.rate = float(rate)
            if capacity is not None:
                self.capacity = float(capacity)
                self._tokens = min(self._tokens, self.capacity)

    def _refill_locked(self) -> None:
        now = self._time_source()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity,
                               self._tokens + elapsed * self.rate)
        self._last_refill = now

    def _refill(self) -> None:
        with self._lock:
            self._refill_locked()

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; False means shed."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will have accumulated."""
        with self._lock:
            self._refill_locked()
            deficit = amount - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self.rate


class AdmissionController:
    """Decides, per handshake and per request, whether to admit or shed.

    The ``admit_*`` methods return ``None`` to admit or a retryable
    :class:`~repro.service.protocol.Refused` describing the shed; the
    server turns the refusal into an envelope REFUSED frame.  ``None``
    gates (``bucket=None``, ``max_sessions=None``, …) are disabled.
    """

    def __init__(
        self,
        max_sessions: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        bucket: Optional[TokenBucket] = None,
        retry_hint: float = 0.05,
        metrics=None,
    ):
        if max_sessions is not None and max_sessions <= 0:
            raise ConfigurationError("max_sessions must be positive")
        if max_queue_depth is not None and max_queue_depth <= 0:
            raise ConfigurationError("max_queue_depth must be positive")
        if retry_hint < 0:
            raise ConfigurationError("retry_hint must be non-negative")
        self.max_sessions = max_sessions
        self.max_queue_depth = max_queue_depth
        self.bucket = bucket
        self.retry_hint = retry_hint
        self.counters = CounterSet(registry=metrics, prefix="net.")

    def retune(self, rate: Optional[float] = None,
               capacity: Optional[float] = None) -> None:
        """Adjust the token-bucket gate in place (see ``TokenBucket.retune``).

        No-op when rate limiting is disabled (``bucket=None``) — the
        controller cannot conjure a gate the operator didn't configure.
        """
        if self.bucket is not None:
            self.bucket.retune(rate=rate, capacity=capacity)

    def _shed(self, gate: str, reason: str,
              retry_after: float) -> protocol.Refused:
        self.counters.increment("shed")
        self.counters.increment(f"shed.{gate}")
        return protocol.Refused(reason, SHED_CODE,
                                max(retry_after, self.retry_hint))

    def admit_session(self, active_sessions: int) -> Optional[protocol.Refused]:
        """Handshake gate: refuse when the session table is full."""
        if (self.max_sessions is not None
                and active_sessions >= self.max_sessions):
            return self._shed(
                "sessions",
                f"session limit {self.max_sessions} reached",
                self.retry_hint,
            )
        return None

    def admit_request(self, queue_depth: int) -> Optional[protocol.Refused]:
        """Per-request gate: rate limit first, then queue backpressure."""
        if self.bucket is not None and not self.bucket.try_acquire():
            return self._shed(
                "rate",
                "request rate limit exceeded",
                self.bucket.retry_after(),
            )
        if (self.max_queue_depth is not None
                and queue_depth >= self.max_queue_depth):
            return self._shed(
                "queue",
                f"request queue depth {self.max_queue_depth} reached",
                self.retry_hint,
            )
        return None
