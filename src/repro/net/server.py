"""Asyncio TCP server bridging real sockets to the synchronous engine.

Architecture (DESIGN.md §12)::

    client sockets ──▶ asyncio event loop ──▶ bounded queue ──▶ worker
       (framing,        (handshake, admission,    (queue.Queue)   threads
        envelope)        drain, reaping)                          (frontend
                                                                   .serve)

The event loop owns everything network-shaped: accepting connections,
the HELLO/WELCOME handshake that binds a connection to a
:class:`~repro.service.frontend.QueryFrontend` session, admission
control, and graceful drain.  The engine stays synchronous and is only
ever entered from worker threads, which take sealed requests off a
bounded queue, run ``frontend.serve`` and resolve the awaiting
connection's future via ``loop.call_soon_threadsafe``.

Each connection serves one request at a time (the handler awaits the
reply before reading the next frame), so a session's stateful cipher
suite is never used by two threads at once.  ``workers=1`` (the default)
keeps the whole engine single-threaded as its contract requires;
``workers > 1`` is only accepted for :class:`~repro.core.sharded
.ShardedPirDatabase` backends, whose routing layer is built for
concurrent callers.

Graceful drain: :meth:`PirServer.drain` stops accepting, answers new
requests on live connections with a retryable refusal, waits for every
in-flight request to finish *and its reply to be written*, then shuts
down workers and closes sessions — no admitted request is lost, and
because workers finish what they started, none is double-applied.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from typing import Optional, Set

from .admission import SHED_CODE, AdmissionController
from .framing import (
    Bye,
    Hello,
    NET_VERSION,
    NetRefused,
    Ping,
    Pong,
    ReplAck,
    ReplQuery,
    ReplRecord,
    ReplState,
    Reply,
    Request,
    Resume,
    Welcome,
    decode_net_message,
    encode_net_message,
    read_frame_async,
    write_frame_async,
)
from ..core.sharded import ShardedPirDatabase
from ..errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    TransientChannelError,
)
from ..obs.tracer import NULL_TRACER
from ..service import protocol
from ..service.frontend import SESSION_SEQUENTIAL, QueryFrontend
from ..service.health import classify
from ..sim.metrics import CounterSet

__all__ = ["PirServer", "ServerThread"]

_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                    0.1, 0.25, 0.5, 1.0, 2.5)


class PirServer:
    """Serves a :class:`QueryFrontend` over TCP (see module docstring).

    Construct, then ``await start()`` on a running event loop (or use
    :class:`ServerThread` from synchronous code).  ``queue_depth`` bounds
    the worker queue; requests beyond it — and beyond whatever gates the
    optional :class:`~repro.net.admission.AdmissionController` adds — are
    shed with a retryable refusal, never silently dropped.
    """

    def __init__(
        self,
        frontend: QueryFrontend,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: Optional[AdmissionController] = None,
        workers: int = 1,
        queue_depth: int = 64,
        reap_interval: Optional[float] = None,
        allow_sequential_sessions: bool = False,
        adopt_sessions: bool = False,
        metrics=None,
    ):
        if workers < 1:
            raise ConfigurationError("need at least one worker thread")
        if queue_depth < 1:
            raise ConfigurationError("queue_depth must be positive")
        if reap_interval is not None and reap_interval <= 0:
            raise ConfigurationError("reap_interval must be positive")
        if (frontend.session_id_mode == SESSION_SEQUENTIAL
                and not allow_sequential_sessions):
            raise ConfigurationError(
                "refusing to serve sequential session ids over the network "
                "(they are guessable and the id is the session secret); "
                "use session_id_mode=SESSION_RANDOM or pass "
                "allow_sequential_sessions=True"
            )
        if workers > 1 and not isinstance(frontend.database,
                                          ShardedPirDatabase):
            raise ConfigurationError(
                "workers > 1 requires a ShardedPirDatabase backend; the "
                "plain engine is single-threaded by contract"
            )
        self.frontend = frontend
        self.host = host
        self.port = port
        self.admission = admission
        # Cluster backends adopt unknown RESUMEd session ids (failover);
        # public-facing servers must leave this off — see
        # QueryFrontend.adopt_session for the trust argument.
        self.adopt_sessions = adopt_sessions
        self.workers = workers
        self.reap_interval = reap_interval
        self.counters = CounterSet(registry=metrics, prefix="net.")
        self._sessions_gauge = (
            metrics.gauge("net.sessions.active") if metrics is not None
            else None
        )
        self._queue_gauge = (
            metrics.gauge("net.queue.depth") if metrics is not None else None
        )
        self._latency = (
            metrics.histogram("net.request.seconds",
                              buckets=_LATENCY_BUCKETS)
            if metrics is not None else None
        )
        # The tracer is not thread-safe; with a single worker every span
        # (net.request wrapping frontend.serve and the engine's own spans)
        # is emitted from that one thread, so tracing composes.  With
        # multiple workers net spans are suppressed.
        self._span_tracer = frontend.tracer if workers == 1 else NULL_TRACER
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        # Inbound replication records get their own queue and worker so a
        # serve stalled in the semi-sync barrier can never starve the
        # peer applies that would release it (see _repl_worker_loop).
        self._repl_queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._repl_thread: Optional[threading.Thread] = None
        self._threads: list = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._reap_task: Optional[asyncio.Task] = None
        self._draining = False
        self._inflight = 0
        self._idle_event: Optional[asyncio.Event] = None
        # Test hook: called on the worker thread just before dispatching a
        # request to the frontend (drain-during-in-flight tests block here).
        self._serve_hook = None
        # Sealed write replication (cluster backends only; see
        # attach_replication).
        self._repl_log = None
        self._repl_applier = None

    def attach_replication(self, log, applier) -> None:
        """Wire a :class:`~repro.cluster.replication.ReplicationLog` and
        :class:`~repro.cluster.replication.ReplicationApplier` in.

        Afterwards this server (a) answers peer REPL_QUERY/REPL_RECORD
        connections, applying inbound records on a dedicated replication
        worker (serialized against the serving workers through the
        frontend's engine lock, so the engine still sees one operation
        at a time — but never queued *behind* a serve, or a barrier
        stalled waiting for a peer could starve the very applies that
        release the peer's own barriers: a distributed pool deadlock),
        (b) stamps every REPLY with the sequence its serve's barrier
        waited on, for the router's read-your-writes gate, and (c) holds
        each reply — on the worker thread, *before* it is cached or sent
        — until every *connected* peer has acked the emitted sequence:
        semi-synchronous replication, which is what makes an
        acknowledged write survive this backend's death.  The barrier
        must run before the reply enters the shared reply cache, or a
        surviving peer could dedupe-serve an acknowledgement for a write
        it never applied (a stale read after failover).
        """
        self._repl_log = log
        self._repl_applier = applier
        if self._loop is not None:
            self._ensure_repl_worker()

        def _barrier():
            seq = log.last_seq
            log.wait_replicated(seq)
            return (log.origin, seq)

        def _gate(origin, seq):
            if origin == log.origin:
                return log.last_seq >= seq  # our own emission: we hold it
            return applier.wait_applied(origin, seq, log.wait_timeout)

        self.frontend.replication_barrier = _barrier
        self.frontend.replication_gate = _gate

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the worker threads."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._loop = asyncio.get_running_loop()
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"pir-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self._repl_applier is not None:
            self._ensure_repl_worker()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.reap_interval is not None:
            self._reap_task = self._loop.create_task(self._reap_loop())

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close up.

        Idempotent.  After drain every session is closed and the worker
        threads have exited; live client connections are dropped (their
        next request would only be refused anyway).
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._reap_task is not None:
            self._reap_task.cancel()
            try:
                await self._reap_task
            except asyncio.CancelledError:
                pass
            self._reap_task = None
        if self._inflight > 0:
            await self._idle_event.wait()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self._threads = []
        if self._repl_thread is not None:
            self._repl_queue.put(None)
            self._repl_thread.join()
            self._repl_thread = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if not self.adopt_sessions:
            # A cluster backend leaves its sessions alone: they fail over
            # to peers, and close_session would purge their entries from
            # the *shared* reply cache — exactly the dedupe state a peer
            # needs to answer the failover retransmissions.
            for session_id in self.frontend.session_ids:
                self.frontend.close_session(session_id)
        self._publish_sessions()
        self.counters.increment("drains")

    @property
    def draining(self) -> bool:
        return self._draining

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval)
            self.frontend.reap_idle_sessions()
            self._publish_sessions()

    def _publish_sessions(self) -> None:
        if self._sessions_gauge is not None:
            self._sessions_gauge.set(self.frontend.session_count)

    def _publish_queue_depth(self) -> None:
        if self._queue_gauge is not None:
            self._queue_gauge.set(self._queue.qsize())

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.counters.increment("connections.accepted")
        session_id: Optional[int] = None
        orderly = False
        try:
            first = decode_net_message(await read_frame_async(reader))
            if isinstance(first, Ping):
                await self._probe_loop(reader, writer, first)
                return
            if isinstance(first, (ReplQuery, ReplRecord)):
                await self._repl_loop(reader, writer, first)
                return
            session_id = await self._handshake(first, writer)
            if session_id is None:
                return
            while True:
                body = await read_frame_async(reader)
                message = decode_net_message(body)
                if isinstance(message, Bye):
                    orderly = True
                    break
                if not isinstance(message, Request):
                    await self._send(
                        writer,
                        NetRefused(0, protocol.Refused(
                            f"unexpected {type(message).__name__} frame",
                            "protocol", -1.0,
                        )),
                    )
                    break
                self.counters.increment("requests")
                self.counters.increment("bytes.in", len(body) + 4)
                started = time.monotonic()
                # In-flight covers admission through reply-written, so
                # drain cannot cut off a reply that is still in transit.
                assert self._idle_event is not None
                self._inflight += 1
                self._idle_event.clear()
                try:
                    reply = await self._admit_and_dispatch(session_id,
                                                           message)
                    # Count before the bytes go out: once the reply is on
                    # the wire the client (same GIL) can observe a metrics
                    # snapshot before this coroutine runs another line.
                    if isinstance(reply, Reply):
                        self.counters.increment("replies")
                    # (Semi-sync replication holds replies on the worker
                    # thread, before caching: frontend.replication_barrier.)
                    await self._send(writer, reply)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle_event.set()
                if self._latency is not None:
                    self._latency.observe(time.monotonic() - started)
        except TransientChannelError:
            pass  # peer closed or broke the connection; nothing to answer
        except ProtocolError as exc:
            await self._send(
                writer,
                NetRefused(0, protocol.Refused(str(exc), "protocol", -1.0)),
                best_effort=True,
            )
        except asyncio.CancelledError:
            pass  # drain is tearing the connection down
        finally:
            # Only an orderly BYE closes the session.  An abrupt disconnect
            # keeps the suite and reply cache alive so the client can
            # re-dial, RESUME, and retransmit — drain and TTL reaping bound
            # how long an abandoned session lingers.
            if session_id is not None and orderly:
                self.frontend.close_session(session_id)
                self._publish_sessions()
            self.counters.increment("connections.closed")
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            self._conn_tasks.discard(task)

    async def _probe_loop(self, reader, writer, first) -> None:
        """Answer PINGs until the prober hangs up.

        Health probes are sessionless and answered even while draining —
        the PONG's ``draining`` flag is how a router learns to route
        around a member being rolled.  ``sessions`` is its load signal.
        """
        message = first
        while True:
            if not isinstance(message, Ping):
                raise ProtocolError(
                    f"probe connection sent {type(message).__name__}"
                )
            self.counters.increment("probes")
            await self._send(
                writer, Pong(self._draining, self.frontend.session_count)
            )
            message = decode_net_message(await read_frame_async(reader))

    async def _repl_loop(self, reader, writer, first) -> None:
        """Serve a peer's replication connection (REPL_QUERY/REPL_RECORD).

        The stream is sessionless like a probe: a REPL_QUERY answers with
        this backend's applied high-water mark for the asking origin (the
        catch-up handshake), and each REPL_RECORD is applied on a worker
        thread — the engine stays single-threaded per request, replicated
        or local — then acked with the new applied mark.  Apply is
        idempotent, so a shed or re-sent record is simply acked at the
        unchanged mark and the peer retransmits.
        """
        if self._repl_applier is None:
            raise ProtocolError("replication is not enabled on this server")
        message = first
        while True:
            if isinstance(message, ReplQuery):
                self.counters.increment("repl.queries")
                await self._send(writer, ReplState(
                    message.origin,
                    self._repl_applier.applied_for(message.origin),
                ))
            elif isinstance(message, ReplRecord):
                applied = await self._apply_replicated(message)
                await self._send(writer, ReplAck(message.origin, applied))
            else:
                raise ProtocolError(
                    f"replication connection sent {type(message).__name__}"
                )
            message = decode_net_message(await read_frame_async(reader))

    async def _apply_replicated(self, record: ReplRecord) -> int:
        """Queue one inbound record for a worker; return the applied mark.

        While draining (or when the queue is full) the record is *not*
        applied and the current mark is returned unchanged — the peer's
        streamer sees a stale ack and retransmits after backoff.
        """
        assert self._repl_applier is not None
        if self._draining:
            return self._repl_applier.applied_for(record.origin)
        assert self._loop is not None and self._idle_event is not None
        future = self._loop.create_future()
        try:
            self._repl_queue.put_nowait((record, future, self._loop))
        except queue.Full:
            self.counters.increment("shed")
            self.counters.increment("shed.repl")
            return self._repl_applier.applied_for(record.origin)
        self._publish_queue_depth()
        self._inflight += 1
        self._idle_event.clear()
        try:
            return await future
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle_event.set()

    async def _handshake(self, message, writer) -> Optional[int]:
        """HELLO/WELCOME exchange; returns the session id or None if refused.

        ``message`` is the already-decoded first frame: HELLO opens a new
        session, RESUME re-attaches (or, on cluster backends, adopts) an
        existing one.
        """
        if isinstance(message, Resume):
            return await self._resume(message, writer)
        if not isinstance(message, Hello) or message.version != NET_VERSION:
            await self._send(
                writer,
                NetRefused(0, protocol.Refused(
                    "handshake expected HELLO "
                    f"v{NET_VERSION}", "protocol", -1.0,
                )),
            )
            return None
        if self._draining:
            await self._send(writer, NetRefused(0, self._drain_refusal()))
            return None
        if self.admission is not None:
            refusal = self.admission.admit_session(self.frontend.session_count)
            if refusal is not None:
                await self._send(writer, NetRefused(0, refusal))
                return None
        session_id = self.frontend.open_session()
        self._publish_sessions()
        await self._send(writer, Welcome(session_id))
        return session_id

    async def _resume(self, message: Resume, writer) -> Optional[int]:
        """Re-attach a connection to a session after a reconnect.

        A known session resumes on any server (same process the client
        first spoke to).  An *unknown* session is adopted only when
        ``adopt_sessions`` is set — the cluster-backend posture, where the
        router vouches for ids — and counts against the admission session
        cap like a fresh handshake.
        """
        if self._draining:
            await self._send(writer, NetRefused(0, self._drain_refusal()))
            return None
        session_id = message.session_id
        known = session_id in self.frontend.session_ids
        if not known:
            if not self.adopt_sessions:
                await self._send(writer, NetRefused(0, protocol.Refused(
                    f"unknown session {session_id}", "protocol", -1.0,
                )))
                return None
            if self.admission is not None:
                refusal = self.admission.admit_session(
                    self.frontend.session_count
                )
                if refusal is not None:
                    await self._send(writer, NetRefused(0, refusal))
                    return None
            self.frontend.adopt_session(session_id)
            self.counters.increment("sessions.adopted")
        else:
            self.counters.increment("sessions.resumed")
        self._publish_sessions()
        await self._send(writer, Welcome(session_id))
        return session_id

    def _drain_refusal(self) -> protocol.Refused:
        self.counters.increment("shed")
        self.counters.increment("shed.drain")
        return protocol.Refused("server is draining", SHED_CODE, 0.05)

    async def _admit_and_dispatch(self, session_id: int, request: Request):
        """Admission gates, then the queue/worker round trip."""
        if self._draining:
            return NetRefused(request.request_id, self._drain_refusal())
        if self.admission is not None:
            refusal = self.admission.admit_request(self._queue.qsize())
            if refusal is not None:
                return NetRefused(request.request_id, refusal)
        assert self._loop is not None
        future = self._loop.create_future()
        # Mark the session busy for the whole queued-to-served window so
        # the idle reaper cannot close it out from under a queued request.
        self.frontend.begin_request(session_id)
        try:
            self._queue.put_nowait((session_id, request, future, self._loop))
        except queue.Full:
            self.frontend.end_request(session_id)
            self.counters.increment("shed")
            self.counters.increment("shed.queue")
            return NetRefused(request.request_id, protocol.Refused(
                "request queue is full", SHED_CODE, 0.05,
            ))
        self._publish_queue_depth()
        try:
            return await future
        finally:
            self.frontend.end_request(session_id)

    async def _send(self, writer, message, best_effort: bool = False) -> None:
        body = encode_net_message(message)
        # Counted before the write for the same snapshot-race reason as
        # the replies counter; a failed write overcounts by one frame,
        # which the connection teardown path makes moot.
        self.counters.increment("bytes.out", len(body) + 4)
        try:
            await write_frame_async(writer, body)
        except (TransientChannelError, ConnectionError, OSError):
            if not best_effort:
                raise TransientChannelError("peer went away mid-reply")

    # -- worker threads --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            session_id, request, future, loop = item
            self._publish_queue_depth()
            hook = self._serve_hook
            if hook is not None:
                hook()
            try:
                with self._span_tracer.span("net.request",
                                            nbytes=len(request.sealed)):
                    sealed_reply = self.frontend.serve(session_id,
                                                       request.sealed)
                # Stamp the reply with the (origin, seq) mark the serve's
                # replication barrier actually waited on, so the router's
                # read-your-writes watermark never runs ahead of what
                # connected peers hold.  log.last_seq at stamp time would
                # include other sessions' concurrent emissions that were
                # never waited on — a watermark a surviving peer may be
                # unable to satisfy until the dead origin restarts.  A
                # mark from a *different* origin (a dedupe served from the
                # shared cache for a write another member emitted) stamps
                # 0: the seq lives in that origin's numbering, and the
                # dedupe gate already proved this member applied it.
                mark = self.frontend.consume_reply_mark()
                repl_seq = 0
                if (self._repl_log is not None and mark is not None
                        and mark[0] == self._repl_log.origin):
                    repl_seq = mark[1]
                result = Reply(request.request_id, sealed_reply, repl_seq)
            except ReproError as exc:
                # serve() seals most refusals itself; reaching here means
                # the session is gone (reaped/closed) or similarly
                # unservable, so answer with a plaintext envelope refusal.
                refusal = classify(exc)
                retry_after = (self.frontend.health.retry_after
                               if refusal.retryable else -1.0)
                result = NetRefused(request.request_id, protocol.Refused(
                    f"{type(exc).__name__}: {exc}", refusal.code, retry_after,
                ))
            except BaseException as exc:  # never let a worker die silently
                result = NetRefused(request.request_id, protocol.Refused(
                    f"internal error: {exc}", "internal", -1.0,
                ))
            try:
                loop.call_soon_threadsafe(self._resolve, future, result)
            except RuntimeError:
                # The loop was closed under us (ServerThread.kill in a
                # crash test); the connection is gone, nobody awaits this.
                return

    def _ensure_repl_worker(self) -> None:
        if self._repl_thread is None:
            self._repl_thread = threading.Thread(
                target=self._repl_worker_loop, name="pir-repl-worker",
                daemon=True,
            )
            self._repl_thread.start()

    def _repl_worker_loop(self) -> None:
        """Apply inbound replication records off their own queue.

        A separate lane from the serving workers: a serve holding a
        worker thread through a semi-sync barrier is *waiting on peers*
        — if peer records queued behind it, two members could deadlock
        each other's pools (each barrier waiting for an apply the other
        member cannot run).  Engine single-threading is preserved by the
        applier taking the frontend's engine lock around the actual
        engine calls.
        """
        while True:
            item = self._repl_queue.get()
            if item is None:
                return
            record, future, loop = item
            try:
                applied = self._repl_applier.apply(
                    record.origin, record.seq, record.sealed)
            except BaseException:
                # Never wedge the peer's stream: ack the unchanged
                # mark so its streamer backs off and retransmits.
                applied = self._repl_applier.applied_for(record.origin)
            try:
                loop.call_soon_threadsafe(self._resolve, future, applied)
            except RuntimeError:
                return

    @staticmethod
    def _resolve(future: "asyncio.Future", result) -> None:
        if not future.cancelled():
            future.set_result(result)


class ServerThread:
    """Runs a :class:`PirServer` event loop on a background thread.

    Lets synchronous code (tests, benchmarks, the CLI) stand up a real
    TCP server in-process::

        with ServerThread(PirServer(frontend)) as handle:
            client = NetworkClient(handle.host, handle.port)

    Startup errors (bad config, port in use) re-raise from :meth:`start`
    on the calling thread.  ``drain()``/``__exit__`` run the server's
    graceful drain on the loop, then stop and join the thread.
    """

    def __init__(self, server: PirServer):
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise ConfigurationError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="pir-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def drain(self, timeout: float = 30.0) -> None:
        """Gracefully drain the server and stop the loop thread."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
            future.result(timeout=timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    def kill(self, timeout: float = 30.0) -> None:
        """Abrupt shutdown: drop the listener and every connection NOW.

        The crash path, for chaos tests and failover drills — the inverse
        of :meth:`drain`.  No refusals are sent, in-flight requests are
        abandoned mid-write, clients see resets.  The engine object
        survives (same process), so a test can restart a fresh
        ``PirServer`` on the same frontend and port to model a process
        that crashed and came back.
        """
        if self._thread is None or self._loop is None:
            return
        loop = self._loop
        server = self.server

        def _slam() -> None:
            if server._server is not None:
                server._server.close()
                server._server = None
            for task in list(server._conn_tasks):
                task.cancel()
            if server._reap_task is not None:
                server._reap_task.cancel()
                server._reap_task = None
            # Let the cancellations run their finallys (writer.close)
            # before the loop stops; call_soon queues behind them.
            loop.call_soon(loop.stop)

        if self._thread.is_alive():
            try:
                loop.call_soon_threadsafe(_slam)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        # Workers block on the queue, not the loop; release them so the
        # process does not leak threads between restart cycles.
        for _ in server._threads:
            server._queue.put(None)
        for thread in server._threads:
            thread.join(timeout=timeout)
        server._threads = []
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()
