"""Baseline private-retrieval schemes for like-for-like comparison.

Includes an adapter exposing :class:`~repro.core.database.PirDatabase`
through the same :class:`RetrievalScheme` interface, so the benchmark
harness can measure all four schemes with identical code.
"""

from .base import CryptoEndpoint, RetrievalScheme, make_records, measure_latencies
from .pyramid import PyramidOram
from .sqrt_oram import SquareRootOram
from .trivial import TrivialPir
from .wang import WangPir
from ..core.database import PirDatabase
from ..sim.clock import VirtualClock

__all__ = [
    "CryptoEndpoint",
    "RetrievalScheme",
    "make_records",
    "measure_latencies",
    "PyramidOram",
    "SquareRootOram",
    "TrivialPir",
    "WangPir",
    "CApproxScheme",
]


class CApproxScheme(RetrievalScheme):
    """The paper's scheme viewed through the common baseline interface."""

    name = "c-approx"

    def __init__(self, database: PirDatabase):
        self.database = database

    @property
    def clock(self) -> VirtualClock:
        return self.database.clock

    @property
    def num_pages(self) -> int:
        return self.database.num_pages

    def retrieve(self, page_id: int) -> bytes:
        return self.database.query(page_id)
