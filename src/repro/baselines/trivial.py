"""Trivial PIR: download the whole database for every query.

The information-theoretic gold standard (and the paper's c = 1 degenerate
case, §4.2): the server streams all n encrypted pages through the secure
endpoint per request, so the access pattern carries zero information.  Cost
is O(n) per query — the yardstick every other scheme is trying to beat.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import CryptoEndpoint, RetrievalScheme
from ..errors import ConfigurationError, PageNotFoundError
from ..hardware.specs import HardwareSpec
from ..sim.clock import VirtualClock
from ..storage.page import Page

__all__ = ["TrivialPir"]

_SCAN_BATCH = 1024  # frames per contiguous read while streaming the database


class TrivialPir(RetrievalScheme):
    """Full-scan private retrieval (perfect privacy, maximal cost)."""

    name = "trivial"

    def __init__(self, endpoint: CryptoEndpoint, disk, num_pages: int):
        self._endpoint = endpoint
        self._disk = disk
        self._num_pages = num_pages

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        page_capacity: int = 64,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        master_key: bytes = b"trivial-pir-key",
    ) -> "TrivialPir":
        if not records:
            raise ConfigurationError("records must be non-empty")
        endpoint = CryptoEndpoint(page_capacity, master_key, spec, seed, cipher_backend)
        disk = endpoint.new_disk(len(records))
        for page_id, payload in enumerate(records):
            disk.write(page_id, endpoint.seal(Page(page_id, bytes(payload))))
        return cls(endpoint, disk, len(records))

    # -- RetrievalScheme ------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self._endpoint.clock

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def trace(self):
        return self._disk.trace

    def retrieve(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._num_pages:
            raise PageNotFoundError(f"page id {page_id} out of range")
        result: bytes = b""
        for start in range(0, self._num_pages, _SCAN_BATCH):
            count = min(_SCAN_BATCH, self._num_pages - start)
            frames = self._disk.read_range(start, count)
            self._endpoint.charge_ingest(count)
            for offset, frame in enumerate(frames):
                page = self._endpoint.unseal(frame)
                if page.page_id != start + offset:
                    raise PageNotFoundError("database layout corrupted")
                if page.page_id == page_id:
                    result = page.payload
        return result
