"""Square-root ORAM (Goldreich & Ostrovsky, JACM 1996).

The representative of the ORAM family the paper compares against in §2
([14], [25], [26] are hierarchical refinements of the same idea).  Layout on
the untrusted disk:

* ``n`` permuted main locations,
* a *shelter* of ``s = ceil(sqrt(n))`` locations appended after them.

Each access scans the entire shelter (so the server cannot tell whether the
target was found there) and then reads exactly one main location: the real
target if it was not sheltered, else a random untouched dummy location.  The
accessed page is appended to the shelter.  After ``s`` accesses the shelter
is full and the whole structure is reshuffled under a fresh permutation.

Per-access cost is O(sqrt(n)); every sqrt(n)-th access additionally pays the
O(n) reshuffle — amortized O(sqrt(n)) with the characteristic latency spikes
that motivate the paper (cf. the response-time variability reported for
[26]).  As with :class:`~repro.baselines.wang.WangPir`, the reshuffle is
executed for real but its obliviousness is argued, not re-simulated.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

from .base import CryptoEndpoint, RetrievalScheme
from ..errors import ConfigurationError, PageNotFoundError
from ..hardware.specs import HardwareSpec
from ..shuffle.permutation import Permutation
from ..sim.clock import VirtualClock
from ..storage.page import Page

__all__ = ["SquareRootOram"]

_BATCH = 1024


class SquareRootOram(RetrievalScheme):
    """O(sqrt(n)) amortized oblivious retrieval with periodic reshuffles."""

    name = "sqrt-oram"

    def __init__(self, endpoint: CryptoEndpoint, disk, num_pages: int, shelter_size: int):
        self._endpoint = endpoint
        self._disk = disk
        self._num_pages = num_pages
        self._shelter_size = shelter_size
        self._permutation = Permutation.identity(num_pages)
        self._sheltered: Dict[int, int] = {}  # page id -> shelter slot
        self._touched: Set[int] = set()
        self._accesses_since_shuffle = 0
        self.reshuffle_count = 0

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        page_capacity: int = 64,
        shelter_size: Optional[int] = None,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        master_key: bytes = b"sqrt-oram-key",
    ) -> "SquareRootOram":
        if not records:
            raise ConfigurationError("records must be non-empty")
        n = len(records)
        shelter = shelter_size if shelter_size is not None else max(1, math.isqrt(n))
        if shelter < 1 or shelter >= n:
            raise ConfigurationError("need 1 <= shelter size < n")
        endpoint = CryptoEndpoint(page_capacity, master_key, spec, seed, cipher_backend)
        disk = endpoint.new_disk(n + shelter)
        scheme = cls(endpoint, disk, n, shelter)
        pages = [Page(i, bytes(payload)) for i, payload in enumerate(records)]
        scheme._install(pages, Permutation.random(n, endpoint.rng))
        return scheme

    def _install(self, pages: List[Page], permutation: Permutation) -> None:
        self._permutation = permutation
        by_location: List[Page] = [pages[0]] * self._num_pages
        for page in pages:
            by_location[permutation.apply(page.page_id)] = page
        for start in range(0, self._num_pages, _BATCH):
            stop = min(start + _BATCH, self._num_pages)
            self._endpoint.charge_egress(stop - start)
            self._disk.write_range(
                start, [self._endpoint.seal(p) for p in by_location[start:stop]]
            )
        # Reset the shelter to encrypted dummies.
        self._endpoint.charge_egress(self._shelter_size)
        self._disk.write_range(
            self._num_pages,
            [self._endpoint.seal(Page.dummy()) for _ in range(self._shelter_size)],
        )
        self._sheltered.clear()
        self._touched.clear()
        self._accesses_since_shuffle = 0

    # -- RetrievalScheme ----------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self._endpoint.clock

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def trace(self):
        return self._disk.trace

    @property
    def shelter_fill(self) -> int:
        return self._accesses_since_shuffle

    def retrieve(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._num_pages:
            raise PageNotFoundError(f"page id {page_id} out of range")
        # 1. Scan the whole shelter, always.
        shelter_frames = self._disk.read_range(self._num_pages, self._shelter_size)
        self._endpoint.charge_ingest(self._shelter_size)
        shelter_pages = [self._endpoint.unseal(f) for f in shelter_frames]
        found: Optional[Page] = None
        for page in shelter_pages:
            if not page.is_dummy and page.page_id == page_id:
                found = page
        # 2. One main-array read: real target or an untouched dummy.
        if found is None:
            location = self._permutation.apply(page_id)
        else:
            location = self._random_untouched_location()
        self._touched.add(location)
        frame = self._disk.read(location)
        self._endpoint.charge_ingest(1)
        fetched = self._endpoint.unseal(frame)
        if found is None:
            if fetched.page_id != page_id:
                raise PageNotFoundError("permuted layout corrupted")
            result = fetched
        else:
            result = found
        # 3. Append the target to the shelter (re-encrypted fresh).
        slot = self._num_pages + self._accesses_since_shuffle
        self._endpoint.charge_egress(1)
        self._disk.write(slot, self._endpoint.seal(result))
        self._sheltered[result.page_id] = slot
        self._accesses_since_shuffle += 1
        # 4. Epoch end: reshuffle everything.
        if self._accesses_since_shuffle >= self._shelter_size:
            self._reshuffle()
        return result.payload

    # -- internals -------------------------------------------------------------------

    def _random_untouched_location(self) -> int:
        while True:
            location = self._endpoint.rng.randrange(self._num_pages)
            if location not in self._touched:
                return location

    def _reshuffle(self) -> None:
        pages: List[Optional[Page]] = [None] * self._num_pages
        for start in range(0, self._num_pages, _BATCH):
            count = min(_BATCH, self._num_pages - start)
            frames = self._disk.read_range(start, count)
            self._endpoint.charge_ingest(count)
            for frame in frames:
                page = self._endpoint.unseal(frame)
                pages[page.page_id] = page
        # Shelter copies are fresher than main-array copies.
        shelter_frames = self._disk.read_range(self._num_pages, self._shelter_size)
        self._endpoint.charge_ingest(self._shelter_size)
        for frame in shelter_frames:
            page = self._endpoint.unseal(frame)
            if not page.is_dummy:
                pages[page.page_id] = page
        missing = [i for i, page in enumerate(pages) if page is None]
        if missing:
            raise PageNotFoundError(f"pages lost during reshuffle: {missing[:5]}")
        self.reshuffle_count += 1
        self._install(
            [page for page in pages if page is not None],
            Permutation.random(self._num_pages, self._endpoint.rng),
        )
