"""Wang et al. (ESORICS 2006): cache-until-full, then reshuffle everything.

The scheme the paper cites as [24]: the database is encrypted and secretly
permuted; the secure hardware's internal storage holds up to ``m`` pages.
Each query moves one page into the secure storage — the target if it is not
already there, otherwise a random *untouched* page, so the server always
sees one never-before-read location per query.  When the storage fills
(every ``m`` queries), the hardware reshuffles the entire database under a
fresh permutation and empties the storage.

Privacy is perfect, but the cost is amortized O(n/m): most queries cost a
single page read, and every m-th query costs a full 2n-page reshuffle —
exactly the latency spike the c-approximate scheme is designed to remove.
The reshuffle here is executed for real (stream-read all pages, re-encrypt,
write back under the new permutation); obliviousness of that pass is argued
as in :mod:`repro.shuffle.oblivious` and not re-simulated per reshuffle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from .base import CryptoEndpoint, RetrievalScheme
from ..errors import ConfigurationError, PageNotFoundError
from ..hardware.specs import HardwareSpec
from ..shuffle.permutation import Permutation
from ..sim.clock import VirtualClock
from ..storage.page import Page

__all__ = ["WangPir"]

_RESHUFFLE_BATCH = 1024


class WangPir(RetrievalScheme):
    """Perfect-privacy secure-hardware PIR with amortized O(n/m) cost."""

    name = "wang2006"

    def __init__(
        self,
        endpoint: CryptoEndpoint,
        disk,
        num_pages: int,
        storage_capacity: int,
    ):
        if storage_capacity < 1 or storage_capacity >= num_pages:
            raise ConfigurationError("need 1 <= storage capacity < n")
        self._endpoint = endpoint
        self._disk = disk
        self._num_pages = num_pages
        self._capacity = storage_capacity
        self._storage: Dict[int, Page] = {}
        self._touched: Set[int] = set()
        self._permutation = Permutation.identity(num_pages)
        self.reshuffle_count = 0

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        storage_capacity: int,
        page_capacity: int = 64,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        master_key: bytes = b"wang-pir-key",
    ) -> "WangPir":
        if not records:
            raise ConfigurationError("records must be non-empty")
        endpoint = CryptoEndpoint(page_capacity, master_key, spec, seed, cipher_backend)
        disk = endpoint.new_disk(len(records))
        scheme = cls(endpoint, disk, len(records), storage_capacity)
        pages = [Page(i, bytes(payload)) for i, payload in enumerate(records)]
        scheme._install(pages, Permutation.random(len(records), endpoint.rng))
        return scheme

    def _install(self, pages: List[Page], permutation: Permutation) -> None:
        """Write all pages to disk under ``permutation`` (id -> location)."""
        self._permutation = permutation
        by_location: List[Page] = [pages[0]] * self._num_pages
        for page in pages:
            by_location[permutation.apply(page.page_id)] = page
        for start in range(0, self._num_pages, _RESHUFFLE_BATCH):
            stop = min(start + _RESHUFFLE_BATCH, self._num_pages)
            self._endpoint.charge_egress(stop - start)
            self._disk.write_range(
                start, [self._endpoint.seal(p) for p in by_location[start:stop]]
            )

    # -- RetrievalScheme ---------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self._endpoint.clock

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def trace(self):
        return self._disk.trace

    @property
    def storage_fill(self) -> int:
        return len(self._storage)

    def retrieve(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._num_pages:
            raise PageNotFoundError(f"page id {page_id} out of range")
        if page_id in self._storage:
            fetch_location = self._random_untouched_location()
        else:
            fetch_location = self._permutation.apply(page_id)
        frame = self._disk.read(fetch_location)
        self._endpoint.charge_ingest(1)
        fetched = self._endpoint.unseal(frame)
        self._touched.add(fetch_location)
        self._storage[fetched.page_id] = fetched
        result = self._storage[page_id].payload
        if len(self._storage) >= self._capacity:
            self._reshuffle()
        return result

    def update(self, page_id: int, payload: bytes) -> None:
        """Replace a page's contents (extension of [24]'s read-only scheme).

        The page is first retrieved as usual — so the access pattern of an
        update is identical to a query's — then its secure-storage copy is
        replaced; the next reshuffle persists the new version to disk.
        """
        self.retrieve(page_id)
        if page_id in self._storage:
            self._storage[page_id] = Page(page_id, bytes(payload))
        else:
            # retrieve() triggered a reshuffle that emptied the storage;
            # fetch again (starts the next epoch) and replace.
            self.retrieve(page_id)
            self._storage[page_id] = Page(page_id, bytes(payload))

    # -- internals -----------------------------------------------------------------

    def _random_untouched_location(self) -> int:
        # Storage fill < capacity < n guarantees an untouched location exists.
        while True:
            location = self._endpoint.rng.randrange(self._num_pages)
            if location not in self._touched:
                return location

    def _reshuffle(self) -> None:
        """Stream the database in, merge the storage, write back re-permuted."""
        pages: List[Optional[Page]] = [None] * self._num_pages
        for start in range(0, self._num_pages, _RESHUFFLE_BATCH):
            count = min(_RESHUFFLE_BATCH, self._num_pages - start)
            frames = self._disk.read_range(start, count)
            self._endpoint.charge_ingest(count)
            for frame in frames:
                page = self._endpoint.unseal(frame)
                pages[page.page_id] = page
        # Secure-storage copies are authoritative (they may carry updates in
        # extensions of the scheme); merge them over the disk copies.
        for page_id, page in self._storage.items():
            pages[page_id] = page
        missing = [i for i, page in enumerate(pages) if page is None]
        if missing:
            raise PageNotFoundError(f"pages lost during reshuffle: {missing[:5]}")
        self._storage.clear()
        self._touched.clear()
        self.reshuffle_count += 1
        self._install(
            [page for page in pages if page is not None],
            Permutation.random(self._num_pages, self._endpoint.rng),
        )
