"""Hierarchical (pyramid) ORAM — the [14]/[25]/[26] family, simplified.

The paper's §2 singles out the Oblivious-RAM line as the state of the art:
pages are arranged in a pyramid of levels of geometrically growing size;
every access touches one slot per level, and level ``i`` is rebuilt (merged
into level ``i+1`` under a fresh secret permutation) every ``2^i`` accesses.
That rebuild schedule is precisely what produces the amortized-polylog cost
and the latency spikes ("hundreds of milliseconds to thousands of seconds",
§2, citing [26]) that motivate the paper.

Simplifications relative to a production ORAM, documented for honesty:

* Levels are permuted arrays addressed through secret per-level
  permutations held inside the trusted boundary, instead of bucket hashing
  with cuckoo/dummy machinery.  The *observable* access pattern is the
  same shape: one slot per level per access, data-independent to the
  server, plus periodic full-level rewrites.
* Rebuilds stream the affected levels through the trusted boundary and
  write the merged level back re-encrypted; obliviousness of that pass is
  argued as in :mod:`repro.shuffle.oblivious` rather than re-simulated
  with a sorting network on every epoch (identical to how the paper's
  own baselines are modelled).

Level layout on the untrusted disk: level ``i`` (1-based) occupies
``2^i`` consecutive frames; a level holds at most ``2^(i-1)`` real pages,
the rest are encrypted dummies, so a level is always exactly half-full at
rebuild time and every slot is written.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .base import CryptoEndpoint, RetrievalScheme
from ..errors import ConfigurationError, PageNotFoundError
from ..hardware.specs import HardwareSpec
from ..shuffle.permutation import Permutation
from ..sim.clock import VirtualClock
from ..storage.page import Page

__all__ = ["PyramidOram"]


class _Level:
    """One pyramid level: capacity, base disk offset, secret permutation."""

    def __init__(self, index: int, base: int):
        self.index = index
        self.base = base
        self.size = 2**index  # slots on disk
        self.permutation: Optional[Permutation] = None
        # id -> logical slot (pre-permutation); dummies occupy the rest.
        self.contents: Dict[int, int] = {}
        self.next_dummy = 0  # next unread dummy slot for masked accesses

    @property
    def capacity(self) -> int:
        return self.size // 2

    def slot_of(self, page_id: int) -> int:
        assert self.permutation is not None
        return self.base + self.permutation.apply(self.contents[page_id])

    def dummy_slot(self) -> int:
        """A fresh never-read dummy slot for this epoch (masked access)."""
        assert self.permutation is not None
        slot = self.capacity + self.next_dummy
        self.next_dummy += 1
        if slot >= self.size:
            raise ConfigurationError(
                "pyramid level ran out of dummy slots before its rebuild"
            )
        return self.base + self.permutation.apply(slot)


class PyramidOram(RetrievalScheme):
    """Amortized-polylog oblivious retrieval with pyramid rebuilds."""

    name = "pyramid-oram"

    def __init__(self, endpoint: CryptoEndpoint, disk, num_pages: int,
                 levels: List[_Level]):
        self._endpoint = endpoint
        self._disk = disk
        self._num_pages = num_pages
        self._levels = levels
        self._access_count = 0
        self.rebuild_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        records: Sequence[bytes],
        page_capacity: int = 64,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
        master_key: bytes = b"pyramid-oram-key",
    ) -> "PyramidOram":
        if not records:
            raise ConfigurationError("records must be non-empty")
        n = len(records)
        # Deepest level must hold all n pages: capacity 2^(L-1) >= n.
        depth = max(2, math.ceil(math.log2(n)) + 1)
        endpoint = CryptoEndpoint(page_capacity, master_key, spec, seed,
                                  cipher_backend)
        levels: List[_Level] = []
        base = 0
        for index in range(1, depth + 1):
            level = _Level(index, base)
            levels.append(level)
            base += level.size
        disk = endpoint.new_disk(base)
        scheme = cls(endpoint, disk, n, levels)
        # Install everything in the deepest level; all others start empty.
        pages = {i: Page(i, bytes(payload)) for i, payload in enumerate(records)}
        for level in levels[:-1]:
            scheme._write_level(level, {})
        scheme._write_level(levels[-1], pages)
        return scheme

    def _write_level(self, level: _Level, pages: Dict[int, Page]) -> None:
        """(Re)build one level: fresh permutation, half real / half dummy."""
        if len(pages) > level.capacity:
            raise ConfigurationError(
                f"level {level.index} overflow: {len(pages)} > {level.capacity}"
            )
        level.permutation = Permutation.random(level.size, self._endpoint.rng)
        level.contents = {}
        slots: List[Page] = [Page.dummy() for _ in range(level.size)]
        for logical, (page_id, page) in enumerate(sorted(pages.items())):
            level.contents[page_id] = logical
            slots[level.permutation.apply(logical)] = page
        # Dummy payload slots at logical >= capacity are what dummy_slot()
        # walks through; they are indistinguishable ciphertexts.
        level.next_dummy = 0
        self._endpoint.charge_egress(level.size)
        self._disk.write_range(
            level.base, [self._endpoint.seal(p) for p in slots]
        )

    # ------------------------------------------------------------------
    # RetrievalScheme
    # ------------------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        return self._endpoint.clock

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def trace(self):
        return self._disk.trace

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def retrieve(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._num_pages:
            raise PageNotFoundError(f"page id {page_id} out of range")
        found: Optional[Page] = None
        # One read per level, top (smallest) to bottom, always.
        for level in self._levels:
            if level.permutation is None:
                continue
            if found is None and page_id in level.contents:
                slot = level.slot_of(page_id)
            else:
                slot = level.dummy_slot()
            frame = self._disk.read(slot)
            self._endpoint.charge_ingest(1)
            page = self._endpoint.unseal(frame)
            if not page.is_dummy and page.page_id == page_id and found is None:
                found = page
        if found is None:
            raise PageNotFoundError(f"page {page_id} missing from every level")
        self._access_count += 1
        self._insert_top(found)
        return found.payload

    # ------------------------------------------------------------------
    # Rebuild machinery
    # ------------------------------------------------------------------

    def _insert_top(self, page: Page) -> None:
        """Insert the accessed page, rebuilding per the classic schedule.

        At access count t with 2-adic valuation v (t = odd * 2^v), levels
        1..v are exactly due and level v+1 is empty, so everything above —
        plus the freshly accessed page — merges into level v+1.  This keeps
        every level's rebuild cadence at its dummy-slot budget regardless
        of duplicate hits shrinking the merged set.
        """
        t = self._access_count
        valuation = 0
        while t % 2 == 0 and valuation < len(self._levels) - 1:
            t //= 2
            valuation += 1
        target = valuation
        while True:
            merged: Dict[int, Page] = {}
            for level in self._levels[: target + 1]:
                merged.update(self._read_level_contents(level))
            merged[page.page_id] = page
            if len(merged) <= self._levels[target].capacity:
                break
            target += 1
            if target >= len(self._levels):
                raise ConfigurationError("pyramid bottom level overflow")
        self._write_level(self._levels[target], merged)
        for shallower in self._levels[:target]:
            self._write_level(shallower, {})
        if target > 0:
            self.rebuild_count += 1

    def _read_level_contents(self, level: _Level) -> Dict[int, Page]:
        """Stream a level through the boundary during a rebuild."""
        if level.permutation is None or not level.contents:
            return {}
        frames = self._disk.read_range(level.base, level.size)
        self._endpoint.charge_ingest(level.size)
        contents: Dict[int, Page] = {}
        for frame in frames:
            page = self._endpoint.unseal(frame)
            if not page.is_dummy:
                contents[page.page_id] = page
        return contents
