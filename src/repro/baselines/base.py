"""Shared infrastructure for the baseline retrieval schemes.

The paper positions its scheme against three families (§2): trivial PIR
(read everything, perfect privacy), Wang et al.'s cache-then-reshuffle
secure-hardware PIR (amortized O(n/m)), and the ORAM line (square-root /
hierarchical, amortized polylog with large reshuffle spikes).  Each baseline
here is a real executable implementation over the same substrates
(:class:`DiskStore`, :class:`CipherSuite`, virtual clock), so latency
*profiles* — not just averages — can be compared like-for-like with the
c-approximate scheme.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from ..crypto.rng import SecureRandom
from ..crypto.suite import CipherSuite
from ..errors import ConfigurationError
from ..hardware.specs import HardwareSpec
from ..sim.clock import VirtualClock
from ..sim.metrics import LatencySeries
from ..storage.disk import DiskStore
from ..storage.page import Page
from ..storage.trace import AccessTrace

__all__ = ["CryptoEndpoint", "RetrievalScheme", "measure_latencies"]


class CryptoEndpoint:
    """A minimal trusted endpoint: keys, rng, clock, timing charges.

    The secure-hardware schemes (Wang, sqrt-ORAM) and the trivial download
    scheme all need exactly this much trusted machinery; the full
    :class:`~repro.hardware.coprocessor.SecureCoprocessor` adds the paper's
    cache/page-map which the baselines do not share.
    """

    def __init__(
        self,
        page_capacity: int,
        master_key: bytes,
        spec: Optional[HardwareSpec] = None,
        seed: Optional[int] = None,
        cipher_backend: str = "blake2",
    ):
        self.spec = spec if spec is not None else HardwareSpec.instantaneous()
        self.clock = VirtualClock()
        self.rng = SecureRandom(seed)
        self.suite = CipherSuite(master_key, backend=cipher_backend, rng=self.rng)
        self.page_capacity = page_capacity

    @property
    def frame_size(self) -> int:
        return self.suite.frame_size(Page.plaintext_size(self.page_capacity))

    def seal(self, page: Page) -> bytes:
        return self.suite.encrypt_page(page.encode(self.page_capacity))

    def unseal(self, frame: bytes) -> Page:
        return Page.decode(self.suite.decrypt_page(frame))

    def charge_ingest(self, num_frames: int) -> None:
        self.clock.advance(self.spec.ingest_time(num_frames * self.frame_size))

    def charge_egress(self, num_frames: int) -> None:
        self.clock.advance(self.spec.egress_time(num_frames * self.frame_size))

    def new_disk(self, num_locations: int, trace_enabled: bool = True) -> DiskStore:
        return DiskStore(
            num_locations=num_locations,
            frame_size=self.frame_size,
            timing=self.spec.disk,
            clock=self.clock,
            trace=AccessTrace(enabled=trace_enabled),
        )


class RetrievalScheme(abc.ABC):
    """Common interface every private-retrieval scheme implements."""

    #: Human-readable scheme name for benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def retrieve(self, page_id: int) -> bytes:
        """Privately fetch the payload of ``page_id``."""

    @property
    @abc.abstractmethod
    def clock(self) -> VirtualClock:
        """The virtual clock all of this scheme's costs are charged to."""

    @property
    @abc.abstractmethod
    def num_pages(self) -> int:
        """Number of user-addressable pages."""


def measure_latencies(
    scheme: RetrievalScheme, request_ids: Sequence[int]
) -> LatencySeries:
    """Per-request simulated latency of a request stream against a scheme."""
    if not request_ids:
        raise ConfigurationError("request stream must be non-empty")
    series = LatencySeries()
    for page_id in request_ids:
        started = scheme.clock.now
        scheme.retrieve(page_id)
        series.record(scheme.clock.now - started)
    return series


def make_records(count: int, payload_size: int = 16) -> List[bytes]:
    """Deterministic distinguishable payloads for correctness checks."""
    if count <= 0 or payload_size < 8:
        raise ConfigurationError("need count > 0 and payload_size >= 8")
    return [
        page_id.to_bytes(8, "big") * (payload_size // 8)
        for page_id in range(count)
    ]
