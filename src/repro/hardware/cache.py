"""The coprocessor's internal page cache (``pageCache`` in Figure 2).

The cache is *not* a performance cache: its purpose is to hold a pool of
``m`` pages whose geometric (memoryless) eviction law drives the continuous
reshuffle (Eq. 1).  Accordingly, the only replacement policy the scheme's
analysis supports is *uniformly random victim selection*; the cache therefore
exposes slots, not lookup-by-recency.  An LRU policy is also provided purely
so the ablation benchmark can demonstrate that it breaks the privacy bound.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..crypto.rng import SecureRandom
from ..errors import CapacityError, ConfigurationError
from ..storage.page import Page

__all__ = ["PageCache", "RANDOM_POLICY", "LRU_POLICY"]

RANDOM_POLICY = "random"
LRU_POLICY = "lru"


class PageCache:
    """Fixed-capacity slot vector of plaintext pages inside the tamper boundary."""

    def __init__(self, capacity: int, rng: SecureRandom, policy: str = RANDOM_POLICY):
        if capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if policy not in (RANDOM_POLICY, LRU_POLICY):
            raise ConfigurationError(f"unknown cache policy {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self._rng = rng
        self._slots: List[Optional[Page]] = [None] * capacity
        self._filled = 0
        # For the LRU ablation only: logical use-clock per slot.
        self._last_use: List[int] = [0] * capacity
        self._tick = 0

    # -- setup fill -----------------------------------------------------------

    def fill(self, pages: List[Page]) -> None:
        """Populate all slots at setup time; the cache must end up full."""
        if len(pages) != self.capacity:
            raise CapacityError(
                f"cache fill needs exactly {self.capacity} pages, got {len(pages)}"
            )
        self._slots = list(pages)
        self._filled = self.capacity

    @property
    def is_full(self) -> bool:
        return self._filled == self.capacity

    def __len__(self) -> int:
        return self._filled

    def __iter__(self) -> Iterator[Page]:
        for page in self._slots:
            if page is not None:
                yield page

    # -- slot access ------------------------------------------------------------

    def get(self, slot: int) -> Page:
        """Read the page in ``slot`` (does not affect victim selection)."""
        page = self._slots[self._check_slot(slot)]
        if page is None:
            raise CapacityError(f"cache slot {slot} is empty")
        return page

    def put(self, slot: int, page: Page) -> Page:
        """Replace the page in ``slot``; returns the previous occupant."""
        self._check_slot(slot)
        previous = self._slots[slot]
        if previous is None:
            raise CapacityError(f"cache slot {slot} is empty; use fill() at setup")
        self._slots[slot] = page
        self._tick += 1
        self._last_use[slot] = self._tick
        return previous

    def victim_slot(self) -> int:
        """Pick the slot whose page will be evicted this request.

        Under the paper's policy this is uniform over all slots — including,
        deliberately, the slot of the page being requested (§4.1).
        """
        if not self.is_full:
            raise CapacityError("victim selection on a cache that was never filled")
        if self.policy == RANDOM_POLICY:
            return self._rng.randrange(self.capacity)
        # LRU ablation: evict the least recently *stored* page.
        return min(range(self.capacity), key=lambda s: self._last_use[s])

    def slot_of(self, page_id: int) -> Optional[int]:
        """Linear scan for a page id (diagnostics/tests only; the engine uses
        the page map for O(1) membership)."""
        for slot, page in enumerate(self._slots):
            if page is not None and page.page_id == page_id:
                return slot
        return None

    def _check_slot(self, slot: int) -> int:
        if not 0 <= slot < self.capacity:
            raise ConfigurationError(
                f"slot {slot} out of range for cache of {self.capacity}"
            )
        return slot
