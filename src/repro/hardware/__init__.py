"""Secure-hardware substrate: platform specs, cache, position map, coprocessor."""

from .cache import LRU_POLICY, RANDOM_POLICY, PageCache
from .coprocessor import SecureCoprocessor, SecureStorageReport
from .pagemap import PageLocation, PageMap
from .specs import GIGABYTE, IBM_4764, MEGABYTE, HardwareSpec

__all__ = [
    "LRU_POLICY",
    "RANDOM_POLICY",
    "PageCache",
    "SecureCoprocessor",
    "SecureStorageReport",
    "PageLocation",
    "PageMap",
    "GIGABYTE",
    "IBM_4764",
    "MEGABYTE",
    "HardwareSpec",
]
