"""The tamper-resistant secure coprocessor (trusted computing base).

Bundles everything that lives inside the tamper boundary:

* the cipher suite and its keys (never leave the boundary),
* the randomness source,
* the page cache (``pageCache``) and position map (``pageMap``),
* secure-memory accounting against the platform spec (Eq. 7).

The coprocessor does not know the retrieval algorithm — that is
:class:`repro.core.engine.RetrievalEngine` — it only provides the trusted
primitives (seal/unseal pages, timing charges for its link and crypto
engine) plus the two internal data structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .cache import PageCache, RANDOM_POLICY
from .pagemap import PageMap
from .specs import HardwareSpec
from ..crypto.rng import SecureRandom
from ..crypto.suite import CipherSuite
from ..errors import AuthenticationError, CapacityError
from ..obs.tracer import NULL_TRACER, Tracer
from ..sim.clock import VirtualClock
from ..storage.page import Page

__all__ = ["SecureCoprocessor", "SecureStorageReport"]


@dataclass(frozen=True)
class SecureStorageReport:
    """Breakdown of secure-memory consumption in bytes (Eq. 7)."""

    page_map: int
    page_cache: int
    server_block: int

    @property
    def total(self) -> int:
        return self.page_map + self.page_cache + self.server_block


class SecureCoprocessor:
    """Trusted hardware state and primitives.

    Parameters
    ----------
    num_pages:
        Total logical pages (disk locations + cached pages).
    cache_capacity:
        ``m``, the number of pages held in the internal cache.
    block_size:
        ``k``; only used for the server-block term of storage accounting.
    page_capacity:
        Payload capacity of each page in bytes.
    spec:
        Platform performance envelope; storage is checked against
        ``spec.total_secure_memory`` and timing charged via ``clock``.
    """

    def __init__(
        self,
        num_pages: int,
        cache_capacity: int,
        block_size: int,
        page_capacity: int,
        master_key: bytes = b"repro-master-key",
        spec: Optional[HardwareSpec] = None,
        clock: Optional[VirtualClock] = None,
        rng: Optional[SecureRandom] = None,
        cipher_backend: str = "blake2",
        cache_policy: str = RANDOM_POLICY,
        enforce_memory_limit: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        self.spec = spec if spec is not None else HardwareSpec.instantaneous()
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = rng if rng is not None else SecureRandom()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.suite = CipherSuite(master_key, backend=cipher_backend, rng=self.rng,
                                 tracer=self.tracer)
        # The master keys stay inside the tamper boundary with the suite;
        # they are retained (the suite only keeps derived keys) so sibling
        # suites for background workers and warm-replica snapshots can be
        # derived without a round-trip to the operator.
        self._master_key = bytes(master_key)
        self._legacy_master_key: Optional[bytes] = None
        self._legacy_suite: Optional[CipherSuite] = None
        self.pipeline = None  # KeystreamPipeline; see attach_pipeline()
        self.page_capacity = page_capacity
        self.block_size = block_size
        self.page_map = PageMap(num_pages)
        self.cache = PageCache(cache_capacity, self.rng.spawn("cache"), cache_policy)
        if enforce_memory_limit:
            report = self.storage_report()
            if report.total > self.spec.total_secure_memory:
                raise CapacityError(
                    f"configuration needs {report.total} bytes of secure memory "
                    f"but the platform provides {self.spec.total_secure_memory} "
                    f"({self.spec.units} unit(s))"
                )

    # -- page sealing ---------------------------------------------------------
    #
    # Key rotation rides on the continuous reshuffle for free: every request
    # rewrites its whole block plus one extra page with fresh encryptions, and
    # the round-robin schedule touches every location exactly once per scan
    # period.  So switching the *sealing* key while keeping the old key for
    # unsealing makes the entire database migrate to the new key within one
    # scan — no extra I/O, no downtime, and the server cannot even tell a
    # rotation happened (write-backs always look fresh).  The engine counts
    # down the scan and calls finish_key_rotation().

    @property
    def rotation_in_progress(self) -> bool:
        return self._legacy_suite is not None

    def begin_key_rotation(self, new_master_key: bytes) -> None:
        """Start sealing under a new master key; old frames remain readable."""
        if self.rotation_in_progress:
            raise CapacityError("a key rotation is already in progress")
        self._legacy_suite = self.suite
        self._legacy_master_key = self._master_key
        self._master_key = bytes(new_master_key)
        self.suite = CipherSuite(
            new_master_key, backend=self.suite.backend, rng=self.rng,
            tracer=self.tracer,
        )
        # The prefetcher keys its entries by suite identity, so cached
        # legacy-key keystreams stay usable (MAC verification routes each
        # frame to the suite that sealed it) and the new suite starts
        # populating its own entries as write-backs land.
        self.suite.pipeline = self.pipeline
        if self.suite.frame_size(self.plaintext_page_size) != self.frame_size:
            raise CapacityError("rotation must preserve the frame size")

    def finish_key_rotation(self) -> None:
        """Drop the legacy key once a full scan has re-encrypted everything."""
        self._legacy_suite = None
        self._legacy_master_key = None

    @property
    def legacy_master_key(self) -> Optional[bytes]:
        """The pre-rotation master key, or None outside a rotation.

        Only read by :mod:`repro.core.snapshot` when sealing trusted state
        mid-rotation — the key travels inside the double-sealed blob, never
        in the public manifest.
        """
        return self._legacy_master_key

    def adopt_legacy_key(self, legacy_master_key: bytes) -> None:
        """Re-enter an in-progress rotation restored from a snapshot.

        The current suite already seals under the new key; this re-creates
        the legacy suite so pre-rotation frames keep authenticating until
        the scan (or background re-permutation sweep) finishes.
        """
        if self.rotation_in_progress:
            raise CapacityError("a key rotation is already in progress")
        self._legacy_master_key = bytes(legacy_master_key)
        self._legacy_suite = CipherSuite(
            legacy_master_key, backend=self.suite.backend, rng=self.rng,
            tracer=self.tracer,
        )
        self._legacy_suite.pipeline = self.pipeline

    def sibling_suite(self, label: str) -> CipherSuite:
        """A suite with the *same* derived keys but an independent nonce RNG.

        Background workers (the online reshuffler) must reseal frames
        without consuming the request path's deterministic nonce stream —
        otherwise enabling a background pass would change the bytes the
        serial engine produces.  ``SecureRandom.spawn`` derives the child
        stream without advancing the parent, so a sibling suite's frames
        decrypt under :attr:`suite` (identical enc/MAC keys) while its
        nonces never collide with, or perturb, the engine's.
        """
        return CipherSuite(
            self._master_key, backend=self.suite.backend,
            rng=self.rng.spawn(label), tracer=self.tracer,
        )

    # -- keystream prefetch ----------------------------------------------------

    def attach_pipeline(self, pipeline) -> None:
        """Connect a :class:`~repro.crypto.pipeline.KeystreamPipeline`.

        The pipeline lives inside the tamper boundary with the suite: it
        caches raw keystream bytes, which are as sensitive as the keys
        themselves.  Passing None detaches.
        """
        self.pipeline = pipeline
        self.suite.pipeline = pipeline
        if self._legacy_suite is not None:
            self._legacy_suite.pipeline = pipeline

    def note_frames_written(self, locations: Sequence[int],
                            frames: Sequence[bytes]) -> None:
        """Tell the prefetcher which nonces now live at ``locations``.

        The nonces are read from the frame headers the coprocessor itself
        just produced — recording them draws no randomness and is a no-op
        without an attached pipeline.
        """
        if self.pipeline is not None:
            self.pipeline.note_written_frames(locations, self.suite, frames)

    def prefetch_keystreams(self, locations: Sequence[int]) -> int:
        """Precompute decrypt keystreams for the frames at ``locations``.

        Returns the number of keystream bytes scheduled (0 without a
        pipeline, for unknown locations, or on the null backend).
        """
        if self.pipeline is None:
            return 0
        # CTR ciphertext length equals plaintext length, so the decrypt
        # keystream for a frame covers exactly the encoded page payload.
        return self.pipeline.prefetch(locations, self.plaintext_page_size)

    @property
    def plaintext_page_size(self) -> int:
        return Page.plaintext_size(self.page_capacity)

    @property
    def frame_size(self) -> int:
        """Bytes of one encrypted page frame as stored on the untrusted disk."""
        return self.suite.frame_size(self.plaintext_page_size)

    def seal(self, page: Page) -> bytes:
        """Encode + encrypt a page with a fresh nonce (Figure 3, line 21)."""
        return self.suite.encrypt_page(page.encode(self.page_capacity))

    def unseal(self, frame: bytes) -> Page:
        """Decrypt + authenticate + decode a page frame.

        During a key rotation, frames written before the switch still
        authenticate under the legacy key and are accepted; everything
        written from now on uses the new key.
        """
        try:
            return Page.decode(self.suite.decrypt_page(frame))
        except AuthenticationError:
            if self._legacy_suite is None:
                raise
            return Page.decode(self._legacy_suite.decrypt_page(frame))

    def seal_pages(self, pages: Sequence[Page]) -> List[bytes]:
        """Batch :meth:`seal`: one cipher-suite call for a whole block.

        Nonces are drawn in page order, so the frames are byte-identical
        to sealing each page individually — the batch only removes the
        per-frame Python overhead (2(k+1) suite entries per request become
        two, see DESIGN.md §10).
        """
        return self.suite.encrypt_pages(
            [page.encode(self.page_capacity) for page in pages]
        )

    def unseal_frames(
        self, frames: Sequence[bytes], views: bool = False
    ) -> List[Page]:
        """Batch :meth:`unseal` with batched MAC verification.

        During a key rotation the store holds a mix of old- and new-key
        frames, so the batch falls back to the per-frame path (which
        retries the legacy key per frame); outside rotation — the steady
        state — the whole batch is verified and decrypted in one call.

        ``views=True`` decodes the pages over zero-copy memoryview slices
        of one shared decrypt buffer (ignored on the rotation fallback,
        where frames are decrypted one at a time anyway).
        """
        if self._legacy_suite is not None:
            return [self.unseal(frame) for frame in frames]
        return [
            Page.decode(plaintext)
            for plaintext in self.suite.decrypt_pages(frames, views=views)
        ]

    def seal_blob(self, data: bytes) -> bytes:
        """Encrypt + MAC an arbitrary trusted blob (e.g. an intent record)."""
        return self.suite.encrypt_page(data)

    def unseal_blob(self, blob: bytes) -> bytes:
        """Decrypt + authenticate a blob sealed by :meth:`seal_blob`.

        Accepts the legacy key during a rotation, like :meth:`unseal`.
        """
        try:
            return self.suite.decrypt_page(blob)
        except AuthenticationError:
            if self._legacy_suite is None:
                raise
            return self._legacy_suite.decrypt_page(blob)

    def seal_record(self, plaintext: bytes) -> bytes:
        """Seal one fixed-size control record (the §13 replication stream).

        The caller pads the record to its deployment-fixed size *before*
        sealing, so every sealed record is the same length regardless of
        the operation it carries — the host sees a uniform stream of
        ciphertexts, one per request, and learns nothing about the
        read/write mix.  Sealing uses the replica-shared master-key suite
        (:meth:`seal_blob`), which is what makes the record readable by
        every peer coprocessor and by nothing outside one.
        """
        return self.seal_blob(plaintext)

    def unseal_record(self, sealed: bytes) -> bytes:
        """Authenticate + decrypt a record sealed by a peer coprocessor."""
        return self.unseal_blob(sealed)

    # -- timing charges (link + crypto engine) -----------------------------------

    def charge_ingest(self, num_frames: int) -> None:
        """Clock cost of pulling ``num_frames`` frames in and decrypting them."""
        nbytes = num_frames * self.frame_size
        with self.tracer.span("link.ingest", nbytes=nbytes):
            self.clock.advance(self.spec.ingest_time(nbytes))

    def charge_egress(self, num_frames: int) -> None:
        """Clock cost of re-encrypting ``num_frames`` frames and pushing them out."""
        nbytes = num_frames * self.frame_size
        with self.tracer.span("link.egress", nbytes=nbytes):
            self.clock.advance(self.spec.egress_time(nbytes))

    # -- storage accounting --------------------------------------------------------

    def storage_report(self) -> SecureStorageReport:
        """Actual secure-memory footprint, mirroring Eq. 7's three terms."""
        page_bytes = self.plaintext_page_size
        return SecureStorageReport(
            page_map=self.page_map.storage_bytes(),
            page_cache=self.cache.capacity * page_bytes,
            server_block=(self.block_size + 1) * page_bytes,
        )
