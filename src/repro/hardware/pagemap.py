"""The look-up table mapping page ids to their current location (``pageMap``).

Each entry is the tuple ``(inCache, position)`` from Figure 2: when
``inCache`` is set, ``position`` is a cache slot; otherwise it is a disk
location under the current permutation.  Deleted pages additionally carry a
deleted flag — the paper encodes deletion as an all-ones ``position``
sentinel; we keep an explicit bit for clarity but account storage identically
(Eq. 7 charges ``log2(n) + 1`` bits per entry; the deleted state reuses the
reserved position value so it is storage-free).

The map also maintains the free pool (dummy + deleted page ids) that §4.3's
insertion path consumes, and a count of cached pages so invariants are cheap
to assert.
"""

from __future__ import annotations

import math
from typing import List, Set

from ..errors import ConfigurationError, PageNotFoundError

__all__ = ["PageMap", "PageLocation"]


class PageLocation:
    """Resolved location of a logical page."""

    __slots__ = ("in_cache", "position", "deleted")

    def __init__(self, in_cache: bool, position: int, deleted: bool):
        self.in_cache = in_cache
        self.position = position
        self.deleted = deleted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "cache" if self.in_cache else "disk"
        suffix = " (deleted)" if self.deleted else ""
        return f"PageLocation({where}:{self.position}{suffix})"


class PageMap:
    """Position map for ``num_pages`` logical ids (disk pages + cached pages)."""

    def __init__(self, num_pages: int):
        if num_pages <= 0:
            raise ConfigurationError("page map needs at least one page")
        self.num_pages = num_pages
        self._in_cache: List[bool] = [False] * num_pages
        self._position: List[int] = [-1] * num_pages
        self._deleted: List[bool] = [False] * num_pages
        self._free: Set[int] = set()
        self._cached_count = 0

    # -- queries -----------------------------------------------------------------

    def _check_id(self, page_id: int) -> int:
        if not 0 <= page_id < self.num_pages:
            raise PageNotFoundError(f"page id {page_id} out of range [0, {self.num_pages})")
        return page_id

    def lookup(self, page_id: int) -> PageLocation:
        self._check_id(page_id)
        position = self._position[page_id]
        if position < 0:
            raise PageNotFoundError(f"page id {page_id} has no recorded position")
        return PageLocation(self._in_cache[page_id], position, self._deleted[page_id])

    def is_cached(self, page_id: int) -> bool:
        return self._in_cache[self._check_id(page_id)]

    def is_deleted(self, page_id: int) -> bool:
        return self._deleted[self._check_id(page_id)]

    def disk_location(self, page_id: int) -> int:
        """Disk location of a non-cached page (error if it is cached)."""
        location = self.lookup(page_id)
        if location.in_cache:
            raise PageNotFoundError(f"page {page_id} is cached, not on disk")
        return location.position

    @property
    def cached_count(self) -> int:
        return self._cached_count

    # -- updates ------------------------------------------------------------------

    def set_disk(self, page_id: int, location: int) -> None:
        """Record that ``page_id`` now lives at ``location`` on the disk."""
        self._check_id(page_id)
        if location < 0:
            raise ConfigurationError("disk location must be non-negative")
        if self._in_cache[page_id]:
            self._cached_count -= 1
        self._in_cache[page_id] = False
        self._position[page_id] = location

    def set_cached(self, page_id: int, slot: int) -> None:
        """Record that ``page_id`` now occupies cache slot ``slot``."""
        self._check_id(page_id)
        if slot < 0:
            raise ConfigurationError("cache slot must be non-negative")
        if not self._in_cache[page_id]:
            self._cached_count += 1
        self._in_cache[page_id] = True
        self._position[page_id] = slot

    # -- lifecycle / free pool ------------------------------------------------------

    def mark_deleted(self, page_id: int) -> None:
        self._check_id(page_id)
        self._deleted[page_id] = True
        self._free.add(page_id)

    def mark_live(self, page_id: int) -> None:
        self._check_id(page_id)
        self._deleted[page_id] = False
        self._free.discard(page_id)

    @property
    def free_count(self) -> int:
        """Number of ids available to host a future insertion."""
        return len(self._free)

    def any_free_id(self) -> int:
        """An arbitrary free id (deterministic order not required)."""
        if not self._free:
            raise PageNotFoundError("no free pages available for insertion")
        return next(iter(self._free))

    def free_ids(self) -> Set[int]:
        return set(self._free)

    # -- storage accounting (Eq. 7, first term) ---------------------------------------

    def storage_bits(self) -> int:
        """Secure-memory bits consumed: ``n * (ceil(log2 n) + 1)``."""
        return self.num_pages * (max(1, math.ceil(math.log2(self.num_pages))) + 1)

    def storage_bytes(self) -> int:
        return (self.storage_bits() + 7) // 8
