"""Secure-hardware platform specifications (Table 2 of the paper).

The reference platform is the IBM 4764 PCI-X secure coprocessor: up to 64 MB
of tamper-protected internal memory, an 80 MB/s host link and a 10 MB/s
AES engine.  §5 notes that larger databases can aggregate several coprocessor
units purely for their combined secure memory; :meth:`HardwareSpec.scaled`
models that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..storage.timing import DiskTimingModel

__all__ = ["HardwareSpec", "IBM_4764", "MEGABYTE", "GIGABYTE"]

MEGABYTE = 10**6
GIGABYTE = 10**9


@dataclass(frozen=True)
class HardwareSpec:
    """Performance envelope of the secure hardware and its environment.

    Attributes mirror Table 2: ``secure_memory`` bytes of internal cache,
    link bandwidth ``r_b``, crypto throughput ``r_ed`` and the disk model
    (``t_s``, ``r_d``).
    """

    secure_memory: int = 64 * MEGABYTE
    link_bandwidth: float = 80e6
    crypto_throughput: float = 10e6
    disk: DiskTimingModel = DiskTimingModel()
    units: int = 1

    def __post_init__(self) -> None:
        if self.secure_memory <= 0:
            raise ConfigurationError("secure_memory must be positive")
        if self.link_bandwidth <= 0 or self.crypto_throughput <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if self.units <= 0:
            raise ConfigurationError("units must be positive")

    @property
    def total_secure_memory(self) -> int:
        """Aggregate secure memory across all coprocessor units."""
        return self.secure_memory * self.units

    def scaled(self, units: int) -> "HardwareSpec":
        """The same platform with ``units`` coprocessors pooled for storage."""
        return replace(self, units=units)

    # -- per-operation timing ----------------------------------------------------

    def link_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` across the host<->coprocessor link."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        return num_bytes / self.link_bandwidth

    def crypto_time(self, num_bytes: int) -> float:
        """Seconds for the crypto engine to (en|de)crypt ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigurationError("num_bytes must be non-negative")
        return num_bytes / self.crypto_throughput

    def ingest_time(self, num_bytes: int) -> float:
        """Link + decrypt cost of pulling bytes from the server into the HW."""
        return self.link_time(num_bytes) + self.crypto_time(num_bytes)

    def egress_time(self, num_bytes: int) -> float:
        """Encrypt + link cost of pushing bytes from the HW to the server."""
        return self.link_time(num_bytes) + self.crypto_time(num_bytes)

    @staticmethod
    def instantaneous() -> "HardwareSpec":
        """Zero-cost spec for access-pattern-only experiments."""
        return HardwareSpec(
            secure_memory=2**62,
            link_bandwidth=float("inf"),
            crypto_throughput=float("inf"),
            disk=DiskTimingModel.instantaneous(),
        )


IBM_4764 = HardwareSpec()
