"""Cluster backends: replica bootstrap, restart, and test harness.

A cluster backend is an ordinary :class:`~repro.net.server.PirServer`
configured for membership in a routed tier:

* ``adopt_sessions=True`` — a failed-over RESUME for a session it has
  never seen installs the session suite (derivable from the id) instead
  of refusing;
* its :class:`~repro.service.frontend.QueryFrontend` shares reply-cache
  visibility with its peers, so a retransmission the *old* backend
  already applied and acknowledged is answered from cache, not
  re-executed — the exactly-once half of failover;
* its database is either the primary or a read replica bootstrapped via
  :func:`~repro.core.snapshot.bootstrap_replica` (one snapshot, N
  restores, independent serving lineages).

:class:`BackendHandle` adds the two lifecycle verbs the chaos drills
need — ``kill()`` (abrupt, mid-anything) and ``restart()`` (fresh server
process-equivalent on the same port and engine) — and
:func:`build_cluster` stands up a primary plus replicas in-process for
tests and benchmarks.  A production deployment runs one
``python -m repro cluster serve-backend`` per machine instead.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from .membership import BackendSpec
from .replication import ReplicationApplier, ReplicationLog, Replicator
from ..core.database import PirDatabase
from ..core.snapshot import bootstrap_replica, load_snapshot
from ..errors import ConfigurationError
from ..net.admission import AdmissionController
from ..net.server import PirServer, ServerThread
from ..service.frontend import SESSION_RANDOM, QueryFrontend, SealedReplyCache

__all__ = ["BackendHandle", "build_cluster", "connect_replication"]


class BackendHandle:
    """One in-process cluster backend: engine + frontend + server thread.

    The engine and frontend survive :meth:`kill`; :meth:`restart` wraps
    them in a fresh :class:`PirServer` bound to the *same* port, which is
    how the chaos tests model a crashed process coming back on its
    advertised address.
    """

    def __init__(self, db: PirDatabase, frontend: QueryFrontend,
                 host: str = "127.0.0.1", port: int = 0,
                 admission: Optional[AdmissionController] = None,
                 metrics=None):
        self.db = db
        self.frontend = frontend
        self.admission = admission
        self.metrics = metrics
        self.server = PirServer(
            frontend, host=host, port=port, admission=admission,
            adopt_sessions=True, metrics=metrics,
        )
        self.thread: Optional[ServerThread] = None
        # Sealed write replication (see connect_replication): the log and
        # applier belong to the *engine* side and survive kill/restart,
        # exactly like the frontend; the streamer threads belong to the
        # process-equivalent and are torn down and respawned with it.
        self.repl_log: Optional[ReplicationLog] = None
        self.repl_applier: Optional[ReplicationApplier] = None
        self._repl_peers: list = []
        self._replicators: list = []

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def spec(self) -> BackendSpec:
        return BackendSpec(self.server.host, self.server.port)

    def start(self) -> "BackendHandle":
        if self.thread is not None:
            raise ConfigurationError("backend already started")
        self.thread = ServerThread(self.server).start()
        return self

    # -- replication lifecycle -------------------------------------------------

    def attach_replication(self, log: ReplicationLog,
                           applier: ReplicationApplier,
                           peer_addresses: Sequence[str]) -> None:
        """Wire this member into the sealed replication mesh.

        The database starts emitting one sealed record per request into
        ``log``, and the server starts answering peers' REPL connections
        through ``applier`` and stamping replies with the log's
        high-water mark.  Call :meth:`start_replication` (or
        :func:`connect_replication`, which does both) to begin streaming
        to ``peer_addresses``.
        """
        self.repl_log = log
        self.repl_applier = applier
        self._repl_peers = list(peer_addresses)
        self.db.replication = log
        self.server.attach_replication(log, applier)

    def start_replication(self) -> None:
        """(Re)spawn one streamer thread per peer."""
        self.stop_replication()
        if self.repl_log is None:
            return
        for peer in self._repl_peers:
            replicator = Replicator(self.repl_log, peer)
            replicator.start()
            self._replicators.append(replicator)

    def stop_replication(self) -> None:
        for replicator in self._replicators:
            replicator.stop()
        self._replicators = []

    def kill(self) -> None:
        """Crash the serving process-equivalent; engine state survives.

        The server dies before the streamers so any in-flight semi-sync
        barrier can still see its record delivered — stopping the
        streamers first would mark every peer disconnected and wave the
        barrier through with the write unreplicated (the reply-cache
        dedupe gate covers that window regardless, at the cost of a
        shed).
        """
        if self.thread is not None:
            self.thread.kill()
            self.thread = None
        self.stop_replication()

    def drain(self) -> None:
        """Graceful stop (the rolling-restart path).

        Streamers keep running until the drain completes so the backlog
        finishes flushing to peers, then stop with the process.
        """
        if self.thread is not None:
            self.thread.drain()
            self.thread = None
        self.stop_replication()

    def restart(self) -> "BackendHandle":
        """Come back on the same port after a kill or drain.

        A fresh :class:`PirServer` (a drained one has shut its workers
        down for good); the frontend — sessions, reply cache — carries
        over, exactly as a restarted process reloads its persistent
        state.
        """
        if self.thread is not None:
            raise ConfigurationError("backend still running; kill it first")
        self.server = PirServer(
            self.frontend, host=self.server.host, port=self.server.port,
            admission=self.admission, adopt_sessions=True,
            metrics=self.metrics,
        )
        if self.repl_log is not None and self.repl_applier is not None:
            # Same log + applier: the restarted member resumes emitting
            # where it left off and remembers how far it applied each
            # peer, so the catch-up handshakes replay only what it missed.
            self.server.attach_replication(self.repl_log, self.repl_applier)
        self.thread = ServerThread(self.server).start()
        if self.repl_log is not None:
            self.start_replication()
        return self

    def stop(self) -> None:
        self.kill()

    def __enter__(self) -> "BackendHandle":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.kill()


def build_cluster(
    records: Sequence[bytes],
    replicas: int,
    snapshot_dir: str,
    cache_capacity: int = 8,
    seed: int = 1,
    host: str = "127.0.0.1",
    metrics=None,
    reply_cache: Optional[SealedReplyCache] = None,
    session_ttl: Optional[float] = None,
    **create_kw,
) -> List[BackendHandle]:
    """Stand up a primary plus ``replicas - 1`` read replicas, unstarted.

    One database is created from ``records``; the rest are bootstrapped
    from its snapshot (written under ``snapshot_dir``), so all members
    answer queries identically.  Every frontend shares one
    :class:`SealedReplyCache` — in-process stand-in for the shared cache
    a real deployment would host — giving the cluster exactly-once
    semantics across failover (DESIGN.md §13).

    Callers start the handles (``handle.start()``), build a
    :class:`~repro.cluster.router.ClusterRouter` over
    ``[h.spec for h in handles]``, and own the snapshot directory's
    lifetime.
    """
    if replicas < 1:
        raise ConfigurationError("a cluster needs at least one backend")
    primary = PirDatabase.create(
        records, cache_capacity=cache_capacity, seed=seed, **create_kw
    )
    databases = [primary]
    if replicas > 1:
        directory = os.path.join(snapshot_dir, "bootstrap")
        databases.append(bootstrap_replica(primary, directory, seed=seed + 1))
        for index in range(2, replicas):
            databases.append(load_snapshot(directory, seed=seed + index))
    shared_cache = (reply_cache if reply_cache is not None
                    else SealedReplyCache())
    handles = []
    for index, db in enumerate(databases):
        # Distinct salt per member: session ids come from the database's
        # seeded RNG tree, and ids must be unique cluster-wide (the id is
        # the key-agreement input; see QueryFrontend).  The replica seeds
        # above already differ, but the salt keeps that guarantee even if
        # a caller bootstraps members with identical seeds.
        frontend = QueryFrontend(
            db, metrics=metrics, session_id_mode=SESSION_RANDOM,
            session_ttl=session_ttl, reply_cache=shared_cache,
            session_salt=f"member-{index}",
        )
        handles.append(BackendHandle(db, frontend, host=host, metrics=metrics))
    return handles


def connect_replication(
    handles: Sequence[BackendHandle],
    cover_traffic: bool = True,
    durable_dir: Optional[str] = None,
    dial_overrides: Optional[dict] = None,
    origins: Optional[Sequence[str]] = None,
    wait_timeout: float = 5.0,
    metrics=None,
) -> None:
    """Wire *started* backends into a full replication mesh and stream.

    Every member gets a :class:`ReplicationLog` keyed by its advertised
    address (the origin peers track), a :class:`ReplicationApplier`, and
    one streamer thread per peer.  Call after ``handle.start()`` — the
    origin identity is the bound ``host:port``, so ports must be known.

    ``origins`` overrides the per-member origin identity.  The origin is
    an opaque stream name, but the router's read-your-writes gate asks
    failover candidates for their applied mark *by the address it knows
    the member under* — so whenever the router is configured with
    addresses other than the bound ones (a chaos proxy standing in for a
    member, a NAT'd deployment), pass those advertised addresses here.

    ``cover_traffic`` is the privacy-vs-cost dial: True (default) emits a
    sealed cover record for every read so the stream leaks only request
    counts; False replicates writes only, cheaper but read/write-mix
    visible to the host.  ``durable_dir`` persists each member's backlog
    (``repl-<i>.log``) so an acknowledged write survives a full process
    crash, not just a thread death.  ``dial_overrides`` maps a peer's
    real address to the address streamers should dial instead — the hook
    chaos tests use to interpose a :class:`~repro.faults.netchaos
    .ChaosProxy` on the replication path (origins stay the real
    addresses).
    """
    for handle in handles:
        if handle.port == 0:
            raise ConfigurationError(
                "connect_replication needs started backends (port 0 means "
                "the listener is not bound yet)"
            )
    overrides = dict(dial_overrides or {})
    if origins is not None and len(origins) != len(handles):
        raise ConfigurationError(
            "origins must name every backend exactly once"
        )
    real = [handle.spec.address for handle in handles]
    names = list(origins) if origins is not None else real
    for index, handle in enumerate(handles):
        path = (os.path.join(durable_dir, f"repl-{index}.log")
                if durable_dir is not None else None)
        log = ReplicationLog(
            handle.db.cop, origin=names[index],
            cover_traffic=cover_traffic, path=path,
            wait_timeout=wait_timeout, metrics=metrics,
        )
        applier = ReplicationApplier(
            handle.db, metrics=metrics,
            engine_lock=handle.frontend.engine_lock,
        )
        # Streamers always dial the *bound* peer addresses (or a chaos
        # interposition from dial_overrides); origins are identities,
        # not dial targets.
        peers = [overrides.get(real[j], real[j])
                 for j in range(len(handles)) if j != index]
        handle.attach_replication(log, applier, peers)
    for handle in handles:
        handle.start_replication()
