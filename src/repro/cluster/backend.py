"""Cluster backends: replica bootstrap, restart, and test harness.

A cluster backend is an ordinary :class:`~repro.net.server.PirServer`
configured for membership in a routed tier:

* ``adopt_sessions=True`` — a failed-over RESUME for a session it has
  never seen installs the session suite (derivable from the id) instead
  of refusing;
* its :class:`~repro.service.frontend.QueryFrontend` shares reply-cache
  visibility with its peers, so a retransmission the *old* backend
  already applied and acknowledged is answered from cache, not
  re-executed — the exactly-once half of failover;
* its database is either the primary or a read replica bootstrapped via
  :func:`~repro.core.snapshot.bootstrap_replica` (one snapshot, N
  restores, independent serving lineages).

:class:`BackendHandle` adds the two lifecycle verbs the chaos drills
need — ``kill()`` (abrupt, mid-anything) and ``restart()`` (fresh server
process-equivalent on the same port and engine) — and
:func:`build_cluster` stands up a primary plus replicas in-process for
tests and benchmarks.  A production deployment runs one
``python -m repro cluster serve-backend`` per machine instead.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from .membership import BackendSpec
from ..core.database import PirDatabase
from ..core.snapshot import bootstrap_replica, load_snapshot
from ..errors import ConfigurationError
from ..net.admission import AdmissionController
from ..net.server import PirServer, ServerThread
from ..service.frontend import SESSION_RANDOM, QueryFrontend, SealedReplyCache

__all__ = ["BackendHandle", "build_cluster"]


class BackendHandle:
    """One in-process cluster backend: engine + frontend + server thread.

    The engine and frontend survive :meth:`kill`; :meth:`restart` wraps
    them in a fresh :class:`PirServer` bound to the *same* port, which is
    how the chaos tests model a crashed process coming back on its
    advertised address.
    """

    def __init__(self, db: PirDatabase, frontend: QueryFrontend,
                 host: str = "127.0.0.1", port: int = 0,
                 admission: Optional[AdmissionController] = None,
                 metrics=None):
        self.db = db
        self.frontend = frontend
        self.admission = admission
        self.metrics = metrics
        self.server = PirServer(
            frontend, host=host, port=port, admission=admission,
            adopt_sessions=True, metrics=metrics,
        )
        self.thread: Optional[ServerThread] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def spec(self) -> BackendSpec:
        return BackendSpec(self.server.host, self.server.port)

    def start(self) -> "BackendHandle":
        if self.thread is not None:
            raise ConfigurationError("backend already started")
        self.thread = ServerThread(self.server).start()
        return self

    def kill(self) -> None:
        """Crash the serving process-equivalent; engine state survives."""
        if self.thread is not None:
            self.thread.kill()
            self.thread = None

    def drain(self) -> None:
        """Graceful stop (the rolling-restart path)."""
        if self.thread is not None:
            self.thread.drain()
            self.thread = None

    def restart(self) -> "BackendHandle":
        """Come back on the same port after a kill or drain.

        A fresh :class:`PirServer` (a drained one has shut its workers
        down for good); the frontend — sessions, reply cache — carries
        over, exactly as a restarted process reloads its persistent
        state.
        """
        if self.thread is not None:
            raise ConfigurationError("backend still running; kill it first")
        self.server = PirServer(
            self.frontend, host=self.server.host, port=self.server.port,
            admission=self.admission, adopt_sessions=True,
            metrics=self.metrics,
        )
        self.thread = ServerThread(self.server).start()
        return self

    def stop(self) -> None:
        self.kill()

    def __enter__(self) -> "BackendHandle":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.kill()


def build_cluster(
    records: Sequence[bytes],
    replicas: int,
    snapshot_dir: str,
    cache_capacity: int = 8,
    seed: int = 1,
    host: str = "127.0.0.1",
    metrics=None,
    reply_cache: Optional[SealedReplyCache] = None,
    session_ttl: Optional[float] = None,
    **create_kw,
) -> List[BackendHandle]:
    """Stand up a primary plus ``replicas - 1`` read replicas, unstarted.

    One database is created from ``records``; the rest are bootstrapped
    from its snapshot (written under ``snapshot_dir``), so all members
    answer queries identically.  Every frontend shares one
    :class:`SealedReplyCache` — in-process stand-in for the shared cache
    a real deployment would host — giving the cluster exactly-once
    semantics across failover (DESIGN.md §13).

    Callers start the handles (``handle.start()``), build a
    :class:`~repro.cluster.router.ClusterRouter` over
    ``[h.spec for h in handles]``, and own the snapshot directory's
    lifetime.
    """
    if replicas < 1:
        raise ConfigurationError("a cluster needs at least one backend")
    primary = PirDatabase.create(
        records, cache_capacity=cache_capacity, seed=seed, **create_kw
    )
    databases = [primary]
    if replicas > 1:
        directory = os.path.join(snapshot_dir, "bootstrap")
        databases.append(bootstrap_replica(primary, directory, seed=seed + 1))
        for index in range(2, replicas):
            databases.append(load_snapshot(directory, seed=seed + index))
    shared_cache = (reply_cache if reply_cache is not None
                    else SealedReplyCache())
    handles = []
    for index, db in enumerate(databases):
        # Distinct salt per member: session ids come from the database's
        # seeded RNG tree, and ids must be unique cluster-wide (the id is
        # the key-agreement input; see QueryFrontend).  The replica seeds
        # above already differ, but the salt keeps that guarantee even if
        # a caller bootstraps members with identical seeds.
        frontend = QueryFrontend(
            db, metrics=metrics, session_id_mode=SESSION_RANDOM,
            session_ttl=session_ttl, reply_cache=shared_cache,
            session_salt=f"member-{index}",
        )
        handles.append(BackendHandle(db, frontend, host=host, metrics=metrics))
    return handles
