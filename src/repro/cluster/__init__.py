"""Fault-tolerant cluster tier: router, membership, backends.

The serving stack's answer to machine failure (DESIGN.md §13): a
stateless :class:`~repro.cluster.router.ClusterRouter` speaks the
:mod:`repro.net.framing` envelope to clients and pins each session to
one of N backend :class:`~repro.net.server.PirServer` processes.
Health-gated membership (PING/PONG probing with hysteresis) routes
around dead or draining members; failover re-establishes a session on a
replica via RESUME and retransmits the in-flight sealed request, with
shared reply-cache visibility keeping delivery exactly-once.  Sealed
write replication (:mod:`repro.cluster.replication`) streams every
member's mutations to its peers and the router enforces read-your-writes
on failover, so an acknowledged write is visible on whichever replica
adopts the session.  The router never opens sealed bytes — it sits
outside the tamper boundary and learns nothing the host platform does
not already see.
"""

from .backend import BackendHandle, build_cluster, connect_replication
from .membership import BackendSpec, ClusterMembership, MemberState
from .replication import (
    ReplicationApplier,
    ReplicationLog,
    ReplicationRecord,
    Replicator,
)
from .router import ClusterRouter, RouterThread

__all__ = [
    "BackendHandle",
    "BackendSpec",
    "ClusterMembership",
    "ClusterRouter",
    "MemberState",
    "ReplicationApplier",
    "ReplicationLog",
    "ReplicationRecord",
    "Replicator",
    "RouterThread",
    "build_cluster",
    "connect_replication",
]
