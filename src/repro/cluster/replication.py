"""Sealed write replication between cluster backends (DESIGN.md §13).

PR 6's cluster tier made reads available across backend failures but let
writes land on exactly one member, so replicas diverged from the
bootstrap snapshot onward.  This module closes that gap with a sealed,
sequence-numbered logical replication stream:

* :class:`ReplicationLog` — the *origin* side.  Every request the
  database serves emits one fixed-size record (``RPL1`` magic, encoded
  with the same :class:`~repro.core.journal.RecordCursor` idiom as the
  RJN1/RJN2 intent records) that is sealed by the coprocessor under the
  replica-shared master key before the host ever sees it.  Reads emit
  ``noop`` *cover records* by default, so the stream length and record
  sizes reveal only the request count — which connection-level traffic
  analysis already reveals — and never the read/write mix.  Setting
  ``cover_traffic=False`` drops the covers: cheaper (peers do no work
  for reads) but the host learns which requests were writes.  This is
  the same privacy-vs-cost dial the paper turns with ``c``.

* :class:`ReplicationApplier` — the *peer* side.  Applies records
  **logically** through the engine (modify/delete/touch), never by
  replaying frames: replicas deliberately have independent RNG lineages,
  so their physical layouts diverge on every request and byte-level
  replay would be unsound.  Convergence is defined over the trusted
  *content* (page id → liveness + payload, see
  :meth:`~repro.core.database.PirDatabase.content_digest`), which is
  exactly what clients can observe.  Sequence tracking makes every
  record idempotent: a duplicate delivery (netchaos duplicate plans, a
  streamer retransmit after a lost ack) applies exactly once, and
  out-of-order arrivals wait in a pending buffer until the gap fills.

* :class:`Replicator` — one daemon thread per peer that streams the
  log over the ``net.framing`` REPL envelope.  Its handshake *is* the
  catch-up protocol: REPL_QUERY asks the peer how far it has applied
  this origin's stream, and streaming resumes from that point out of the
  log's backlog — which is also how a restarted backend converges
  (``load_snapshot`` + journal roll-forward locally, then backlog replay
  from each peer for everything it missed while down).

Trust boundary: the router and any network observer handle only sealed
record bodies; plaintext sequence numbers and origin addresses are the
only cleartext, and both are request-count/topology metadata the host
already has.  Apply-side conflict policy is last-writer-wins per page in
per-origin arrival order; concurrent inserts on *different* members can
collide on the deterministically chosen free page id, so deployments
keep a single writer per page (the drills write disjoint pages).

The backlog is bounded by :meth:`ReplicationLog.compact`: once a snapshot
covers a prefix of the stream (every peer either acked it or can be
re-imaged from the snapshot), the covered records are dropped from memory
and the durable ``repl-*.log`` file is atomically rewritten without them.
A peer that later asks for a compacted sequence gets a
:class:`~repro.errors.StorageError` instead of silent divergence — the
signal that it must bootstrap from the snapshot, not the stream.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.journal import RecordCursor
from ..errors import (
    ConfigurationError,
    PageNotFoundError,
    ProtocolError,
    ReproError,
    StorageError,
)
from ..net.framing import (
    ReplAck,
    ReplQuery,
    ReplRecord,
    ReplState,
    decode_net_message,
    encode_net_message,
    read_frame_sock,
    write_frame_sock,
)
from ..sim.metrics import CounterSet

__all__ = [
    "KIND_NOOP",
    "KIND_WRITE",
    "KIND_DELETE",
    "ReplicationRecord",
    "ReplicationLog",
    "ReplicationApplier",
    "Replicator",
    "encode_record",
    "decode_record",
    "record_size",
]

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

_MAGIC = b"RPL1"
_MAGIC_LEN = len(_MAGIC)

KIND_NOOP = 0
KIND_WRITE = 1
KIND_DELETE = 2

_KIND_BY_NAME = {"noop": KIND_NOOP, "write": KIND_WRITE, "delete": KIND_DELETE}

#: Durable backlog entry header: u64 sequence, u32 sealed-record length.
_BACKLOG_HEADER = struct.Struct(">QI")

_U16 = struct.Struct(">H")


@dataclass(frozen=True)
class ReplicationRecord:
    """One decoded logical operation from a replication stream."""

    seq: int
    kind: int
    page_id: int
    payload: bytes


def record_size(cop) -> int:
    """Plaintext size every record is padded to before sealing.

    Fixed per deployment (header + one max-size page payload), so sealed
    records are indistinguishable regardless of operation kind.
    """
    return _MAGIC_LEN + _U64.size + 1 + _U64.size + _U32.size + cop.page_capacity


def encode_record(cop, seq: int, kind: int, page_id: int, payload: bytes) -> bytes:
    """Encode, pad, and seal one replication record.

    The sequence number is bound *inside* the sealed body as well as sent
    in the plaintext envelope, so a host that splices record bodies onto
    other sequence numbers is detected at apply time.
    """
    if kind not in (KIND_NOOP, KIND_WRITE, KIND_DELETE):
        raise ConfigurationError(f"unknown replication record kind {kind}")
    limit = cop.page_capacity
    if len(payload) > limit:
        raise StorageError(
            f"replication payload of {len(payload)} bytes exceeds the "
            f"{limit}-byte page bound"
        )
    plain = b"".join([
        _MAGIC,
        _U64.pack(seq),
        bytes([kind]),
        _U64.pack(page_id),
        _U32.pack(len(payload)),
        payload,
    ])
    padded = plain + b"\x00" * (record_size(cop) - len(plain))
    return cop.seal_record(padded)


def decode_record(cop, sealed: bytes) -> ReplicationRecord:
    """Unseal and decode one replication record; rejects any tampering."""
    blob = cop.unseal_record(sealed)
    if bytes(blob[:_MAGIC_LEN]) != _MAGIC:
        raise StorageError("replication record has a bad magic number")
    cursor = RecordCursor(blob, offset=_MAGIC_LEN)
    seq = cursor.take(_U64)
    kind = cursor.take_byte()
    if kind not in (KIND_NOOP, KIND_WRITE, KIND_DELETE):
        raise StorageError(f"replication record has unknown kind {kind}")
    page_id = cursor.take(_U64)
    payload = cursor.take_bytes(cursor.take(_U32))
    padding = cursor.take_bytes(len(blob) - cursor.offset)
    if padding.strip(b"\x00"):
        raise StorageError("replication record has non-zero padding")
    return ReplicationRecord(seq, kind, page_id, payload)


class _PeerState:
    __slots__ = ("connected", "acked")

    def __init__(self) -> None:
        self.connected = False
        self.acked = 0


class ReplicationLog:
    """Origin-side sealed record stream with per-peer ack tracking.

    ``emit`` is called by the database on the serving worker thread and
    never blocks on the network; the server's event loop separately
    awaits :meth:`wait_replicated` before acknowledging a client, which
    is what makes an acknowledged write survive the origin's death
    (semi-synchronous replication).  Peers that are disconnected are not
    waited on — they catch up from the backlog when they return.
    """

    def __init__(
        self,
        cop,
        origin: str,
        cover_traffic: bool = True,
        path: Optional[str] = None,
        wait_timeout: float = 5.0,
        metrics=None,
    ):
        if not origin:
            raise ConfigurationError("replication origin must be non-empty")
        self.cop = cop
        self.origin = origin
        self.cover_traffic = cover_traffic
        self.wait_timeout = wait_timeout
        self.counters = CounterSet(registry=metrics, prefix="repl.log.")
        self._cond = threading.Condition()
        # Sequences 1.._base were compacted away; index i holds sequence
        # _base + i + 1.
        self._base = 0
        self._records: List[bytes] = []
        self._peers: Dict[str, _PeerState] = {}
        self._path = path
        self._file = None
        if path is not None:
            self._load(path)
            self._file = open(path, "ab")

    def _load(self, path: str) -> None:
        """Reload the durable backlog, discarding any torn tail.

        The file may start past sequence 1 (a previous :meth:`compact`
        rewrote it); the first record's header seq fixes the base.
        """
        if not os.path.exists(path):
            return
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset + _BACKLOG_HEADER.size <= len(data):
            seq, length = _BACKLOG_HEADER.unpack_from(data, offset)
            start = offset + _BACKLOG_HEADER.size
            if start + length > len(data):
                break  # torn tail: stop trusting the file
            if not self._records:
                self._base = seq - 1
            elif seq != self._base + len(self._records) + 1:
                break  # out-of-sequence tail
            self._records.append(data[start:start + length])
            offset = start + length
        if offset != len(data):
            with open(path, "r+b") as handle:
                handle.truncate(offset)

    @property
    def last_seq(self) -> int:
        with self._cond:
            return self._base + len(self._records)

    @property
    def compacted_seq(self) -> int:
        """Highest sequence dropped by compaction (0 = nothing dropped)."""
        with self._cond:
            return self._base

    def emit(self, kind: str, page_id: int = 0, payload: bytes = b"") -> int:
        """Seal and append one record; returns the sequence it received.

        A ``noop`` emit with cover traffic disabled appends nothing and
        returns the current high-water mark.
        """
        kind_code = _KIND_BY_NAME[kind]
        with self._cond:
            if kind_code == KIND_NOOP and not self.cover_traffic:
                return self._base + len(self._records)
            seq = self._base + len(self._records) + 1
            sealed = encode_record(self.cop, seq, kind_code, page_id, payload)
            if self._file is not None:
                self._file.write(_BACKLOG_HEADER.pack(seq, len(sealed)))
                self._file.write(sealed)
                self._file.flush()
            self._records.append(sealed)
            self.counters.increment("emitted")
            self._cond.notify_all()
            return seq

    # -- peer tracking -------------------------------------------------------

    def register_peer(self, address: str) -> None:
        with self._cond:
            self._peers.setdefault(address, _PeerState())

    def mark_connected(self, address: str) -> None:
        with self._cond:
            self._peers.setdefault(address, _PeerState()).connected = True
            self._cond.notify_all()

    def mark_disconnected(self, address: str) -> None:
        with self._cond:
            peer = self._peers.get(address)
            if peer is not None:
                peer.connected = False
            # Anyone blocked in wait_replicated must re-evaluate: a dead
            # peer is no longer waited on.
            self._cond.notify_all()

    def record_ack(self, address: str, seq: int) -> None:
        with self._cond:
            peer = self._peers.setdefault(address, _PeerState())
            if seq > peer.acked:
                peer.acked = seq
            self.counters.increment("acks")
            self._cond.notify_all()

    def peer_acked(self, address: str) -> int:
        with self._cond:
            peer = self._peers.get(address)
            return 0 if peer is None else peer.acked

    def connected_peers(self) -> List[str]:
        with self._cond:
            return [a for a, p in self._peers.items() if p.connected]

    # -- consumption ---------------------------------------------------------

    def _check_compacted(self, after_seq: int) -> None:
        """Lock held.  A consumer behind the compaction horizon cannot be
        served from the stream — it must re-image from the covering
        snapshot — and silently skipping records would diverge it."""
        if after_seq < self._base:
            self.counters.increment("too_stale")
            raise StorageError(
                f"replication backlog was compacted through seq {self._base}; "
                f"a peer at seq {after_seq} must bootstrap from the snapshot"
            )

    def next_record(self, after_seq: int, wait: float = 0.2) -> Optional[Tuple[int, bytes]]:
        """The record following ``after_seq``, or None after ``wait``."""
        with self._cond:
            self._check_compacted(after_seq)
            index = after_seq - self._base
            if len(self._records) <= index:
                self._cond.wait(wait)
                self._check_compacted(after_seq)
                index = after_seq - self._base
            if len(self._records) <= index:
                return None
            return after_seq + 1, self._records[index]

    def records_since(self, after_seq: int) -> List[Tuple[int, bytes]]:
        with self._cond:
            self._check_compacted(after_seq)
            return [
                (after_seq + 1 + index, sealed)
                for index, sealed in enumerate(
                    self._records[after_seq - self._base:]
                )
            ]

    # -- compaction ----------------------------------------------------------

    def compact(self, up_to_seq: int) -> int:
        """Drop records with seq <= ``up_to_seq``; returns how many.

        Call once a snapshot durably covers those sequences (e.g. after
        ``save_snapshot`` + a sealed applied-vector sidecar): the snapshot,
        not the stream, is then the catch-up path for anything older.  The
        durable backlog file is atomically rewritten without the dropped
        prefix, so a restart reloads only what memory holds.  Compacting
        past ``last_seq`` clamps; compacting below the current base is a
        no-op.
        """
        with self._cond:
            up_to_seq = min(up_to_seq, self._base + len(self._records))
            dropped = up_to_seq - self._base
            if dropped <= 0:
                return 0
            self._records = self._records[dropped:]
            self._base = up_to_seq
            if self._path is not None:
                if self._file is not None:
                    self._file.close()
                tmp = self._path + ".tmp"
                with open(tmp, "wb") as handle:
                    for index, sealed in enumerate(self._records):
                        handle.write(_BACKLOG_HEADER.pack(
                            self._base + index + 1, len(sealed)
                        ))
                        handle.write(sealed)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self._path)
                self._file = open(self._path, "ab")
            self.counters.increment("compacted", dropped)
            return dropped

    def wait_replicated(self, seq: int, timeout: Optional[float] = None) -> bool:
        """Block until every *connected* peer has acked ``seq``.

        Returns False on timeout (counted): the reply is still sent —
        the alternative is trading a latency blip for unavailability —
        but the router's read-your-writes gate keeps the session off any
        replica that has not caught up, so correctness degrades to
        "failover may have to wait", never to a stale read.
        """
        deadline = time.monotonic() + (
            self.wait_timeout if timeout is None else timeout
        )
        with self._cond:
            while True:
                lagging = [
                    address
                    for address, peer in self._peers.items()
                    if peer.connected and peer.acked < seq
                ]
                if not lagging:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.counters.increment("wait_timeouts")
                    return False
                self._cond.wait(remaining)

    def close(self) -> None:
        with self._cond:
            if self._file is not None:
                self._file.close()
                self._file = None
            self._cond.notify_all()


class ReplicationApplier:
    """Peer-side idempotent apply with per-origin sequence tracking.

    ``engine_lock`` serializes the raw engine calls against whoever
    else drives the engine — on a cluster backend, the frontend's
    serving worker (pass ``frontend.engine_lock``); the applier runs on
    the server's dedicated replication worker, never behind a serve.
    """

    def __init__(self, db, metrics=None, engine_lock=None):
        self.db = db
        self.counters = CounterSet(registry=metrics, prefix="repl.apply.")
        self.engine_lock = (engine_lock if engine_lock is not None
                            else threading.Lock())
        self._applied: Dict[str, int] = {}
        self._pending: Dict[str, Dict[int, bytes]] = {}
        self._lock = threading.Condition()

    def applied_for(self, origin: str) -> int:
        with self._lock:
            return self._applied.get(origin, 0)

    def wait_applied(self, origin: str, seq: int, timeout: float) -> bool:
        """Block until ``origin``'s stream is applied through ``seq``.

        The reply-cache dedupe gate: a member may only serve a cached
        acknowledgement once it has applied the write the ACK stands
        for.  Returns False on timeout (the origin is likely dead with
        the record unstreamed — the caller sheds instead of serving a
        stale ACK).
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._applied.get(origin, 0) < seq:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._lock.wait(remaining)
            return True

    def state(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._applied)

    def restore_state(self, state: Dict[str, int]) -> None:
        """Adopt a checkpointed applied-vector (snapshot sidecar restore)."""
        with self._lock:
            for origin, seq in state.items():
                if seq > self._applied.get(origin, 0):
                    self._applied[origin] = int(seq)
            self._lock.notify_all()

    def encode_state(self) -> bytes:
        """Serialise the applied-vector for a sealed snapshot sidecar."""
        with self._lock:
            parts = [_U32.pack(len(self._applied))]
            for origin in sorted(self._applied):
                encoded = origin.encode("utf-8")
                parts.append(_U16.pack(len(encoded)))
                parts.append(encoded)
                parts.append(_U64.pack(self._applied[origin]))
            return b"".join(parts)

    @staticmethod
    def decode_state(blob: bytes) -> Dict[str, int]:
        """Parse a blob from :meth:`encode_state` back into a vector."""
        cursor = RecordCursor(blob)
        state: Dict[str, int] = {}
        for _ in range(cursor.take(_U32)):
            origin = cursor.take_bytes(cursor.take(_U16)).decode("utf-8")
            state[origin] = cursor.take(_U64)
        cursor.expect_end("replication state blob")
        return state

    def apply(self, origin: str, seq: int, sealed: bytes) -> int:
        """Apply one record; returns the highest contiguous applied seq.

        Duplicates (``seq`` at or below the applied mark) are counted and
        skipped; gaps park the record in a pending buffer until the
        missing sequence arrives.  Apply errors advance the sequence
        anyway — wedging the whole stream on one poisoned record would
        turn a single bad write into full replica divergence.
        """
        with self._lock:
            applied = self._applied.get(origin, 0)
            if seq <= applied:
                self.counters.increment("duplicates")
                return applied
            pending = self._pending.setdefault(origin, {})
            pending[seq] = bytes(sealed)
            if seq > applied + 1:
                self.counters.increment("out_of_order")
            while applied + 1 in pending:
                blob = pending.pop(applied + 1)
                applied += 1
                self._apply_sealed(origin, applied, blob)
            self._applied[origin] = applied
            self._lock.notify_all()
            return applied

    def _apply_sealed(self, origin: str, seq: int, sealed: bytes) -> None:
        try:
            record = decode_record(self.db.cop, sealed)
            if record.seq != seq:
                raise StorageError(
                    f"replication record body claims seq {record.seq} "
                    f"but arrived as seq {seq}"
                )
            with self.engine_lock:
                self._apply_record(record)
        except ReproError:
            self.counters.increment("errors")
        else:
            self.counters.increment("applied")

    def _apply_record(self, record: ReplicationRecord) -> None:
        # Engine-direct calls: the database-level emit hook must not see
        # replicated applies, or every record would re-broadcast forever.
        engine = self.db.engine
        if record.kind == KIND_WRITE:
            # modify() revives deleted/reserve-range pages, which is what
            # makes a replicated *insert* (write at the origin's chosen
            # free id) apply correctly here too.
            engine.modify(record.page_id, record.payload)
        elif record.kind == KIND_DELETE:
            try:
                engine.delete(record.page_id)
            except PageNotFoundError:
                # Already deleted here (e.g. snapshot raced the stream):
                # burn an identical-trace request anyway so the apply
                # pattern stays indistinguishable.
                engine.touch()
        else:
            engine.touch()


class Replicator(threading.Thread):
    """Streams one origin log to one peer, reconnecting forever.

    The REPL_QUERY handshake doubles as catch-up: the peer answers with
    its applied sequence for this origin and streaming resumes from the
    backlog at that point, so a peer that was down (or a streamer that
    lost its socket mid-record) converges without any extra protocol.
    """

    def __init__(
        self,
        log: ReplicationLog,
        peer_address: str,
        connect_timeout: float = 2.0,
        retry_interval: float = 0.2,
        io_timeout: float = 5.0,
    ):
        super().__init__(daemon=True, name=f"replicator→{peer_address}")
        self.log = log
        self.peer_address = peer_address
        self.connect_timeout = connect_timeout
        self.retry_interval = retry_interval
        self.io_timeout = io_timeout
        self._stop_event = threading.Event()
        self._sock: Optional[socket.socket] = None
        log.register_peer(peer_address)

    def stop(self, join_timeout: float = 5.0) -> None:
        self._stop_event.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if self.is_alive():
            self.join(join_timeout)
        self.log.mark_disconnected(self.peer_address)

    def run(self) -> None:
        while not self._stop_event.is_set():
            try:
                self._stream_once()
            except (OSError, ReproError):
                pass
            finally:
                self.log.mark_disconnected(self.peer_address)
                sock, self._sock = self._sock, None
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            if not self._stop_event.is_set():
                self._stop_event.wait(self.retry_interval)

    def _stream_once(self) -> None:
        host, _, port = self.peer_address.rpartition(":")
        sock = socket.create_connection(
            (host, int(port)), timeout=self.connect_timeout
        )
        self._sock = sock
        sock.settimeout(self.io_timeout)
        write_frame_sock(sock, encode_net_message(ReplQuery(self.log.origin)))
        answer = decode_net_message(read_frame_sock(sock))
        if not isinstance(answer, ReplState) or answer.origin != self.log.origin:
            raise ProtocolError(
                f"replication handshake expected REPL_STATE for "
                f"{self.log.origin!r}, got {type(answer).__name__}"
            )
        acked = answer.applied
        self.log.record_ack(self.peer_address, acked)
        self.log.mark_connected(self.peer_address)
        while not self._stop_event.is_set():
            item = self.log.next_record(acked)
            if item is None:
                continue
            seq, sealed = item
            write_frame_sock(
                sock, encode_net_message(ReplRecord(self.log.origin, seq, sealed))
            )
            reply = decode_net_message(read_frame_sock(sock))
            if not isinstance(reply, ReplAck) or reply.origin != self.log.origin:
                raise ProtocolError("replication stream expected REPL_ACK")
            if reply.seq >= seq:
                acked = reply.seq
                self.log.record_ack(self.peer_address, acked)
            else:
                # Receiver backpressure (apply queue full / draining):
                # back off and retransmit — sequence tracking makes the
                # retransmission idempotent.
                self._stop_event.wait(0.05)
