"""The stateless session router in front of N backend servers.

Speaks the :mod:`repro.net.framing` envelope on both faces.  A client
connects exactly as it would to a single :class:`~repro.net.server
.PirServer` — HELLO, WELCOME, sealed REQUEST/REPLY — and the router
pins its session to one backend, relaying frames verbatim.  Sealed
bytes are never opened: the router sits *outside* the tamper boundary
and learns only what the host server already learns (who talks, when,
how much).

Failure handling, in order of escalation:

* **Probing** — a background task per backend keeps a PING connection
  open and feeds :class:`~repro.cluster.membership.ClusterMembership`;
  ejected members receive no sessions until readmitted.
* **Failover** — when a relay hits a transport error (backend died) or
  a drain-shed from a member whose PONG says ``draining``, the router
  re-establishes the session on another member via RESUME (backends run
  with ``adopt_sessions=True`` — the session suite derives from the id,
  so any replica can serve it) and retransmits the identical sealed
  request.  The reply cache turns an already-applied request into its
  original reply, so the client sees one answer, applied once — it
  never learns a failover happened.
* **Give-up** — with no routable member left, the client gets a
  retryable envelope refusal, never a silent drop.

Exactly-once across failover requires the backends to share reply-cache
visibility (one :class:`~repro.service.frontend.SealedReplyCache` for
in-process deployments, a persistent cache per store for restarts); see
DESIGN.md §13 for the argument and its limits.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional, Sequence, Set

from .membership import BackendSpec, ClusterMembership
from ..errors import ConfigurationError, ProtocolError, TransientChannelError
from ..net.admission import SHED_CODE
from ..net.framing import (
    Bye,
    Hello,
    NetRefused,
    Ping,
    Pong,
    ReplQuery,
    ReplState,
    Reply,
    Request,
    Resume,
    Welcome,
    decode_net_message,
    encode_net_message,
    read_frame_async,
    write_frame_async,
)
from ..service import protocol
from ..sim.metrics import CounterSet

__all__ = ["ClusterRouter", "RouterThread"]


class _Upstream:
    """One live router→backend connection carrying one pinned session."""

    def __init__(self, address: str, reader, writer):
        self.address = address
        self.reader = reader
        self.writer = writer

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class ClusterRouter:
    """Routes envelope sessions across backends; see module docstring.

    Construct, then ``await start()`` on a running loop (or use
    :class:`RouterThread` from synchronous code).  ``backend_timeout``
    bounds how long a relayed request may wait on a backend before the
    router treats the backend as wedged and fails the session over —
    a hung process is as dead as a crashed one.
    """

    def __init__(
        self,
        backends: Sequence[BackendSpec],
        host: str = "127.0.0.1",
        port: int = 0,
        probe_interval: float = 0.2,
        probe_timeout: float = 2.0,
        eject_after: int = 3,
        readmit_after: int = 2,
        connect_timeout: float = 2.0,
        backend_timeout: float = 30.0,
        ryw_timeout: float = 5.0,
        metrics=None,
    ):
        if probe_interval <= 0 or probe_timeout <= 0:
            raise ConfigurationError("probe interval/timeout must be positive")
        if connect_timeout <= 0 or backend_timeout <= 0:
            raise ConfigurationError(
                "connect/backend timeouts must be positive"
            )
        if ryw_timeout <= 0:
            raise ConfigurationError("ryw_timeout must be positive")
        self.host = host
        self.port = port
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.connect_timeout = connect_timeout
        self.backend_timeout = backend_timeout
        self.ryw_timeout = ryw_timeout
        self.membership = ClusterMembership(
            backends, eject_after=eject_after, readmit_after=readmit_after,
            metrics=metrics,
        )
        self.counters = CounterSet(registry=metrics, prefix="cluster.")
        # session id -> backend address: lets a RESUME from a reconnecting
        # client land on the member already serving its session.
        self._pins: Dict[int, str] = {}
        # session id -> {origin address -> highest acked write sequence}:
        # the read-your-writes watermark, learned from the repl_seq each
        # REPLY carries.  Failover targets must have applied every origin
        # past these marks before they may adopt the session.
        self._watermarks: Dict[int, Dict[str, int]] = {}
        # Serializes (re-)adoption per session id: two concurrent RESUMEs
        # for one session must never be adopted by different replicas.
        self._adoption_locks: Dict[int, asyncio.Lock] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._probe_tasks: list = []
        self._conn_tasks: Set[asyncio.Task] = set()
        self._client_writers: Set = set()
        self._draining = False
        self._stopping = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ConfigurationError("router already started")
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for state in self.membership.members:
            self._probe_tasks.append(
                loop.create_task(self._probe_loop(state.address))
            )

    async def stop(self) -> None:
        # Cooperative flag first: pre-3.12 asyncio.wait_for can swallow a
        # cancellation that races with the inner await completing
        # (python/cpython#86296), leaving a zombie loop that a bare
        # cancel-and-gather would wait on forever.  The loops re-check
        # the flag every iteration, so they exit even when the
        # CancelledError is lost.
        self._stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            self._server = None
        for task in self._probe_tasks:
            task.cancel()
        if self._probe_tasks:
            await asyncio.gather(*self._probe_tasks, return_exceptions=True)
        self._probe_tasks = []
        for task in list(self._conn_tasks):
            task.cancel()
        # Closing the client transports unblocks any handler whose lost
        # cancellation left it parked on a client read.
        for writer in list(self._client_writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    # -- health probing --------------------------------------------------------

    async def _probe_loop(self, address: str) -> None:
        """Ping one backend forever; one persistent probe connection,
        re-dialled after any failure."""
        state = self.membership.member(address)
        reader = writer = None
        try:
            while not self._stopping:
                try:
                    if writer is None:
                        reader, writer = await asyncio.wait_for(
                            asyncio.open_connection(state.spec.host,
                                                    state.spec.port),
                            timeout=self.connect_timeout,
                        )
                    await write_frame_async(writer,
                                            encode_net_message(Ping()))
                    pong = decode_net_message(await asyncio.wait_for(
                        read_frame_async(reader), timeout=self.probe_timeout,
                    ))
                    if not isinstance(pong, Pong):
                        raise ProtocolError(
                            f"probe answered with {type(pong).__name__}"
                        )
                    self.membership.record_probe_ok(
                        address, pong.draining, pong.sessions
                    )
                except (OSError, asyncio.TimeoutError,
                        TransientChannelError, ProtocolError):
                    if writer is not None:
                        writer.close()
                        reader = writer = None
                    self.membership.record_probe_failure(address)
                await asyncio.sleep(self.probe_interval)
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    # -- backend connections ---------------------------------------------------

    async def _dial(self, address: str):
        state = self.membership.member(address)
        return await asyncio.wait_for(
            asyncio.open_connection(state.spec.host, state.spec.port),
            timeout=self.connect_timeout,
        )

    async def _open_new_session(self, hello: Hello):
        """Forward a HELLO to the best member; returns (upstream, welcome)
        or (None, refusal_message)."""
        tried: Set[str] = set()
        last_refusal = None
        while True:
            state = self.membership.pick(exclude=tried)
            if state is None:
                return None, (last_refusal or self._no_members_refusal())
            tried.add(state.address)
            # Reserve the load slot *before* awaiting the dial, or N
            # clients arriving together all pick the same least-loaded
            # member.  Released again on every non-Welcome outcome.
            self.membership.pin(state.address)
            try:
                reader, writer = await self._dial(state.address)
                await write_frame_async(writer, encode_net_message(hello))
                answer = decode_net_message(await asyncio.wait_for(
                    read_frame_async(reader), timeout=self.backend_timeout,
                ))
            except (OSError, asyncio.TimeoutError, TransientChannelError):
                self.membership.unpin(state.address)
                self.membership.mark_down(state.address)
                continue
            if isinstance(answer, Welcome):
                return _Upstream(state.address, reader, writer), answer
            self.membership.unpin(state.address)
            writer.close()
            if isinstance(answer, NetRefused):
                # A shed (drain or admission) means "not me, maybe a
                # peer" — try the next member; the client only sees the
                # refusal when every member shed.  Refusing a refused
                # request is always safe to retry elsewhere: it mutated
                # nothing.
                if answer.refusal.code == SHED_CODE:
                    last_refusal = answer
                    continue
                return None, answer
            raise ProtocolError(
                f"backend handshake answered {type(answer).__name__}"
            )

    async def _resume_session(self, session_id: int,
                              exclude: Sequence[str] = ()):
        """(Re-)establish ``session_id`` on a member via RESUME.

        Prefers the member the session is pinned to; otherwise — failover
        — the least-loaded routable member, which *adopts* the session.
        Returns (upstream, None) or (None, refusal_message).

        Adoption is serialized per session id: two RESUMEs racing for one
        session (client retries during a network partition) must not be
        adopted by different replicas, or each would see only half the
        session's writes.  The second RESUME waits here and then lands on
        whatever member the first one pinned.

        Failover targets are additionally held to the session's
        read-your-writes watermark: a replica may only adopt once it has
        applied every origin's replication stream past the session's last
        acknowledged write (:meth:`_backend_caught_up`).  The router
        waits up to ``ryw_timeout`` per candidate, then tries another.
        """
        lock = self._adoption_locks.setdefault(session_id, asyncio.Lock())
        async with lock:
            return await self._resume_session_locked(session_id, exclude)

    async def _resume_session_locked(self, session_id: int,
                                     exclude: Sequence[str] = ()):
        tried: Set[str] = set(exclude)
        pinned = self._pins.get(session_id)
        while True:
            state = None
            if (pinned is not None and pinned not in tried):
                candidate = self.membership.member(pinned)
                if candidate.routable:
                    state = candidate
            if state is None:
                state = self.membership.pick(exclude=tried)
            if state is None:
                return None, self._no_members_refusal()
            tried.add(state.address)
            self.membership.pin(state.address)  # reserve; see _open_new_session
            needs = {
                origin: seq
                for origin, seq in self._watermarks.get(session_id,
                                                        {}).items()
                if origin != state.address and seq > 0
            }
            if needs:
                self.counters.increment("ryw.checks")
                if not await self._backend_caught_up(state, needs):
                    # Never adopt a session onto a replica that lags the
                    # session's acknowledged writes — a stale read would
                    # be silent data loss from the client's view.
                    self.counters.increment("ryw.rejected")
                    self.membership.unpin(state.address)
                    continue
            try:
                reader, writer = await self._dial(state.address)
                await write_frame_async(
                    writer, encode_net_message(Resume(session_id))
                )
                answer = decode_net_message(await asyncio.wait_for(
                    read_frame_async(reader), timeout=self.backend_timeout,
                ))
            except (OSError, asyncio.TimeoutError, TransientChannelError):
                self.membership.unpin(state.address)
                self.membership.mark_down(state.address)
                continue
            if isinstance(answer, Welcome):
                if answer.session_id != session_id:
                    self.membership.unpin(state.address)
                    writer.close()
                    raise ProtocolError(
                        f"backend resumed session {answer.session_id} "
                        f"!= {session_id}"
                    )
                if state.address != pinned:
                    self.counters.increment("failovers")
                self._record_pin(session_id, state.address)
                return _Upstream(state.address, reader, writer), None
            self.membership.unpin(state.address)
            writer.close()
            if isinstance(answer, NetRefused):
                if answer.refusal.code == SHED_CODE:
                    continue  # shedding member; try a peer
                return None, answer
            raise ProtocolError(
                f"backend resume answered {type(answer).__name__}"
            )

    async def _backend_caught_up(self, state, needs: Dict[str, int]) -> bool:
        """Poll ``state`` until it has applied every origin past ``needs``.

        Opens a replication-query connection to the candidate and asks
        for its applied high-water mark per origin (the same REPL_QUERY
        the backends use for their catch-up handshake — the router sends
        and reads only plaintext metadata, never sealed record contents).
        Returns True once every origin's mark reaches the session's
        watermark, False after ``ryw_timeout`` or on any transport or
        protocol failure (a candidate without replication enabled answers
        with a refusal and is simply rejected).
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.ryw_timeout
        try:
            reader, writer = await self._dial(state.address)
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            while True:
                caught_up = True
                for origin, needed in needs.items():
                    await write_frame_async(
                        writer, encode_net_message(ReplQuery(origin))
                    )
                    answer = decode_net_message(await asyncio.wait_for(
                        read_frame_async(reader),
                        timeout=self.probe_timeout,
                    ))
                    if not isinstance(answer, ReplState):
                        return False
                    self.membership.record_repl_state(
                        state.address, origin, answer.applied
                    )
                    if answer.applied < needed:
                        caught_up = False
                if caught_up:
                    return True
                if loop.time() >= deadline:
                    return False
                await asyncio.sleep(0.02)
        except (OSError, asyncio.TimeoutError, TransientChannelError,
                ProtocolError):
            return False
        finally:
            writer.close()

    def _record_pin(self, session_id: int, address: str) -> None:
        """Point the session at ``address``, whose load slot the caller
        already reserved via ``membership.pin``; releases the previous
        member's slot (also when it *is* ``address`` — the reservation
        double-counted it)."""
        previous = self._pins.get(session_id)
        if previous is not None:
            self.membership.unpin(previous)
        self._pins[session_id] = address

    def _unpin(self, session_id: int) -> None:
        previous = self._pins.pop(session_id, None)
        if previous is not None:
            self.membership.unpin(previous)
        self._watermarks.pop(session_id, None)
        self._adoption_locks.pop(session_id, None)

    def _no_members_refusal(self) -> NetRefused:
        self.counters.increment("refused.no_members")
        return NetRefused(0, protocol.Refused(
            "no healthy cluster member", SHED_CODE, 0.5,
        ))

    # -- client connections ----------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._client_writers.add(writer)
        self.counters.increment("connections")
        upstream: Optional[_Upstream] = None
        session_id: Optional[int] = None
        try:
            first = decode_net_message(await read_frame_async(reader))
            if isinstance(first, Ping):
                await self._client_probe_loop(reader, writer, first)
                return
            if isinstance(first, Hello):
                if self._draining:
                    await self._send(writer, self._no_members_refusal())
                    return
                upstream, answer = await self._open_new_session(first)
                if upstream is None:
                    await self._send(writer, answer)
                    return
                session_id = answer.session_id
                if session_id in self._pins:
                    # Two members issued the same id — misconfigured
                    # same-seed frontends without distinct session salts.
                    # The id doubles as the key-agreement input, so two
                    # clients must never share one: tear down the
                    # duplicate and shed the client, whose retried HELLO
                    # draws the member's next (non-colliding) id.
                    self.counters.increment("session_collisions")
                    self.membership.unpin(upstream.address)
                    await self._close_session(upstream, None)
                    upstream = None
                    await self._send(writer, NetRefused(0, protocol.Refused(
                        f"session id {session_id} collides across "
                        f"members; retry", SHED_CODE, 0.05,
                    )))
                    return
                self._record_pin(session_id, upstream.address)
                self.counters.increment("sessions.routed")
                await self._send(writer, answer)
            elif isinstance(first, Resume):
                upstream, refusal = await self._resume_session(
                    first.session_id
                )
                if upstream is None:
                    await self._send(writer, refusal)
                    return
                session_id = first.session_id
                await self._send(writer, Welcome(session_id))
            else:
                await self._send(writer, NetRefused(0, protocol.Refused(
                    f"unexpected {type(first).__name__} frame",
                    "protocol", -1.0,
                )))
                return

            while not self._stopping:
                message = decode_net_message(await read_frame_async(reader))
                if isinstance(message, Bye):
                    await self._close_session(upstream, session_id)
                    upstream = None
                    break
                if not isinstance(message, Request):
                    await self._send(writer, NetRefused(0, protocol.Refused(
                        f"unexpected {type(message).__name__} frame",
                        "protocol", -1.0,
                    )))
                    break
                self.counters.increment("requests")
                upstream, reply = await self._relay(upstream, session_id,
                                                    message)
                await self._send(writer, reply)
        except (TransientChannelError, ConnectionError, OSError):
            pass  # client went away; the session stays pinned for RESUME
        except ProtocolError as exc:
            await self._send(
                writer,
                NetRefused(0, protocol.Refused(str(exc), "protocol", -1.0)),
                best_effort=True,
            )
        except asyncio.CancelledError:
            pass
        finally:
            if upstream is not None:
                upstream.close()
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            self._client_writers.discard(writer)
            self._conn_tasks.discard(task)

    async def _relay(self, upstream: Optional[_Upstream], session_id: int,
                     request: Request):
        """One request round trip with failover.

        Returns ``(upstream, reply_message)`` — the upstream may have
        been replaced by a failover.  Retransmits the *identical* sealed
        request after every re-establishment; duplicate application is
        impossible wherever the backends share reply-cache visibility.
        """
        body = encode_net_message(request)
        tried: Set[str] = set()
        while True:
            if upstream is None:
                upstream, refusal = await self._resume_session(
                    session_id, exclude=tried
                )
                if upstream is None:
                    return None, self._with_request_id(refusal, request)
                self.counters.increment("retransmits")
            tried.add(upstream.address)
            try:
                await write_frame_async(upstream.writer, body)
                answer = decode_net_message(await asyncio.wait_for(
                    read_frame_async(upstream.reader),
                    timeout=self.backend_timeout,
                ))
            except (OSError, asyncio.TimeoutError, TransientChannelError):
                self.membership.mark_down(upstream.address)
                upstream.close()
                upstream = None
                continue
            if isinstance(answer, Reply):
                if answer.repl_seq > 0:
                    # Remember the highest replication sequence this
                    # session has seen acknowledged per origin backend —
                    # the read-your-writes watermark failover targets
                    # must reach before they may adopt the session.
                    marks = self._watermarks.setdefault(session_id, {})
                    if answer.repl_seq > marks.get(upstream.address, 0):
                        marks[upstream.address] = answer.repl_seq
                # The watermark is router-internal routing state; the
                # client gets the plain reply.
                return upstream, Reply(answer.request_id, answer.sealed)
            if isinstance(answer, NetRefused):
                if answer.refusal.code == SHED_CODE:
                    # Rolling restart or overload: the member shed the
                    # request, so it mutated nothing — move the session
                    # to a peer and retransmit there.
                    upstream.close()
                    upstream = None
                    continue
                return upstream, answer
            raise ProtocolError(
                f"backend answered {type(answer).__name__} to a request"
            )

    @staticmethod
    def _with_request_id(refusal: NetRefused, request: Request) -> NetRefused:
        if refusal.request_id == request.request_id:
            return refusal
        return NetRefused(request.request_id, refusal.refusal)

    async def _close_session(self, upstream: Optional[_Upstream],
                             session_id: Optional[int]) -> None:
        if session_id is not None:
            self._unpin(session_id)
        if upstream is not None:
            try:
                await write_frame_async(upstream.writer,
                                        encode_net_message(Bye()))
            except (TransientChannelError, ConnectionError, OSError):
                pass
            upstream.close()

    async def _client_probe_loop(self, reader, writer, first) -> None:
        """The router answers PINGs itself (ops checks, chained tiers)."""
        message = first
        while not self._stopping:
            if not isinstance(message, Ping):
                raise ProtocolError(
                    f"probe connection sent {type(message).__name__}"
                )
            await self._send(
                writer, Pong(self._draining, len(self._pins))
            )
            message = decode_net_message(await read_frame_async(reader))

    async def _send(self, writer, message, best_effort: bool = False) -> None:
        try:
            await write_frame_async(writer, encode_net_message(message))
        except (TransientChannelError, ConnectionError, OSError):
            if not best_effort:
                raise TransientChannelError("client went away mid-reply")


class RouterThread:
    """Runs a :class:`ClusterRouter` event loop on a background thread.

    The cluster mirror of :class:`~repro.net.server.ServerThread`::

        with RouterThread(ClusterRouter(specs)) as handle:
            client = NetworkClient(handle.host, handle.port)
    """

    def __init__(self, router: ClusterRouter):
        self.router = router
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    def start(self) -> "RouterThread":
        if self._thread is not None:
            raise ConfigurationError("router thread already started")
        self._thread = threading.Thread(
            target=self._run, name="pir-router", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.router.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.router.stop(), self._loop
            )
            future.result(timeout=timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
