"""Health-gated cluster membership (DESIGN.md §13).

The router holds one :class:`MemberState` per configured backend and
feeds it two signals: the outcome of periodic PING/PONG probes, and hard
transport failures observed while relaying live traffic.  Membership
policy is deliberately simple and hysteretic:

* a member is **ejected** (``up=False``) after ``eject_after``
  consecutive probe failures — one dropped packet must not evict a
  healthy backend;
* an ejected member is **readmitted** after ``readmit_after``
  consecutive probe successes — a backend that flaps mid-restart must
  not receive sessions until it stays up;
* a hard failure during serving (connection refused, reset mid-relay)
  marks the member down *immediately*: the router just lost a request on
  it, which is stronger evidence than any probe.

``draining`` (reported by the backend in its PONG) is a separate axis
from ``up``: a draining member is healthy but being rolled, so it keeps
its in-flight work yet receives no new or failed-over sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..sim.metrics import CounterSet

__all__ = ["BackendSpec", "MemberState", "ClusterMembership"]


@dataclass(frozen=True)
class BackendSpec:
    """Address of one backend server."""

    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "BackendSpec":
        """``host:port`` → spec (the CLI's ``--backend`` format)."""
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"backend spec {text!r} is not host:port"
            )
        try:
            return cls(host, int(port))
        except ValueError as exc:
            raise ConfigurationError(
                f"backend spec {text!r} has a non-numeric port"
            ) from exc


class MemberState:
    """Mutable health + load record for one backend."""

    def __init__(self, spec: BackendSpec):
        self.spec = spec
        self.up = True
        self.draining = False
        #: Open-session count from the member's last PONG.
        self.reported_sessions = 0
        #: Sessions the router currently pins to this member.
        self.pinned = 0
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        #: Replication catch-up as last observed by the router:
        #: peer origin address -> highest applied sequence this member
        #: reported (see the read-your-writes gate in the router).
        self.repl_applied: Dict[str, int] = {}

    @property
    def address(self) -> str:
        return self.spec.address

    @property
    def routable(self) -> bool:
        return self.up and not self.draining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "up" if self.up else "down"
        if self.draining:
            flags += ",draining"
        return f"MemberState({self.address}, {flags}, pinned={self.pinned})"


class ClusterMembership:
    """The router's view of which backends may receive traffic.

    Single-threaded by design: every mutation happens on the router's
    event loop.  Tests may *read* states from other threads (plain
    attribute loads).
    """

    def __init__(
        self,
        specs: Sequence[BackendSpec],
        eject_after: int = 3,
        readmit_after: int = 2,
        metrics=None,
    ):
        if not specs:
            raise ConfigurationError("a cluster needs at least one backend")
        if len({spec.address for spec in specs}) != len(specs):
            raise ConfigurationError("duplicate backend address in cluster")
        if eject_after < 1 or readmit_after < 1:
            raise ConfigurationError(
                "eject_after and readmit_after must be positive"
            )
        self.eject_after = eject_after
        self.readmit_after = readmit_after
        self._members: Dict[str, MemberState] = {
            spec.address: MemberState(spec) for spec in specs
        }
        self.counters = CounterSet(registry=metrics, prefix="cluster.")
        self._up_gauge = (
            metrics.gauge("cluster.members.up") if metrics is not None
            else None
        )
        self._total_gauge = (
            metrics.gauge("cluster.members.total") if metrics is not None
            else None
        )
        if self._total_gauge is not None:
            self._total_gauge.set(len(self._members))
        self._publish()

    # -- views -----------------------------------------------------------------

    @property
    def members(self) -> List[MemberState]:
        return list(self._members.values())

    def member(self, address: str) -> MemberState:
        return self._members[address]

    @property
    def up_count(self) -> int:
        return sum(1 for state in self._members.values() if state.up)

    @property
    def at_full_strength(self) -> bool:
        return all(state.up and not state.draining
                   for state in self._members.values())

    def pick(self, exclude: Iterable[str] = ()) -> Optional[MemberState]:
        """Least-loaded routable member, or None when the cluster is bare.

        Load is the router's own pinned-session count (authoritative for
        traffic *this* router sends) with the member's last self-reported
        count as a tiebreaker (covers sessions pinned by other routers).
        """
        excluded = set(exclude)
        candidates = [
            state for state in self._members.values()
            if state.routable and state.address not in excluded
        ]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda s: (s.pinned, s.reported_sessions))

    # -- probe + traffic signals -----------------------------------------------

    def record_probe_ok(self, address: str, draining: bool,
                        sessions: int) -> None:
        state = self._members[address]
        state.draining = draining
        state.reported_sessions = sessions
        state.consecutive_failures = 0
        state.consecutive_successes += 1
        self.counters.increment("probe.ok")
        if not state.up and state.consecutive_successes >= self.readmit_after:
            state.up = True
            self.counters.increment("readmit")
            self._publish()

    def record_probe_failure(self, address: str) -> None:
        state = self._members[address]
        state.consecutive_successes = 0
        state.consecutive_failures += 1
        self.counters.increment("probe.fail")
        if state.up and state.consecutive_failures >= self.eject_after:
            self._eject(state)

    def record_repl_state(self, address: str, origin: str,
                          applied: int) -> None:
        """Note that ``address`` reported applying ``origin``'s stream up
        to ``applied`` (fed by the router's read-your-writes probes;
        monotonic max-merge, stale answers never regress the view)."""
        state = self._members[address]
        if applied > state.repl_applied.get(origin, 0):
            state.repl_applied[origin] = applied

    def mark_down(self, address: str) -> None:
        """Immediate ejection on a hard serving failure (no hysteresis)."""
        state = self._members[address]
        state.consecutive_successes = 0
        state.consecutive_failures = max(state.consecutive_failures,
                                         self.eject_after)
        if state.up:
            self._eject(state)

    def _eject(self, state: MemberState) -> None:
        state.up = False
        self.counters.increment("eject")
        self._publish()

    # -- pinning ---------------------------------------------------------------

    def pin(self, address: str) -> None:
        self._members[address].pinned += 1

    def unpin(self, address: str) -> None:
        state = self._members[address]
        if state.pinned > 0:
            state.pinned -= 1

    def _publish(self) -> None:
        if self._up_gauge is not None:
            self._up_gauge.set(self.up_count)
