"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available;
nothing in the library raises bare ``Exception`` or ``ValueError`` for
conditions a caller is expected to handle.

Hierarchy::

    ReproError
    ├── ConfigurationError        invalid parameter combination
    ├── CryptoError               cryptographic operation failed
    │   └── AuthenticationError   MAC / freshness verification failed
    ├── StorageError              untrusted page store rejected an operation
    │   ├── PageNotFoundError     logical page id does not exist
    │   │   └── PageDeletedError  page exists but is marked deleted
    │   └── TransientStorageError I/O fault expected to succeed on retry
    ├── CapacityError             fixed-capacity structure is full
    ├── ProtocolError             two-party / client protocol violation
    │   └── TransientChannelError message lost or timed out; retryable
    │       └── NetTimeoutError   socket deadline expired (connect or read)
    ├── RecoveryError             crash recovery cannot restore consistency
    ├── DegradedServiceError      service refusing work in a degraded state
    └── IndexError_               paged index structure inconsistency

Transient errors (``TransientStorageError``, ``TransientChannelError``) are
the retry layer's contract: anything else raised by storage or the channel
is treated as permanent and propagates immediately.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid or violates a model constraint.

    Examples: ``c <= 1``, cache larger than the database, or a database too
    small for the rejection-sampling loop of the retrieval algorithm to
    terminate (requires ``n > m + k + 1``).
    """


class PlanInfeasibleError(ConfigurationError):
    """No parameter assignment satisfies a capacity-planning target.

    ``constraint`` names the binding constraint so callers (and the CLI)
    can report *which* target to relax: ``"latency"`` (the p99 bound is
    below what any block size can deliver), ``"privacy"`` (the privacy
    target is outside the scheme's tunable range), ``"secure_memory"``
    (the cache required by the privacy/latency pair exceeds the secure
    hardware's memory), or ``"throughput"`` (the QPS target exceeds the
    maximum shard fan-out's capacity).
    """

    def __init__(self, message: str, constraint: str = "unspecified"):
        super().__init__(message)
        self.constraint = constraint


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key size, nonce misuse, ...)."""


class AuthenticationError(CryptoError):
    """A ciphertext failed MAC verification.

    Raised when a page read back from the untrusted server does not
    authenticate under the coprocessor's key — per the threat model the
    server is honest-but-curious, so in a healthy deployment this indicates
    corruption rather than attack, but we surface it either way.
    """


class StorageError(ReproError):
    """The untrusted page store rejected an operation (bad location, size)."""


class PageNotFoundError(StorageError):
    """A logical page id does not exist in the database."""


class PageDeletedError(PageNotFoundError):
    """The requested logical page exists in the map but is marked deleted."""


class TransientStorageError(StorageError):
    """A disk operation failed in a way that is expected to clear on retry.

    Models the recoverable half of real storage failure modes — a timed-out
    SCSI command, a dropped DMA transfer, an EINTR'd ``pread`` — as opposed
    to the hard rejections :class:`StorageError` covers (bad location,
    wrong frame size).  The engine's and client's retry layers only ever
    retry on this class (plus :class:`AuthenticationError` for bounded
    re-reads); everything else is permanent.
    """


class CapacityError(ReproError):
    """A fixed-capacity structure (cache, secure memory, block) is full."""


class ProtocolError(ReproError):
    """Two-party protocol violation: unexpected message type or framing."""


class TransientChannelError(ProtocolError):
    """A network message was lost, duplicated away, or timed out.

    The channel-level analogue of :class:`TransientStorageError`: the
    request may be retried safely because every retrieval request is
    self-contained (the engine's round-robin pointer only advances once
    the request commits).
    """


class NetTimeoutError(TransientChannelError):
    """A network socket deadline expired (connect or read).

    Distinguishes "the peer is slow or gone" from the other transient
    channel failures (reset, closed mid-frame), so callers can configure
    connect and read deadlines separately and react differently — a
    connect timeout usually means the host is down (try another member),
    a read timeout usually means the request is lost in flight (reconnect
    and retransmit the identical sealed bytes so the reply cache dedupes).
    """


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent state.

    Raised by :meth:`repro.core.engine.RetrievalEngine.recover` when the
    intent journal and the trusted state disagree in a way roll-forward
    cannot fix — e.g. the journal describes a request *later* than the one
    the restored trusted state is expecting, meaning the snapshot predates
    the journal and the write-back cannot be replayed safely.
    """


class DegradedServiceError(ReproError):
    """The service is refusing work because it is in a degraded/failed state.

    Carried to clients as a :class:`repro.service.protocol.Refused` reply
    whose ``retry_after`` hint tells them when to try again; raised locally
    by :class:`repro.service.frontend.ServiceClient` once its retry budget
    is exhausted.  ``retry_after`` is the suggested wait in (virtual)
    seconds; ``0.0`` means "immediately retryable".
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class IndexError_(ReproError):
    """A paged index structure (B+-tree, grid) detected an inconsistency."""
