"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available;
nothing in the library raises bare ``Exception`` or ``ValueError`` for
conditions a caller is expected to handle.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid or violates a model constraint.

    Examples: ``c <= 1``, cache larger than the database, or a database too
    small for the rejection-sampling loop of the retrieval algorithm to
    terminate (requires ``n > m + k + 1``).
    """


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key size, nonce misuse, ...)."""


class AuthenticationError(CryptoError):
    """A ciphertext failed MAC verification.

    Raised when a page read back from the untrusted server does not
    authenticate under the coprocessor's key — per the threat model the
    server is honest-but-curious, so in a healthy deployment this indicates
    corruption rather than attack, but we surface it either way.
    """


class StorageError(ReproError):
    """The untrusted page store rejected an operation (bad location, size)."""


class PageNotFoundError(StorageError):
    """A logical page id does not exist in the database."""


class PageDeletedError(PageNotFoundError):
    """The requested logical page exists in the map but is marked deleted."""


class CapacityError(ReproError):
    """A fixed-capacity structure (cache, secure memory, block) is full."""


class ProtocolError(ReproError):
    """Two-party protocol violation: unexpected message type or framing."""


class IndexError_(ReproError):
    """A paged index structure (B+-tree, grid) detected an inconsistency."""
