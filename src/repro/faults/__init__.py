"""Fault injection, retry, and crash-testing harness.

The production posture of the stack: every component that touches the
untrusted world (disk, journal, network channel) can be wrapped in a
deterministic fault-injecting shim, and the layers above carry retry,
journaling and degradation machinery that the tests drive *through* those
shims.  Seeded end to end — same seed, same plan, same trace.

Quickstart::

    from repro.faults import (FaultInjector, FaultyDiskStore,
                              crash_after_writes)

    injector = FaultInjector(seed=7, plans=[crash_after_writes(12)])
    db = PirDatabase.create(records, cache_capacity=8, journal=journal,
                            disk_factory=lambda *a: FaultyDiskStore(
                                DiskStore(*a), injector))
"""

from .injector import (
    SITE_CHANNEL,
    SITE_DISK_READ,
    SITE_DISK_WRITE,
    SITE_JOURNAL_WRITE,
    SITE_NET_C2S,
    SITE_NET_S2C,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    corrupt_reads,
    crash_after_writes,
    delay_frames,
    delay_messages,
    drop_messages,
    drop_replies,
    duplicate_messages,
    partial_writes,
    reset_connections,
    transient_reads,
    transient_writes,
)
from .netchaos import ChaosProxy, ChaosProxyThread
from .retry import RetryPolicy, retry_call
from .wrappers import FaultyDiskStore, FaultyJournal, FlakyChannel

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultDecision",
    "SimulatedCrash",
    "FaultyDiskStore",
    "FaultyJournal",
    "FlakyChannel",
    "ChaosProxy",
    "ChaosProxyThread",
    "RetryPolicy",
    "retry_call",
    "SITE_DISK_READ",
    "SITE_DISK_WRITE",
    "SITE_JOURNAL_WRITE",
    "SITE_CHANNEL",
    "SITE_NET_C2S",
    "SITE_NET_S2C",
    "transient_reads",
    "transient_writes",
    "corrupt_reads",
    "crash_after_writes",
    "drop_messages",
    "delay_messages",
    "duplicate_messages",
    "reset_connections",
    "partial_writes",
    "drop_replies",
    "delay_frames",
]
