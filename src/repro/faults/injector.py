"""Deterministic, seed-driven fault injection.

A :class:`FaultInjector` owns a list of composable :class:`FaultPlan`\\ s and
an injected :class:`~repro.crypto.rng.SecureRandom` stream.  Wrappers such as
:class:`repro.faults.wrappers.FaultyDiskStore` consult it before every
operation; the injector decides — purely from the plan list, its per-site
operation counters and the seeded RNG — whether that operation fails, and
how.  The same seed and workload therefore produce the *same* fault
sequence, byte for byte, which is what lets the crash-sweep and retry tests
assert exact traces.

Sites are string labels (``disk.read``, ``disk.write``, ``journal.write``,
``channel``, and the network chaos streams ``net.c2s`` / ``net.s2c`` used
by :class:`repro.faults.netchaos.ChaosProxy`); plans match one site each.
Fault kinds:

``transient``
    Raise :class:`~repro.errors.TransientStorageError` (disk/journal sites)
    or :class:`~repro.errors.TransientChannelError` (channel) *before* the
    operation takes effect — the retryable failure mode.
``corrupt``
    Let the operation proceed but flip one byte of one frame/blob on the
    way through, so MAC verification fails downstream with
    :class:`~repro.errors.AuthenticationError`.
``crash``
    Simulate host power loss: apply a *prefix* of the operation (a torn
    write) and raise :class:`SimulatedCrash`.  ``after`` counts individual
    frames at the site, so a sweep can place the crash at every write step.
``drop`` / ``delay`` / ``duplicate``
    Channel-only: lose the message (timeout), add latency, or deliver the
    request twice.
``reset`` / ``partial``
    Transport-only (``net.*`` sites): abort the TCP connection outright,
    or deliver a *prefix* of the frame and then abort — the two ways a
    real network tears a stream, exercised by the chaos proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..crypto.rng import SecureRandom
from ..sim.metrics import CounterSet

__all__ = [
    "SimulatedCrash",
    "FaultPlan",
    "FaultDecision",
    "FaultInjector",
    "SITE_DISK_READ",
    "SITE_DISK_WRITE",
    "SITE_JOURNAL_WRITE",
    "SITE_CHANNEL",
    "SITE_NET_C2S",
    "SITE_NET_S2C",
    "transient_reads",
    "transient_writes",
    "corrupt_reads",
    "crash_after_writes",
    "drop_messages",
    "delay_messages",
    "duplicate_messages",
    "reset_connections",
    "partial_writes",
    "drop_replies",
    "delay_frames",
]

SITE_DISK_READ = "disk.read"
SITE_DISK_WRITE = "disk.write"
SITE_JOURNAL_WRITE = "journal.write"
SITE_CHANNEL = "channel"
#: Chaos-proxy streams: frames travelling client→server and server→client.
SITE_NET_C2S = "net.c2s"
SITE_NET_S2C = "net.s2c"

_SITES = (SITE_DISK_READ, SITE_DISK_WRITE, SITE_JOURNAL_WRITE, SITE_CHANNEL,
          SITE_NET_C2S, SITE_NET_S2C)
_KINDS = ("transient", "corrupt", "crash", "drop", "delay", "duplicate",
          "reset", "partial")


class SimulatedCrash(Exception):
    """The simulated host lost power mid-operation.

    Deliberately *not* a :class:`~repro.errors.ReproError`: no handler in
    the library may catch-and-continue past a crash (the process is gone).
    Tests catch it at top level, then exercise the recovery path.
    """


@dataclass
class FaultPlan:
    """One composable fault rule; see the module docstring for kinds.

    Attributes
    ----------
    site:
        Which operation stream this plan watches.
    kind:
        One of ``transient | corrupt | crash | drop | delay | duplicate``.
    probability:
        Chance of firing per eligible operation (drawn from the injector's
        seeded RNG, so deterministic).  Ignored by ``crash``, which fires
        exactly at its frame threshold.
    times:
        Total number of injections before the plan exhausts itself
        (``None`` = unlimited).
    after:
        For ``crash``: the number of individual frames that *land* at this
        site before the crash (0 = crash before anything is written).  For
        other kinds: eligible operations to skip before arming.
    delay:
        Extra seconds for ``delay`` faults.
    """

    site: str
    kind: str
    probability: float = 1.0
    times: Optional[int] = 1
    after: int = 0
    delay: float = 0.0
    _fired: int = field(default=0, repr=False)
    _skipped: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        from ..errors import ConfigurationError

        if self.site not in _SITES:
            raise ConfigurationError(f"unknown fault site {self.site!r}")
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault probability must be in [0, 1]")
        if self.after < 0 or self.delay < 0:
            raise ConfigurationError("after and delay must be non-negative")

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self._fired >= self.times


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one operation."""

    kind: str
    delay: float = 0.0
    # For crashes at multi-frame sites: how many leading frames of the
    # current operation still land before power is lost.
    torn_frames: int = 0
    # For corruption: which frame of the operation to damage.
    corrupt_index: int = 0


# -- plan constructors (the readable way to compose plans) --------------------


def transient_reads(probability: float = 1.0, times: Optional[int] = 1,
                    after: int = 0) -> FaultPlan:
    """Disk reads fail with :class:`TransientStorageError`."""
    return FaultPlan(SITE_DISK_READ, "transient", probability, times, after)


def transient_writes(probability: float = 1.0, times: Optional[int] = 1,
                     after: int = 0) -> FaultPlan:
    """Disk writes fail (before taking effect) with ``TransientStorageError``."""
    return FaultPlan(SITE_DISK_WRITE, "transient", probability, times, after)


def corrupt_reads(probability: float = 1.0, times: Optional[int] = 1,
                  after: int = 0) -> FaultPlan:
    """Disk reads return a frame with one byte flipped (fails its MAC)."""
    return FaultPlan(SITE_DISK_READ, "corrupt", probability, times, after)


def crash_after_writes(num_frames: int) -> FaultPlan:
    """Host crashes once exactly ``num_frames`` frames have been written."""
    return FaultPlan(SITE_DISK_WRITE, "crash", after=num_frames)


def drop_messages(probability: float = 1.0, times: Optional[int] = 1,
                  after: int = 0) -> FaultPlan:
    """Channel loses the request; the caller sees a timeout."""
    return FaultPlan(SITE_CHANNEL, "drop", probability, times, after)


def delay_messages(delay: float, probability: float = 1.0,
                   times: Optional[int] = None, after: int = 0) -> FaultPlan:
    """Channel adds ``delay`` seconds of extra latency."""
    return FaultPlan(SITE_CHANNEL, "delay", probability, times, after,
                     delay=delay)


def duplicate_messages(probability: float = 1.0, times: Optional[int] = 1,
                       after: int = 0) -> FaultPlan:
    """Channel delivers the request twice (at-least-once delivery)."""
    return FaultPlan(SITE_CHANNEL, "duplicate", probability, times, after)


def reset_connections(site: str = SITE_NET_C2S, probability: float = 1.0,
                      times: Optional[int] = 1, after: int = 0) -> FaultPlan:
    """Proxy aborts the TCP connection when the matching frame passes."""
    return FaultPlan(site, "reset", probability, times, after)


def partial_writes(site: str = SITE_NET_S2C, probability: float = 1.0,
                   times: Optional[int] = 1, after: int = 0) -> FaultPlan:
    """Proxy forwards a strict prefix of the frame, then aborts — the
    receiver sees a torn frame, never a clean close."""
    return FaultPlan(site, "partial", probability, times, after)


def drop_replies(probability: float = 1.0, times: Optional[int] = 1,
                 after: int = 0) -> FaultPlan:
    """Proxy swallows a server→client frame; the client must time out
    and retransmit."""
    return FaultPlan(SITE_NET_S2C, "drop", probability, times, after)


def delay_frames(delay: float, site: str = SITE_NET_C2S,
                 probability: float = 1.0, times: Optional[int] = None,
                 after: int = 0) -> FaultPlan:
    """Proxy holds the frame for ``delay`` real seconds before forwarding."""
    return FaultPlan(site, "delay", probability, times, after, delay=delay)


class FaultInjector:
    """Seed-driven oracle deciding which operations fail and how.

    >>> injector = FaultInjector(seed=7, plans=[transient_reads(times=2)])
    >>> injector.check(SITE_DISK_READ).kind
    'transient'

    The decision stream is a pure function of (seed, plans, operation
    sequence); two injectors built the same way agree on every call.
    """

    def __init__(
        self,
        seed: int = 0,
        plans: Sequence[FaultPlan] = (),
        counters: Optional[CounterSet] = None,
        registry=None,
    ):
        self.rng = SecureRandom(seed)
        self.plans: List[FaultPlan] = list(plans)
        if counters is not None:
            self.counters = counters
            if registry is not None:
                counters.bind_registry(registry, prefix="faults.")
        else:
            self.counters = CounterSet(registry=registry, prefix="faults.")
        # Cumulative frames seen per site (drives crash thresholds).
        self._frames_seen: Dict[str, int] = {site: 0 for site in _SITES}

    def add(self, plan: FaultPlan) -> None:
        self.plans.append(plan)

    def frames_seen(self, site: str) -> int:
        return self._frames_seen[site]

    def check(self, site: str, frames: int = 1) -> Optional[FaultDecision]:
        """Decide the fate of one operation touching ``frames`` frames.

        Crash plans take precedence (power loss preempts everything), then
        the first non-exhausted matching plan that passes its probability
        draw.  Returns ``None`` for a healthy operation.
        """
        before = self._frames_seen[site]
        self._frames_seen[site] = before + frames

        for plan in self.plans:
            if plan.site != site or plan.kind != "crash" or plan.exhausted:
                continue
            # Fires on the operation during which the frame counter crosses
            # the threshold: `after` frames land, then the lights go out.
            if before <= plan.after < before + frames:
                plan._fired += 1
                self.counters.increment("fault.crash")
                return FaultDecision("crash", torn_frames=plan.after - before)

        for plan in self.plans:
            if plan.site != site or plan.kind == "crash" or plan.exhausted:
                continue
            if plan._skipped < plan.after:
                plan._skipped += 1
                continue
            if plan.probability < 1.0 and self.rng.random() >= plan.probability:
                continue
            plan._fired += 1
            self.counters.increment(f"fault.{plan.kind}")
            decision_delay = plan.delay
            corrupt_index = 0
            if plan.kind == "corrupt" and frames > 1:
                corrupt_index = self.rng.randrange(frames)
            return FaultDecision(plan.kind, delay=decision_delay,
                                 corrupt_index=corrupt_index)
        return None

    def corrupt_blob(self, blob: bytes) -> bytes:
        """Flip one pseudorandom byte of ``blob`` (never a no-op)."""
        if not blob:
            return blob
        position = self.rng.randrange(len(blob))
        flipped = blob[position] ^ (1 + self.rng.randrange(255))
        return blob[:position] + bytes([flipped]) + blob[position + 1:]
