"""Drop-in faulty wrappers for the storage, journal and channel layers.

Each wrapper preserves its inner object's exact interface and behaviour on
the no-fault path (same trace events, same timing charges, same batching),
and consults a shared :class:`~repro.faults.injector.FaultInjector` before
every operation.  Because the injector is deterministic, wrapping a store
with a plan-free injector is observationally identical to not wrapping it.

* :class:`FaultyDiskStore` wraps any engine-facing store —
  :class:`~repro.storage.disk.DiskStore`,
  :class:`~repro.storage.filedisk.FileDiskStore`,
  :class:`~repro.storage.merkle.AuthenticatedDisk`, or a remote transport.
* :class:`FlakyChannel` wraps a
  :class:`~repro.twoparty.channel.SimulatedChannel` (or anything with a
  ``call``/``clock`` surface).
* :class:`FaultyJournal` wraps an intent journal so crash points *inside*
  the journal protocol itself are testable (torn or lost intent records).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .injector import (
    SITE_CHANNEL,
    SITE_DISK_READ,
    SITE_DISK_WRITE,
    SITE_JOURNAL_WRITE,
    FaultInjector,
    SimulatedCrash,
)
from ..errors import TransientChannelError, TransientStorageError

__all__ = ["FaultyDiskStore", "FlakyChannel", "FaultyJournal"]


class FaultyDiskStore:
    """Fault-injecting wrapper with the engine's disk interface.

    Transient faults fire *before* the inner operation (nothing lands);
    corruption damages frames on the way back from a successful read; a
    crash applies a torn prefix of the write and raises
    :class:`~repro.faults.injector.SimulatedCrash`.
    """

    def __init__(self, inner, injector: FaultInjector):
        self._inner = inner
        self.injector = injector

    # -- passthrough metadata ---------------------------------------------------

    @property
    def num_locations(self) -> int:
        return self._inner.num_locations

    @property
    def frame_size(self) -> int:
        return self._inner.frame_size

    @property
    def trace(self):
        return self._inner.trace

    @property
    def clock(self):
        return self._inner.clock

    @property
    def current_request(self) -> int:
        return self._inner.current_request

    @current_request.setter
    def current_request(self, value: int) -> None:
        self._inner.current_request = value

    @property
    def inner(self):
        return self._inner

    # -- faulty access ----------------------------------------------------------

    def read(self, location: int) -> bytes:
        return self.read_range(location, 1)[0]

    def read_range(self, location: int, count: int) -> List[bytes]:
        decision = self.injector.check(SITE_DISK_READ, count)
        if decision is not None and decision.kind == "transient":
            raise TransientStorageError(
                f"injected transient fault reading [{location}, "
                f"{location + count})"
            )
        frames = self._inner.read_range(location, count)
        if decision is not None and decision.kind == "corrupt":
            index = decision.corrupt_index
            frames = list(frames)
            frames[index] = self.injector.corrupt_blob(frames[index])
        return frames

    def write(self, location: int, frame: bytes) -> None:
        self.write_range(location, [frame])

    def write_range(self, location: int, frames: Sequence[bytes]) -> None:
        decision = self.injector.check(SITE_DISK_WRITE, len(frames))
        if decision is None:
            self._inner.write_range(location, frames)
            return
        if decision.kind == "transient":
            raise TransientStorageError(
                f"injected transient fault writing [{location}, "
                f"{location + len(frames)})"
            )
        if decision.kind == "crash":
            # Torn write: a prefix of the frames becomes durable, then the
            # host dies before the rest (or the caller's bookkeeping) lands.
            if decision.torn_frames > 0:
                self._inner.write_range(location,
                                        list(frames)[:decision.torn_frames])
            raise SimulatedCrash(
                f"simulated power loss after {decision.torn_frames} of "
                f"{len(frames)} frames at location {location}"
            )
        # Corruption of a write: the damaged frame lands silently.
        index = decision.corrupt_index
        damaged = list(frames)
        damaged[index] = self.injector.corrupt_blob(damaged[index])
        self._inner.write_range(location, damaged)

    # -- request-granular access -------------------------------------------------
    #
    # Decomposed into the same two accesses the local store performs, so
    # each leg gets its own fault decision; the trace shape is unchanged.

    def read_request(
        self, block_start: int, count: int, extra_location: int
    ) -> Tuple[List[bytes], bytes]:
        frames = self.read_range(block_start, count)
        extra = self.read(extra_location)
        return frames, extra

    def write_request(
        self,
        block_start: int,
        frames: Sequence[bytes],
        extra_location: int,
        extra_frame: bytes,
    ) -> None:
        self.write_range(block_start, frames)
        self.write(extra_location, extra_frame)

    # -- diagnostics / lifecycle -------------------------------------------------

    def peek(self, location: int) -> Optional[bytes]:
        return self._inner.peek(location)

    def initialised_locations(self) -> int:
        return self._inner.initialised_locations()

    def flush(self) -> None:
        if hasattr(self._inner, "flush"):
            self._inner.flush()

    def close(self) -> None:
        if hasattr(self._inner, "close"):
            self._inner.close()


class FlakyChannel:
    """Fault-injecting wrapper around a request/response channel.

    A *drop* charges the round-trip time (the client waits out a timeout)
    and raises :class:`~repro.errors.TransientChannelError` without the
    handler ever running.  A *delay* adds plan-specified latency before the
    call.  A *duplicate* delivers the same request bytes twice and returns
    the second response, modelling at-least-once delivery; against
    :class:`~repro.service.frontend.QueryFrontend` the second delivery is
    answered from the per-session reply cache (byte-identical ciphertext =
    same transmission), so mutating operations are never double-applied.
    Handlers without such dedup see both deliveries — duplicate plans are
    then only state-safe for idempotent workloads.
    """

    def __init__(self, inner, injector: FaultInjector):
        self._inner = inner
        self.injector = injector

    @property
    def clock(self):
        return self._inner.clock

    @property
    def counters(self):
        return self._inner.counters

    @property
    def rtt(self) -> float:
        return getattr(self._inner, "rtt", 0.0)

    @property
    def bandwidth(self) -> float:
        return getattr(self._inner, "bandwidth", float("inf"))

    @property
    def total_bytes(self) -> int:
        return self._inner.total_bytes

    @property
    def inner(self):
        return self._inner

    def call(self, request: bytes) -> bytes:
        decision = self.injector.check(SITE_CHANNEL)
        if decision is None:
            return self._inner.call(request)
        if decision.kind == "drop":
            # The sender pays a full RTT discovering the loss (timeout).
            self.clock.advance(self.rtt + decision.delay)
            raise TransientChannelError("injected message drop")
        if decision.kind == "delay":
            self.clock.advance(decision.delay)
            return self._inner.call(request)
        if decision.kind == "duplicate":
            self._inner.call(request)
            return self._inner.call(request)
        if decision.kind == "crash":
            raise SimulatedCrash("simulated crash mid round-trip")
        raise TransientChannelError(
            f"injected channel fault {decision.kind!r}"
        )


class FaultyJournal:
    """Fault-injecting wrapper around an intent journal.

    Lets tests tear or lose the intent record itself: a ``crash`` with
    ``torn_frames == 0`` loses the record entirely, any other crash (or a
    ``corrupt``) leaves a mangled record behind — both must be survivable,
    and :meth:`RetrievalEngine.recover` treats them as "request never
    happened" because nothing was written to the page array yet.
    """

    def __init__(self, inner, injector: FaultInjector):
        self._inner = inner
        self.injector = injector

    @property
    def inner(self):
        return self._inner

    def write(self, blob: bytes) -> None:
        decision = self.injector.check(SITE_JOURNAL_WRITE)
        if decision is None:
            self._inner.write(blob)
            return
        if decision.kind == "transient":
            raise TransientStorageError("injected transient journal fault")
        if decision.kind == "crash":
            if decision.torn_frames > 0:
                # Half the record becomes durable: torn intent.
                self._inner.write(blob[: max(1, len(blob) // 2)])
            raise SimulatedCrash("simulated power loss during journal write")
        if decision.kind == "corrupt":
            self._inner.write(self.injector.corrupt_blob(blob))
            return
        self._inner.write(blob)

    def read(self) -> Optional[bytes]:
        return self._inner.read()

    def clear(self) -> None:
        self._inner.clear()

    def close(self) -> None:
        if hasattr(self._inner, "close"):
            self._inner.close()
