"""Network chaos: a fault-injecting TCP proxy for the serving stack.

:class:`ChaosProxy` sits between a client and a :class:`~repro.net.server
.PirServer` (or the cluster router) and misbehaves *deterministically*:
every frame passing through either direction is submitted to a
:class:`~repro.faults.injector.FaultInjector` at the transport sites
``net.c2s`` (client→server) and ``net.s2c`` (server→client), and the
injector's seeded decision stream picks which frames are dropped,
delayed, duplicated, torn mid-frame, or answered with a connection
reset.  The same seed and workload therefore produce the same chaos
schedule, which is what lets the failover tests assert exact outcomes
("the third reply is lost, the client retransmits, the duplicate is
served from the reply cache") instead of fishing for flakes.

The proxy is frame-granular on purpose: it re-parses the length-prefixed
framing (:mod:`repro.net.framing`) so a fault hits a *whole* protocol
unit, the way a lost TCP segment loses a request, not half a byte of
one.  ``fragment_bytes`` additionally re-chunks every forwarded frame
into tiny writes, exercising the receivers' fragmented-delivery handling
(a frame's length prefix split across reads, byte-at-a-time bodies).

Faults are injected at the *proxy*, not inside the server, so the full
production path is exercised: real sockets, real resets, the client's
reconnect-and-resume, the server's session retention.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Set

from .injector import SITE_NET_C2S, SITE_NET_S2C, FaultInjector
from ..errors import ConfigurationError, TransientChannelError
from ..sim.metrics import CounterSet

__all__ = ["ChaosProxy", "ChaosProxyThread"]


def _framing():
    # Imported lazily: repro.net pulls in the service/core stack, and
    # repro.faults is itself imported by repro.core.engine — a module-
    # level import here would close that cycle during package init.
    from ..net import framing
    return framing


class ChaosProxy:
    """Fault-injecting TCP proxy; construct, then ``await start()``.

    Listens on ``host:port`` (port 0 = ephemeral), dials
    ``upstream_host:upstream_port`` once per accepted connection, and
    pumps frames both ways through the injector.  Counters:
    ``chaos.forwarded``, ``chaos.dropped``, ``chaos.delayed``,
    ``chaos.duplicated``, ``chaos.resets``, ``chaos.partials``.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        injector: FaultInjector,
        host: str = "127.0.0.1",
        port: int = 0,
        fragment_bytes: Optional[int] = None,
        metrics=None,
    ):
        if fragment_bytes is not None and fragment_bytes < 1:
            raise ConfigurationError("fragment_bytes must be positive")
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.injector = injector
        self.host = host
        self.port = port
        self.fragment_bytes = fragment_bytes
        self.counters = CounterSet(registry=metrics, prefix="chaos.")
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()

    async def start(self) -> None:
        if self._server is not None:
            raise ConfigurationError("proxy already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    async def sever_all(self) -> None:
        """Abort every live proxied connection; keep accepting new ones.

        Models a NAT table reset / transient network partition: both ends
        of each in-flight connection see a hard reset at the same moment,
        which is how the double-RESUME races are provoked (two clients of
        one session reconnect simultaneously).
        """
        tasks = list(self._conn_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self.counters.increment("severed", len(tasks))

    async def _handle_connection(self, client_reader, client_writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            try:
                upstream_reader, upstream_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
            except OSError:
                client_writer.close()
                return
            self.counters.increment("connections")
            pumps = [
                asyncio.ensure_future(self._pump(
                    client_reader, upstream_writer, SITE_NET_C2S,
                    peer_writer=client_writer,
                )),
                asyncio.ensure_future(self._pump(
                    upstream_reader, client_writer, SITE_NET_S2C,
                    peer_writer=upstream_writer,
                )),
            ]
            try:
                # Either direction ending (peer closed, reset injected)
                # ends the whole connection: half-open proxied streams
                # only hide hangs.
                await asyncio.wait(pumps,
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                for pump in pumps:
                    pump.cancel()
                await asyncio.gather(*pumps, return_exceptions=True)
                for writer in (client_writer, upstream_writer):
                    try:
                        writer.close()
                    except Exception:
                        pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)

    async def _pump(self, reader, writer, site: str, peer_writer) -> None:
        """Forward frames reader→writer, consulting the injector per frame."""
        framing = _framing()
        while True:
            try:
                body = await framing.read_frame_async(reader)
            except TransientChannelError:
                return
            decision = self.injector.check(site)
            try:
                if decision is None:
                    await self._forward(writer, body)
                elif decision.kind == "drop":
                    self.counters.increment("dropped")
                elif decision.kind == "delay":
                    self.counters.increment("delayed")
                    await asyncio.sleep(decision.delay)
                    await self._forward(writer, body)
                elif decision.kind == "duplicate":
                    self.counters.increment("duplicated")
                    await self._forward(writer, body)
                    await self._forward(writer, body)
                elif decision.kind == "reset":
                    self.counters.increment("resets")
                    self._abort(writer)
                    self._abort(peer_writer)
                    return
                elif decision.kind == "partial":
                    # A strict prefix, then a hard abort: the receiver
                    # sees a torn frame, never a clean close.
                    self.counters.increment("partials")
                    frame = framing.encode_frame(body)
                    writer.write(frame[:max(1, len(frame) // 2)])
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    self._abort(writer)
                    self._abort(peer_writer)
                    return
                else:
                    # Kinds meant for other sites (transient, corrupt,
                    # crash) have no transport meaning; forward intact.
                    await self._forward(writer, body)
            except (ConnectionError, OSError):
                return

    async def _forward(self, writer, body: bytes) -> None:
        frame = _framing().encode_frame(body)
        step = self.fragment_bytes or len(frame)
        for offset in range(0, len(frame), step):
            writer.write(frame[offset:offset + step])
            await writer.drain()
        self.counters.increment("forwarded")

    @staticmethod
    def _abort(writer) -> None:
        transport = writer.transport
        if transport is not None:
            transport.abort()


class ChaosProxyThread:
    """Runs a :class:`ChaosProxy` event loop on a background thread.

    The synchronous mirror of :class:`~repro.net.server.ServerThread`, so
    blocking tests can interpose chaos between a real client and server::

        with ChaosProxyThread(ChaosProxy(server_host, server_port,
                                         injector)) as chaos:
            client = NetworkClient(chaos.host, chaos.port)
    """

    def __init__(self, proxy: ChaosProxy):
        self.proxy = proxy
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.proxy.host

    @property
    def port(self) -> int:
        return self.proxy.port

    def start(self) -> "ChaosProxyThread":
        if self._thread is not None:
            raise ConfigurationError("proxy thread already started")
        self._thread = threading.Thread(
            target=self._run, name="chaos-proxy", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.proxy.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def sever_all(self, timeout: float = 30.0) -> None:
        """Thread-safe :meth:`ChaosProxy.sever_all`."""
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.proxy.sever_all(), self._loop
            )
            future.result(timeout=timeout)

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.proxy.stop(), self._loop
            )
            future.result(timeout=timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ChaosProxyThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
