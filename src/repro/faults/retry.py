"""Retry with exponential backoff and deterministic jitter.

Backoff sleeps are charged to the shared :class:`~repro.sim.clock
.VirtualClock` and jitter is drawn from an injected
:class:`~repro.crypto.rng.SecureRandom`, so a retried workload is exactly
as reproducible as a fault-free one: same seed, same fault plan, same
byte-identical trace and metrics.

The jitter is *decorrelating* in the usual sense — attempt ``i`` waits
``base * multiplier**i`` scaled down by up to ``jitter`` — but because the
RNG is seeded there is nothing nondeterministic about it; "jitter" here
spreads retries across virtual time, not across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError
from ..sim.clock import VirtualClock
from ..sim.metrics import CounterSet

__all__ = ["RetryPolicy", "retry_call"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule: attempts, delays and jitter fraction."""

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, rng: SecureRandom) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        raw = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


def retry_call(
    operation: Callable[[], T],
    policy: RetryPolicy,
    clock: VirtualClock,
    rng: SecureRandom,
    retry_on: Tuple[Type[BaseException], ...],
    counters: Optional[CounterSet] = None,
    counter: str = "retries",
    min_delay: float = 0.0,
) -> T:
    """Run ``operation`` up to ``policy.max_attempts`` times.

    Exceptions in ``retry_on`` trigger a backoff (charged to ``clock``) and
    another attempt; the final attempt's exception propagates unchanged.
    ``min_delay`` floors each backoff — used to honour a server-provided
    retry-after hint.
    """
    attempt = 0
    while True:
        try:
            return operation()
        except retry_on:
            if attempt + 1 >= policy.max_attempts:
                raise
            delay = max(policy.delay_for(attempt, rng), min_delay)
            clock.advance(delay)
            if counters is not None:
                counters.increment(counter)
            attempt += 1
