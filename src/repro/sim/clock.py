"""Virtual time for deterministic, fast simulations.

The paper's Figure 7 prototype simulated a 50 ms WiFi RTT with ``sleep``;
we instead advance a :class:`VirtualClock`, so full-scale experiments run in
milliseconds of wall time while reporting the same modelled latencies.
Every timed component (disk, network channel, crypto engine model) charges
its cost to a shared clock instance.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically non-decreasing simulated clock measured in seconds."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds since simulation start."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ConfigurationError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to an absolute timestamp (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self) -> None:
        """Rewind to t=0 (only sensible between independent experiment runs)."""
        self._now = 0.0
