"""Simulation support: virtual time and experiment metrics."""

from .clock import VirtualClock
from .metrics import CounterSet, LatencySeries

__all__ = ["VirtualClock", "CounterSet", "LatencySeries"]
