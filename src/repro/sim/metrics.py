"""Latency and counter metrics for experiments.

Small, dependency-light accumulators used by the benchmark harness and the
baseline comparisons.  The paper's central empirical claim is about latency
*distribution shape* (constant for this scheme, heavy-tailed for amortized
schemes), so :class:`LatencySeries` keeps the full sample and exposes exact
order statistics rather than streaming approximations.

Both accumulators can *mirror* into the unified
:class:`~repro.obs.registry.MetricsRegistry` (see DESIGN.md §9): a
``CounterSet`` built with ``registry=`` forwards every increment to a
registry counter under its ``prefix``, and a ``LatencySeries`` built with
``histogram=`` feeds each sample into a registry histogram.  The legacy
in-place behaviour is unchanged when neither is supplied; new code should
prefer the registry directly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from ..errors import ConfigurationError

__all__ = ["LatencySeries", "CounterSet"]


class LatencySeries:
    """Collects per-operation latencies (seconds) and summarises them.

    ``histogram`` is an optional sink with an ``observe(value)`` method
    (e.g. :class:`repro.obs.registry.Histogram`); every accepted sample is
    forwarded to it.
    """

    def __init__(self, histogram=None) -> None:
        self._samples: List[float] = []
        self._histogram = histogram

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ConfigurationError(f"negative latency {latency}")
        self._samples.append(latency)
        if self._histogram is not None:
            self._histogram.observe(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        """Record a batch of samples, atomically.

        The whole iterable is validated before any sample is committed, so
        a negative latency in the middle of the batch leaves the series
        (and the mirrored histogram) exactly as it was — previously the
        leading valid samples were appended and then the error raised,
        leaving the series partially mutated.
        """
        values = [float(value) for value in latencies]
        for value in values:
            if value < 0:
                raise ConfigurationError(f"negative latency {value}")
        self._samples.extend(values)
        if self._histogram is not None:
            for value in values:
                self._histogram.observe(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of the raw sample list, in arrival order."""
        return list(self._samples)

    def mean(self) -> float:
        self._require_data()
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        self._require_data()
        return min(self._samples)

    def maximum(self) -> float:
        self._require_data()
        return max(self._samples)

    def stddev(self) -> float:
        self._require_data()
        if len(self._samples) == 1:
            return 0.0
        mu = self.mean()
        variance = sum((x - mu) ** 2 for x in self._samples) / (len(self._samples) - 1)
        return math.sqrt(variance)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank), q in [0, 100]."""
        self._require_data()
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile {q} out of [0, 100]")
        ordered = sorted(self._samples)
        if q == 0:
            return ordered[0]
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def coefficient_of_variation(self) -> float:
        """stddev / mean — near zero for a constant-time scheme."""
        mu = self.mean()
        if mu == 0:
            return 0.0
        return self.stddev() / mu

    def summary(self) -> Dict[str, float]:
        """All headline statistics in one dict (for table printing)."""
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "min": self.minimum(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum(),
            "stddev": self.stddev(),
            "cv": self.coefficient_of_variation(),
        }

    def _require_data(self) -> None:
        if not self._samples:
            raise ConfigurationError("no latency samples recorded")


class CounterSet:
    """Named monotonically increasing counters.

    With ``registry=`` (a :class:`~repro.obs.registry.MetricsRegistry`),
    every increment is mirrored to ``registry.counter(prefix + name)`` —
    the migration path that lets the engine, frontend, health monitor and
    fault injector publish into the unified registry without changing any
    call site.  ``reset()`` clears only the local counts; the registry's
    counters are monotonic by contract and keep their values.
    """

    def __init__(self, registry=None, prefix: str = "") -> None:
        self._counts: Dict[str, int] = {}
        self._registry = registry
        self._prefix = prefix

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counter increments must be non-negative")
        self._counts[name] = self._counts.get(name, 0) + amount
        if self._registry is not None:
            self._registry.counter(self._prefix + name).inc(amount)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "CounterSet", prefix: str = "") -> None:
        """Fold another counter set into this one, optionally namespaced.

        Used to aggregate per-component fault/retry/health counters (engine,
        injector, frontend, client) into one report:
        ``totals.merge(engine.counters, prefix="engine.")``.
        """
        for name, amount in other.as_dict().items():
            self.increment(prefix + name, amount)

    def bind_registry(self, registry, prefix: Optional[str] = None) -> None:
        """Start mirroring future increments into ``registry``.

        Existing local counts are folded in immediately so the registry
        view is complete from the moment of binding.
        """
        self._registry = registry
        if prefix is not None:
            self._prefix = prefix
        if registry is not None:
            for name, amount in self._counts.items():
                registry.counter(self._prefix + name).inc(amount)

    def reset(self) -> None:
        self._counts.clear()
