"""Latency and counter metrics for experiments.

Small, dependency-light accumulators used by the benchmark harness and the
baseline comparisons.  The paper's central empirical claim is about latency
*distribution shape* (constant for this scheme, heavy-tailed for amortized
schemes), so :class:`LatencySeries` keeps the full sample and exposes exact
order statistics rather than streaming approximations.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from ..errors import ConfigurationError

__all__ = ["LatencySeries", "CounterSet"]


class LatencySeries:
    """Collects per-operation latencies (seconds) and summarises them."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ConfigurationError(f"negative latency {latency}")
        self._samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        for value in latencies:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of the raw sample list, in arrival order."""
        return list(self._samples)

    def mean(self) -> float:
        self._require_data()
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        self._require_data()
        return min(self._samples)

    def maximum(self) -> float:
        self._require_data()
        return max(self._samples)

    def stddev(self) -> float:
        self._require_data()
        if len(self._samples) == 1:
            return 0.0
        mu = self.mean()
        variance = sum((x - mu) ** 2 for x in self._samples) / (len(self._samples) - 1)
        return math.sqrt(variance)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank), q in [0, 100]."""
        self._require_data()
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile {q} out of [0, 100]")
        ordered = sorted(self._samples)
        if q == 0:
            return ordered[0]
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def coefficient_of_variation(self) -> float:
        """stddev / mean — near zero for a constant-time scheme."""
        mu = self.mean()
        if mu == 0:
            return 0.0
        return self.stddev() / mu

    def summary(self) -> Dict[str, float]:
        """All headline statistics in one dict (for table printing)."""
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "min": self.minimum(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum(),
            "stddev": self.stddev(),
            "cv": self.coefficient_of_variation(),
        }

    def _require_data(self) -> None:
        if not self._samples:
            raise ConfigurationError("no latency samples recorded")


class CounterSet:
    """Named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counter increments must be non-negative")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "CounterSet", prefix: str = "") -> None:
        """Fold another counter set into this one, optionally namespaced.

        Used to aggregate per-component fault/retry/health counters (engine,
        injector, frontend, client) into one report:
        ``totals.merge(engine.counters, prefix="engine.")``.
        """
        for name, amount in other.as_dict().items():
            self.increment(prefix + name, amount)

    def reset(self) -> None:
        self._counts.clear()
