"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     resolve (n, m, c) into k/T and the Eq. 7/8 costs
``headline``  print the §5 headline table (paper vs model)
``figure``    print one of the paper's figure series (4, 5, 6 or 7)
``privacy``   run the Monte-Carlo landing experiment on the real engine
``demo``      build a small database and run an end-to-end exercise
``metrics``   run a traced workload; per-phase totals, registry contents
              and the Eq. 8 conformance ratios (``--out`` exports JSONL)
``plan``      capacity planner: invert the cost model from a target
              triple (p99, QPS, privacy c or ϵ) into a full parameter
              assignment (``--verify`` measures prediction error)
``serve``     serve a seeded database over TCP (asyncio stack, admission
              control, graceful drain on SIGINT or ``--duration``)
``loadgen``   drive a running ``serve`` instance with concurrent async
              clients; report sustained qps and shed rate
``cluster``   fault-tolerant tier: ``serve-backend`` runs one cluster
              member (session adoption + persistent reply cache),
              ``serve-router`` fronts N members with health-gated
              routing and failover
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .analysis.costmodel import (
    AnalyticalCostModel,
    figure4_series,
    figure5_series,
    figure6_series,
    figure7_series,
    headline_numbers,
)
from .analysis.empirical import measure_landing_distribution
from .analysis.sweep import EnginePoint, run_engine_sweep, write_csv
from .baselines import make_records
from .core.database import PirDatabase
from .core.params import SystemParameters
from .crypto.rng import SecureRandom
from .errors import ReproError
from .storage.trace import shapes_identical

__all__ = ["main"]


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    printable = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in printable))
        if printable else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in printable:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------


def _cmd_solve(args: argparse.Namespace) -> int:
    params = SystemParameters.solve(
        args.pages, args.cache, args.c, page_capacity=args.page_size
    )
    model = AnalyticalCostModel()
    print(params.describe())
    print(_format_table(
        ["quantity", "value"],
        [
            ["block size k (Eq. 6)", params.block_size],
            ["scan period T = n/k", params.scan_period],
            ["achieved c (Eq. 5)", params.achieved_c],
            ["query time (Eq. 8, Table-2 HW)",
             f"{model.query_time(params.block_size, args.page_size):.4f} s"],
            ["secure storage (Eq. 7)",
             f"{model.secure_storage_bytes(params.num_locations, args.cache, params.block_size, args.page_size) / 1e6:.2f} MB"],
        ],
    ))
    return 0


def _cmd_headline(_args: argparse.Namespace) -> int:
    rows = headline_numbers()
    print(_format_table(
        ["configuration", "paper (s)", "model (s)", "k", "storage (MB)", "units"],
        [
            [r["label"], r["paper_seconds"], r["model_seconds"],
             r["block_size"], r["storage_mb"], r["units"]]
            for r in rows
        ],
    ))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    series_by_number = {
        "4": figure4_series,
        "5": figure5_series,
        "6": figure6_series,
        "7": figure7_series,
    }
    series = series_by_number[args.number]()
    for panel, points in series.items():
        print(f"Figure {args.number} — panel {panel}")
        print(_format_table(
            ["m (pages)", "k", "c", "response (s)", "storage (MB)"],
            [
                [p.cache_pages, p.block_size, p.privacy_c, p.query_time,
                 p.secure_storage_mb]
                for p in points
            ],
        ))
        print()
    return 0


def _cmd_privacy(args: argparse.Namespace) -> int:
    db = PirDatabase.create(
        make_records(args.pages, 16),
        cache_capacity=args.cache,
        target_c=args.c,
        page_capacity=16,
        reserve_fraction=0.2,
        cipher_backend="null",
        trace_enabled=False,
        seed=args.seed,
    )
    print(db.params.describe())
    experiment = measure_landing_distribution(
        db, trials=args.trials, rng=SecureRandom(args.seed + 1)
    )
    theory = experiment.theoretical_offset_probabilities()
    observed = experiment.observed_offset_frequencies()
    print(_format_table(
        ["offset t", "theory", "observed"],
        [[t + 1, theory[t], observed[t]] for t in range(len(theory))],
    ))
    print(f"configured c = {db.params.achieved_c:.4f}; "
          f"measured c = {experiment.empirical_c():.4f}; "
          f"TV error = {experiment.total_variation_error():.4f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .reporting import build_report

    document = build_report(privacy_trials=args.trials, seed=args.seed)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"wrote report to {args.out}")
    else:
        print(document)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    records = make_records(args.pages, 16)
    db = PirDatabase.create(
        records, cache_capacity=max(2, args.pages // 8), target_c=2.0,
        page_capacity=16, reserve_fraction=0.1, seed=args.seed,
    )
    print(db.params.describe())
    for step in range(args.pages):
        assert db.query(step) == records[step]
    db.update(0, b"demo update")
    new_id = db.insert(b"demo insert")
    db.delete(1)
    db.consistency_check()
    print(f"ran {db.engine.request_count} requests; "
          f"trace uniform: {shapes_identical(db.trace, 0)}; "
          f"inserted page id {new_id}; consistency check passed")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .core.journal import MemoryJournal
    from .hardware.specs import IBM_4764
    from .obs import (
        DETAIL_FINE,
        DETAIL_PHASE,
        CostModelCheck,
        MetricsRegistry,
        Tracer,
        run_rows,
        write_jsonl,
    )

    tracer = Tracer(detail=DETAIL_FINE if args.fine else DETAIL_PHASE)
    registry = MetricsRegistry()
    records = make_records(args.pages, args.page_size)
    db = PirDatabase.create(
        records,
        cache_capacity=args.cache,
        target_c=args.c,
        page_capacity=args.page_size,
        reserve_fraction=0.1,
        seed=args.seed,
        spec=IBM_4764,
        journal=MemoryJournal(),
        tracer=tracer,
        metrics=registry,
    )
    rng = SecureRandom(args.seed + 1)
    for _ in range(args.queries):
        db.query(rng.randrange(args.pages))

    print(db.params.describe())
    print(f"\nPer-phase totals over {args.queries} queries "
          f"(virtual = Table-2 simulated time):")
    print(_format_table(
        ["phase", "count", "wall (ms)", "virtual (s)", "bytes", "errors"],
        [
            [name, total.count, total.wall_seconds * 1e3,
             total.virtual_seconds, total.nbytes, total.errors]
            for name, total in sorted(tracer.phase_totals().items())
        ],
    ))

    snapshot = registry.snapshot()
    if snapshot["counters"]:
        print("\nCounters:")
        print(_format_table(
            ["name", "value"],
            sorted(snapshot["counters"].items()),
        ))
    if snapshot["gauges"]:
        print("\nGauges:")
        print(_format_table(
            ["name", "value"],
            sorted(snapshot["gauges"].items()),
        ))
    if snapshot["histograms"]:
        print("\nHistograms:")
        print(_format_table(
            ["name", "count", "mean", "p50", "p99", "max"],
            [
                [name, summary["count"], summary["mean"], summary["p50"],
                 summary["p99"], summary["max"]]
                for name, summary in sorted(snapshot["histograms"].items())
            ],
        ))

    check = CostModelCheck.for_database(db)
    conformance = check.evaluate(tracer, args.queries)
    print("\nEq. 8 conformance (measured virtual time vs analytic "
          "prediction, per term):")
    print(_format_table(
        ["term", "measured (s)", "predicted (s)", "ratio"],
        [
            [row.term, row.measured_seconds, row.predicted_seconds, row.ratio]
            for row in conformance
        ],
    ))

    if args.out:
        meta = {
            "queries": args.queries,
            "pages": args.pages,
            "cache": args.cache,
            "page_size": args.page_size,
            "block_size": db.params.block_size,
            "seed": args.seed,
        }
        rows = run_rows(tracer, registry, meta, spans=args.trace)
        rows.extend(row.as_dict() for row in conformance)
        written = write_jsonl(args.out, rows)
        print(f"\nwrote {written} JSONL rows to {args.out}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from .hardware.specs import IBM_4764
    from .obs import read_jsonl
    from .plan import CalibratedCostModel, PlanTarget, plan, verify_plan

    spec = IBM_4764.scaled(args.units)
    if args.obs:
        model = CalibratedCostModel.from_obs_rows(
            [read_jsonl(path) for path in args.obs],
            page_size=args.page_size,
        )
    elif args.calibrate == "probe":
        model = CalibratedCostModel.from_probe(
            page_size=args.page_size,
            queries=args.queries,
            seed=args.seed,
        )
    else:
        model = CalibratedCostModel.from_spec(spec, args.page_size)

    target = PlanTarget(
        num_pages=args.pages,
        page_size=args.page_size,
        p99_seconds=args.p99,
        qps=args.qps,
        privacy_c=args.c if args.epsilon is None else None,
        epsilon=args.epsilon,
    )
    result = plan(target, model=model, spec=spec, max_shards=args.max_shards)

    verify_rows = None
    worst_error = 0.0
    if args.verify:
        verify_rows = verify_plan(
            result, model, queries=args.queries, seed=args.seed
        )
        worst_error = max(row["error"] for row in verify_rows)

    if args.json:
        payload = result.as_dict()
        if verify_rows is not None:
            payload["verify"] = verify_rows
            payload["verify_tolerance"] = args.tolerance
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(_format_table(
            ["parameter", "value"],
            [
                ["calibration", result.calibration_source],
                ["privacy target c", f"{target.resolved_c:.4f}"],
                ["achieved c", f"{result.achieved_c:.4f}"],
                ["block size k", result.block_size],
                ["cache pages m", result.cache_pages],
                ["locations n (padded)", result.num_locations],
                ["secure storage (Eq. 7)",
                 f"{result.secure_storage_bytes / 1e6:.2f} MB"],
                ["predicted query time",
                 f"{result.predicted_query_seconds:.4f} s"],
                ["shards", result.shard_count],
                ["batch window", result.batch_window],
                ["pipeline budget", f"{result.pipeline_max_bytes} B"],
                ["hot-tier frames", result.hot_tier_frames],
                ["admission rate", f"{result.admission_rate:.2f} qps"],
                ["admission burst", f"{result.admission_burst:.2f}"],
            ],
        ))
        print("\nPredicted per-phase seconds/query:")
        print(_format_table(
            ["phase", "seconds"],
            sorted(result.predicted_phase_seconds.items()),
        ))
        if verify_rows is not None:
            print("\nVerification (predicted vs measured, "
                  f"tolerance {args.tolerance:.0%}):")
            print(_format_table(
                ["phase", "predicted (s)", "measured (s)", "error"],
                [
                    [row["phase"], row["predicted_s"], row["measured_s"],
                     f"{row['error']:.2%}"]
                    for row in verify_rows
                ],
            ))
    if verify_rows is not None and worst_error > args.tolerance:
        print(f"verification FAILED: worst per-phase error "
              f"{worst_error:.2%} exceeds {args.tolerance:.0%}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from .net import AdmissionController, PirServer, ServerThread, TokenBucket
    from .obs import MetricsRegistry
    from .service.frontend import SESSION_RANDOM, QueryFrontend

    registry = MetricsRegistry()
    db = PirDatabase.create(
        make_records(args.pages, args.page_size),
        cache_capacity=args.cache,
        target_c=args.c,
        page_capacity=args.page_size,
        reserve_fraction=0.1,
        seed=args.seed,
        metrics=registry,
    )
    frontend = QueryFrontend(
        db,
        metrics=registry,
        session_id_mode=SESSION_RANDOM,
        session_ttl=args.session_ttl,
        time_source=_time.monotonic,
    )
    bucket = (
        TokenBucket(args.rate, args.burst if args.burst > 0 else args.rate)
        if args.rate > 0 else None
    )
    admission = AdmissionController(
        max_sessions=args.max_sessions,
        max_queue_depth=args.queue_depth,
        bucket=bucket,
        metrics=registry,
    )
    server = PirServer(
        frontend,
        host=args.host,
        port=args.port,
        admission=admission,
        workers=args.workers,
        queue_depth=args.queue_depth,
        reap_interval=args.session_ttl,
        metrics=registry,
    )
    handle = ServerThread(server).start()
    print(f"serving {args.pages} pages on {handle.host}:{handle.port} "
          f"(c={args.c}, workers={args.workers})", flush=True)
    try:
        if args.duration > 0:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        print("\ndraining...", flush=True)
    finally:
        handle.drain()
        db.close()
    snapshot = registry.snapshot()
    net_counters = sorted(
        (name, value) for name, value in snapshot["counters"].items()
        if name.startswith("net.") or name.startswith("frontend.")
    )
    if net_counters:
        print(_format_table(["counter", "value"], net_counters))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import time as _time

    from .errors import DegradedServiceError
    from .net.client import AsyncNetworkClient

    async def run_client(index: int, stats: dict) -> None:
        client = await AsyncNetworkClient.connect(
            args.host, args.port, rng_seed=args.seed + index
        )
        rng = SecureRandom(args.seed + 1000 + index)
        try:
            for _ in range(args.requests):
                try:
                    await client.query(rng.randrange(args.pages))
                    stats["ok"] += 1
                except DegradedServiceError:
                    stats["shed"] += 1
        finally:
            await client.close()

    async def run() -> dict:
        stats = {"ok": 0, "shed": 0}
        started = _time.monotonic()
        await asyncio.gather(
            *(run_client(index, stats) for index in range(args.clients))
        )
        stats["wall_s"] = _time.monotonic() - started
        return stats

    stats = asyncio.run(run())
    total = stats["ok"] + stats["shed"]
    qps = stats["ok"] / stats["wall_s"] if stats["wall_s"] > 0 else 0.0
    shed_rate = stats["shed"] / total if total else 0.0
    print(f"{args.clients} clients x {args.requests} requests: "
          f"{stats['ok']} served, {stats['shed']} shed "
          f"({shed_rate:.1%}) in {stats['wall_s']:.2f}s — "
          f"{qps:.1f} qps sustained")
    return 0


def _cmd_cluster_serve_backend(args: argparse.Namespace) -> int:
    import time as _time

    from .net import AdmissionController, PirServer, ServerThread
    from .obs import MetricsRegistry
    from .service.frontend import SESSION_RANDOM, QueryFrontend

    registry = MetricsRegistry()
    db = PirDatabase.create(
        make_records(args.pages, args.page_size),
        cache_capacity=args.cache,
        target_c=args.c,
        page_capacity=args.page_size,
        reserve_fraction=0.1,
        seed=args.seed,
        metrics=registry,
    )
    # Members share --seed so their data is identical, which would make
    # their session-id streams identical too — fatal behind the router
    # (ids must be unique cluster-wide).  Salt each process uniquely
    # unless the operator pinned a salt explicitly.
    session_salt = args.session_salt or os.urandom(8).hex()
    frontend = QueryFrontend(
        db,
        metrics=registry,
        session_id_mode=SESSION_RANDOM,
        session_ttl=args.session_ttl,
        time_source=_time.monotonic,
        reply_cache_path=args.reply_cache or None,
        session_salt=session_salt,
    )
    admission = AdmissionController(
        max_sessions=args.max_sessions,
        max_queue_depth=args.queue_depth,
        metrics=registry,
    )
    server = PirServer(
        frontend,
        host=args.host,
        port=args.port,
        admission=admission,
        queue_depth=args.queue_depth,
        reap_interval=args.session_ttl,
        adopt_sessions=True,
        metrics=registry,
    )
    handle = ServerThread(server).start()
    print(f"cluster backend: {args.pages} pages on "
          f"{handle.host}:{handle.port} (seed={args.seed}, "
          f"session adoption on)", flush=True)
    try:
        if args.duration > 0:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        print("\ndraining...", flush=True)
    finally:
        handle.drain()
        db.close()
    snapshot = registry.snapshot()
    rows = sorted(
        (name, value) for name, value in snapshot["counters"].items()
        if name.startswith(("net.", "frontend."))
    )
    if rows:
        print(_format_table(["counter", "value"], rows))
    return 0


def _cmd_cluster_serve_router(args: argparse.Namespace) -> int:
    import time as _time

    from .cluster import BackendSpec, ClusterRouter, RouterThread
    from .obs import MetricsRegistry

    registry = MetricsRegistry()
    specs = [BackendSpec.parse(text) for text in args.backend]
    router = ClusterRouter(
        specs,
        host=args.host,
        port=args.port,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        eject_after=args.eject_after,
        readmit_after=args.readmit_after,
        metrics=registry,
    )
    handle = RouterThread(router).start()
    print(f"cluster router on {handle.host}:{handle.port} fronting "
          f"{len(specs)} backend(s): "
          + ", ".join(spec.address for spec in specs), flush=True)
    try:
        if args.duration > 0:
            _time.sleep(args.duration)
        else:
            while True:
                _time.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopping...", flush=True)
    finally:
        handle.stop()
    snapshot = registry.snapshot()
    rows = sorted(
        (name, value) for name, value in snapshot["counters"].items()
        if name.startswith("cluster.")
    )
    rows.extend(sorted(
        (name, value) for name, value in snapshot["gauges"].items()
        if name.startswith("cluster.")
    ))
    if rows:
        print(_format_table(["metric", "value"], rows))
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _cmd_sweep(args: argparse.Namespace) -> int:
    caches = [int(value) for value in args.caches.split(",") if value]
    points = run_engine_sweep(
        num_records=args.pages,
        cache_capacities=caches,
        target_c=args.c,
        trials=args.trials,
        workload_length=args.workload,
        seed=args.seed,
    )
    print(_format_table(
        ["m", "k", "c achieved", "c measured", "mean latency (s)"],
        [
            [p.cache_capacity, p.block_size, p.achieved_c, p.measured_c,
             p.mean_latency]
            for p in points
        ],
    ))
    if args.out:
        written = write_csv(args.out, EnginePoint.csv_header(),
                            [p.csv_row() for p in points])
        print(f"wrote {written} rows to {args.out}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="c-approximate secure-hardware PIR (Bakiras & "
                    "Nikolopoulos, SDM@VLDB 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="resolve (n, m, c) into k and costs")
    solve.add_argument("--pages", type=int, required=True, help="database pages n")
    solve.add_argument("--cache", type=int, required=True, help="cache pages m")
    solve.add_argument("--c", type=float, default=2.0, help="privacy target c")
    solve.add_argument("--page-size", type=int, default=1000, help="page bytes B")
    solve.set_defaults(handler=_cmd_solve)

    headline = sub.add_parser("headline", help="§5 headline numbers table")
    headline.set_defaults(handler=_cmd_headline)

    figure = sub.add_parser("figure", help="print a paper figure's series")
    figure.add_argument("number", choices=["4", "5", "6", "7"])
    figure.set_defaults(handler=_cmd_figure)

    privacy = sub.add_parser("privacy", help="Monte-Carlo landing experiment")
    privacy.add_argument("--pages", type=int, default=40)
    privacy.add_argument("--cache", type=int, default=8)
    privacy.add_argument("--c", type=float, default=2.0)
    privacy.add_argument("--trials", type=int, default=500)
    privacy.add_argument("--seed", type=int, default=1)
    privacy.set_defaults(handler=_cmd_privacy)

    sweep = sub.add_parser("sweep", help="executed cache-size sweep (+CSV)")
    sweep.add_argument("--pages", type=int, default=60)
    sweep.add_argument("--caches", default="4,8,16",
                       help="comma-separated cache sizes")
    sweep.add_argument("--c", type=float, default=2.0)
    sweep.add_argument("--trials", type=int, default=200)
    sweep.add_argument("--workload", type=int, default=100)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--out", default="", help="optional CSV output path")
    sweep.set_defaults(handler=_cmd_sweep)

    demo = sub.add_parser("demo", help="end-to-end exercise of the system")
    demo.add_argument("--pages", type=int, default=48)
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(handler=_cmd_demo)

    metrics = sub.add_parser(
        "metrics",
        help="traced workload: per-phase totals, registry, Eq. 8 ratios",
    )
    metrics.add_argument("--queries", type=int, default=100)
    metrics.add_argument("--pages", type=int, default=64)
    metrics.add_argument("--cache", type=int, default=8)
    metrics.add_argument("--c", type=float, default=2.0)
    metrics.add_argument("--page-size", type=int, default=64, dest="page_size")
    metrics.add_argument("--seed", type=int, default=1)
    metrics.add_argument("--fine", action="store_true",
                         help="also emit per-frame crypto spans")
    metrics.add_argument("--trace", action="store_true",
                         help="include individual span rows in --out JSONL")
    metrics.add_argument("--out", default="", help="JSONL output path")
    metrics.set_defaults(handler=_cmd_metrics)

    planp = sub.add_parser(
        "plan",
        help="invert the cost model: target (p99, QPS, c) -> parameters",
    )
    planp.add_argument("--pages", type=int, default=10**6,
                       help="database size n in pages")
    planp.add_argument("--page-size", type=int, default=1000,
                       dest="page_size")
    planp.add_argument("--p99", type=float, default=0.05,
                       help="p99 latency bound in seconds")
    planp.add_argument("--qps", type=float, default=10.0,
                       help="sustained query rate to provision for")
    privacy = planp.add_mutually_exclusive_group()
    privacy.add_argument("--c", type=float, default=2.0,
                         help="privacy bound c (Eq. 6)")
    privacy.add_argument("--epsilon", type=float, default=None,
                         help="Toledo-style relaxed bound; c = e^epsilon")
    planp.add_argument("--calibrate", choices=("spec", "probe"),
                       default="spec",
                       help="unit costs from Eq. 8 spec constants or a "
                            "short self-measured probe run")
    planp.add_argument("--obs", action="append", default=[],
                       metavar="JSONL",
                       help="calibrate from obs JSONL export(s); "
                            "repeatable, overrides --calibrate")
    planp.add_argument("--units", type=int, default=1,
                       help="pooled coprocessor units (scales the spec)")
    planp.add_argument("--max-shards", type=int, default=64,
                       dest="max_shards")
    planp.add_argument("--queries", type=int, default=32,
                       help="probe/verify query count")
    planp.add_argument("--seed", type=int, default=1234)
    planp.add_argument("--verify", action="store_true",
                       help="measure the plan and report per-term "
                            "prediction error")
    planp.add_argument("--tolerance", type=float, default=0.15,
                       help="max per-phase verification error")
    planp.add_argument("--json", action="store_true")
    planp.set_defaults(handler=_cmd_plan)

    serve = sub.add_parser(
        "serve",
        help="serve a seeded database over TCP with admission control",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--pages", type=int, default=64)
    serve.add_argument("--cache", type=int, default=8)
    serve.add_argument("--c", type=float, default=2.0)
    serve.add_argument("--page-size", type=int, default=64, dest="page_size")
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--workers", type=int, default=1,
                       help="engine worker threads (>1 needs sharding)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       dest="queue_depth",
                       help="bounded request queue; beyond it requests "
                            "are shed with a retryable refusal")
    serve.add_argument("--max-sessions", type=int, default=256,
                       dest="max_sessions")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="token-bucket requests/second (0 = unlimited)")
    serve.add_argument("--burst", type=float, default=0.0,
                       help="token-bucket burst capacity (default: --rate)")
    serve.add_argument("--session-ttl", type=float, default=300.0,
                       dest="session_ttl",
                       help="idle seconds before a session is reaped")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="serve for this many seconds then drain "
                            "(0 = until Ctrl-C)")
    serve.set_defaults(handler=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running serve instance with concurrent clients",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument("--requests", type=int, default=50,
                         help="queries per client")
    loadgen.add_argument("--pages", type=int, default=64,
                         help="page-id range to query (match the server)")
    loadgen.add_argument("--seed", type=int, default=1)
    loadgen.set_defaults(handler=_cmd_loadgen)

    cluster = sub.add_parser(
        "cluster", help="fault-tolerant tier: routed backends with failover"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    backend = cluster_sub.add_parser(
        "serve-backend",
        help="one cluster member: serve with session adoption enabled",
    )
    backend.add_argument("--host", default="127.0.0.1")
    backend.add_argument("--port", type=int, default=0,
                         help="TCP port (0 picks a free one)")
    backend.add_argument("--pages", type=int, default=64)
    backend.add_argument("--cache", type=int, default=8)
    backend.add_argument("--c", type=float, default=2.0)
    backend.add_argument("--page-size", type=int, default=64,
                         dest="page_size")
    backend.add_argument("--seed", type=int, default=1,
                         help="same seed on every member = identical data")
    backend.add_argument("--session-salt", default="", dest="session_salt",
                         help="diversifies session ids across same-seed "
                              "members (default: fresh random salt per "
                              "process — ids must be unique cluster-wide)")
    backend.add_argument("--queue-depth", type=int, default=64,
                         dest="queue_depth")
    backend.add_argument("--max-sessions", type=int, default=256,
                         dest="max_sessions")
    backend.add_argument("--session-ttl", type=float, default=300.0,
                         dest="session_ttl")
    backend.add_argument("--reply-cache", default="", dest="reply_cache",
                         help="persistent reply-cache path (survives "
                              "crash-restart; keeps retransmissions "
                              "exactly-once)")
    backend.add_argument("--duration", type=float, default=0.0,
                         help="serve this many seconds then drain "
                              "(0 = until Ctrl-C)")
    backend.set_defaults(handler=_cmd_cluster_serve_backend)

    router = cluster_sub.add_parser(
        "serve-router",
        help="front N backends with health-gated routing and failover",
    )
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one)")
    router.add_argument("--backend", action="append", required=True,
                        help="host:port of a member (repeatable)")
    router.add_argument("--probe-interval", type=float, default=0.2,
                        dest="probe_interval")
    router.add_argument("--probe-timeout", type=float, default=2.0,
                        dest="probe_timeout")
    router.add_argument("--eject-after", type=int, default=3,
                        dest="eject_after",
                        help="consecutive probe failures before ejection")
    router.add_argument("--readmit-after", type=int, default=2,
                        dest="readmit_after",
                        help="consecutive probe successes before readmission")
    router.add_argument("--duration", type=float, default=0.0,
                        help="route this many seconds then stop "
                             "(0 = until Ctrl-C)")
    router.set_defaults(handler=_cmd_cluster_serve_router)

    report = sub.add_parser(
        "report", help="write a full markdown reproduction report"
    )
    report.add_argument("--out", default="", help="output path (default stdout)")
    report.add_argument("--trials", type=int, default=400)
    report.add_argument("--seed", type=int, default=1)
    report.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
