"""Cryptographic substrate: AES, CTR mode, HMAC, HKDF, PRG, page framing.

The paper's prototype relies on Crypto++ inside an IBM 4764 coprocessor; this
package is the equivalent built from scratch (see DESIGN.md §3).  Most callers
only need :class:`~repro.crypto.suite.CipherSuite` and
:class:`~repro.crypto.rng.SecureRandom`.
"""

from .aes import AES, BLOCK_SIZE, default_accel, set_default_accel
from .kdf import derive_key, hkdf_expand, hkdf_extract
from .mac import TAG_SIZE, hmac_sha256, verify_hmac
from .modes import NONCE_SIZE, ctr_keystream, ctr_keystream_batch, ctr_transform
from .pipeline import KeystreamPipeline
from .rng import SecureRandom
from .sha256 import Sha256, sha256
from .suite import BACKENDS, FRAME_OVERHEAD, CipherSuite

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "default_accel",
    "set_default_accel",
    "derive_key",
    "hkdf_expand",
    "hkdf_extract",
    "TAG_SIZE",
    "hmac_sha256",
    "verify_hmac",
    "NONCE_SIZE",
    "ctr_keystream",
    "ctr_keystream_batch",
    "ctr_transform",
    "KeystreamPipeline",
    "SecureRandom",
    "Sha256",
    "sha256",
    "BACKENDS",
    "FRAME_OVERHEAD",
    "CipherSuite",
]
