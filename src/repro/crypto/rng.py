"""Random number generation for the secure coprocessor.

Two requirements pull in different directions:

* the *algorithm's* security rests on the coprocessor's random choices
  (cache victim, in-block slot, rejection-sampled page id) being unpredictable
  to the server;
* the *experiments* must be reproducible, so every simulation accepts a seed.

:class:`SecureRandom` wraps a deterministic PRG seeded either from the OS
(``os.urandom``) for deployment-style use or from an explicit integer for
experiments.  The core generator is ChaCha-free by design: a simple
counter-mode SHA-256 PRG, which is plenty for simulation and keeps the
dependency surface at ``hashlib``.  All draws used by the retrieval algorithm
go through the small, audited surface below (``randrange``, ``shuffle``,
``token``), making it easy to see exactly what randomness the scheme consumes.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, MutableSequence, Optional, Sequence, TypeVar

from ..errors import CryptoError

__all__ = ["SecureRandom"]

T = TypeVar("T")


class SecureRandom:
    """Deterministic (seedable) PRG with a CSPRNG-style interface.

    The stream is SHA-256 in counter mode over the seed — indistinguishable
    from random for any adversary that cannot invert SHA-256, and exactly
    reproducible given the seed.

    >>> a, b = SecureRandom(7), SecureRandom(7)
    >>> [a.randrange(100) for _ in range(4)] == [b.randrange(100) for _ in range(4)]
    True
    """

    def __init__(self, seed: Optional[int] = None):
        if seed is None:
            seed_bytes = os.urandom(32)
        else:
            if seed < 0:
                raise CryptoError("seed must be non-negative")
            seed_bytes = seed.to_bytes(32, "big", signed=False) if seed < 2**256 else (
                hashlib.sha256(str(seed).encode()).digest()
            )
        self._seed = seed_bytes
        self._counter = 0
        self._buffer = b""
        self._offset = 0

    # -- raw stream -----------------------------------------------------------

    def _refill(self) -> None:
        block = hashlib.sha256(
            self._seed + self._counter.to_bytes(8, "big")
        ).digest()
        self._counter += 1
        self._buffer = block
        self._offset = 0

    def token(self, length: int) -> bytes:
        """Return ``length`` pseudorandom bytes (used for nonces)."""
        if length < 0:
            raise CryptoError("token length must be non-negative")
        parts: List[bytes] = []
        remaining = length
        while remaining > 0:
            if self._offset >= len(self._buffer):
                self._refill()
            chunk = self._buffer[self._offset : self._offset + remaining]
            self._offset += len(chunk)
            remaining -= len(chunk)
            parts.append(chunk)
        return b"".join(parts)

    # -- integers -------------------------------------------------------------

    def randrange(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)`` via rejection sampling (no modulo bias)."""
        if upper <= 0:
            raise CryptoError("randrange upper bound must be positive")
        if upper == 1:
            return 0
        num_bytes = (upper.bit_length() + 7) // 8
        # Largest multiple of `upper` representable in num_bytes bytes.
        span = 256**num_bytes
        limit = span - (span % upper)
        while True:
            candidate = int.from_bytes(self.token(num_bytes), "big")
            if candidate < limit:
                return candidate % upper

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise CryptoError("randint requires low <= high")
        return low + self.randrange(high - low + 1)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return self.randrange(1 << 53) / float(1 << 53)

    # -- sequences --------------------------------------------------------------

    def shuffle(self, items: MutableSequence[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def sample(self, population: Sequence[T], count: int) -> List[T]:
        """``count`` distinct elements drawn uniformly without replacement."""
        if count < 0 or count > len(population):
            raise CryptoError("sample size out of range")
        pool = list(population)
        for i in range(count):
            j = self.randint(i, len(pool) - 1)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:count]

    def choice(self, population: Sequence[T]) -> T:
        """One uniform element of a non-empty sequence."""
        if not population:
            raise CryptoError("choice from empty sequence")
        return population[self.randrange(len(population))]

    def spawn(self, label: str) -> "SecureRandom":
        """Derive an independent child generator (for parallel components)."""
        child_seed = hashlib.sha256(self._seed + b"spawn:" + label.encode()).digest()
        child = SecureRandom(0)
        child._seed = child_seed
        return child
