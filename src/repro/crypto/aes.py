"""Pure-Python AES block cipher (FIPS-197).

The paper's prototype uses Crypto++ AES inside the secure coprocessor; this
module is the from-scratch equivalent.  It implements the raw 128-bit block
transform for AES-128, AES-192 and AES-256, validated against the official
FIPS-197 appendix vectors (see ``tests/test_crypto_aes.py``).

Performance note: this is a reference implementation driven through table
lookups (T-tables are deliberately *not* used to keep the code auditable).
Throughput numbers in the paper's evaluation come from the Table-2 constant
``r_ed = 10 MB/s`` of the IBM 4764 crypto engine, not from Python speed, so
clarity wins over micro-optimisation here.  Higher-level code should prefer
:class:`repro.crypto.suite.CipherSuite` over using this class directly.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import CryptoError

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16  # bytes; AES always operates on 128-bit blocks

# ---------------------------------------------------------------------------
# S-box generation.  Rather than hard-coding 256 magic numbers, we derive the
# S-box from its definition: multiplicative inverse in GF(2^8) followed by the
# affine transform.  The result is verified against FIPS-197 in the tests.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    product = 0
    for _ in range(8):
        if b & 1:
            product ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return product


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inverse of 0 is defined as 0."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 is the inverse (Fermat's little theorem for fields).
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, base)
        base = _gf_mul(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> Tuple[bytes, bytes]:
    """Return (sbox, inverse_sbox) built from the algebraic definition."""
    sbox = bytearray(256)
    inv = bytearray(256)
    for value in range(256):
        x = _gf_inverse(value)
        # Affine transform: b_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7} ^ c_i
        y = 0
        for bit in range(8):
            b = (
                (x >> bit)
                ^ (x >> ((bit + 4) % 8))
                ^ (x >> ((bit + 5) % 8))
                ^ (x >> ((bit + 6) % 8))
                ^ (x >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            y |= b << bit
        sbox[value] = y
        inv[y] = value
    return bytes(sbox), bytes(inv)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for the key schedule: rcon[i] = x^i in GF(2^8).
_RCON = [1]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Precomputed GF multiplication tables for the MixColumns coefficients.
_MUL2 = bytes(_gf_mul(i, 2) for i in range(256))
_MUL3 = bytes(_gf_mul(i, 3) for i in range(256))
_MUL9 = bytes(_gf_mul(i, 9) for i in range(256))
_MUL11 = bytes(_gf_mul(i, 11) for i in range(256))
_MUL13 = bytes(_gf_mul(i, 13) for i in range(256))
_MUL14 = bytes(_gf_mul(i, 14) for i in range(256))

_ROUNDS_BY_KEY_LENGTH = {16: 10, 24: 12, 32: 14}


class AES:
    """Raw AES block transform with a fixed key.

    >>> cipher = AES(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEY_LENGTH:
            raise CryptoError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self._rounds = _ROUNDS_BY_KEY_LENGTH[len(key)]
        self._round_keys = self._expand_key(key)

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size (10, 12 or 14)."""
        return self._rounds

    # -- key schedule -------------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion; returns one 16-byte round key per round."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            word = list(words[i - 1])
            if i % nk == 0:
                word = word[1:] + word[:1]  # RotWord
                word = [_SBOX[b] for b in word]  # SubWord
                word[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                word = [_SBOX[b] for b in word]
            word = [word[j] ^ words[i - nk][j] for j in range(4)]
            words.append(word)
        round_keys = []
        for round_index in range(self._rounds + 1):
            flat: List[int] = []
            for w in words[4 * round_index : 4 * round_index + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # -- forward transform ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = [block[i] ^ self._round_keys[0][i] for i in range(16)]
        for round_index in range(1, self._rounds):
            state = self._encrypt_round(state, self._round_keys[round_index])
        # Final round: no MixColumns.
        state = self._sub_shift(state)
        key = self._round_keys[self._rounds]
        return bytes(state[i] ^ key[i] for i in range(16))

    @staticmethod
    def _sub_shift(state: List[int]) -> List[int]:
        """SubBytes followed by ShiftRows (column-major state layout)."""
        s = _SBOX
        return [
            s[state[0]], s[state[5]], s[state[10]], s[state[15]],
            s[state[4]], s[state[9]], s[state[14]], s[state[3]],
            s[state[8]], s[state[13]], s[state[2]], s[state[7]],
            s[state[12]], s[state[1]], s[state[6]], s[state[11]],
        ]

    @staticmethod
    def _encrypt_round(state: List[int], round_key: List[int]) -> List[int]:
        """One full round: SubBytes, ShiftRows, MixColumns, AddRoundKey."""
        t = AES._sub_shift(state)
        out = [0] * 16
        for col in range(4):
            a0, a1, a2, a3 = t[4 * col : 4 * col + 4]
            out[4 * col + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3 ^ round_key[4 * col + 0]
            out[4 * col + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3 ^ round_key[4 * col + 1]
            out[4 * col + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3] ^ round_key[4 * col + 2]
            out[4 * col + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3] ^ round_key[4 * col + 3]
        return out

    # -- inverse transform ----------------------------------------------------

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        key = self._round_keys[self._rounds]
        state = [block[i] ^ key[i] for i in range(16)]
        state = self._inv_shift_sub(state)
        for round_index in range(self._rounds - 1, 0, -1):
            key = self._round_keys[round_index]
            state = [state[i] ^ key[i] for i in range(16)]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_sub(state)
        key = self._round_keys[0]
        return bytes(state[i] ^ key[i] for i in range(16))

    @staticmethod
    def _inv_shift_sub(state: List[int]) -> List[int]:
        """InvShiftRows followed by InvSubBytes."""
        s = _INV_SBOX
        return [
            s[state[0]], s[state[13]], s[state[10]], s[state[7]],
            s[state[4]], s[state[1]], s[state[14]], s[state[11]],
            s[state[8]], s[state[5]], s[state[2]], s[state[15]],
            s[state[12]], s[state[9]], s[state[6]], s[state[3]],
        ]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 * col + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[4 * col + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[4 * col + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
