"""Pure-Python AES block cipher (FIPS-197).

The paper's prototype uses Crypto++ AES inside the secure coprocessor; this
module is the from-scratch equivalent.  It implements the raw 128-bit block
transform for AES-128, AES-192 and AES-256, validated against the official
FIPS-197 appendix vectors (see ``tests/test_crypto_aes.py``).

Performance note: two forward transforms coexist.  The byte-wise *reference*
path follows FIPS-197 operation by operation and stays fully auditable; the
*accelerated* path folds SubBytes/ShiftRows/MixColumns into four 32-bit
T-tables (built once per process from the same derived S-box) and processes
the state as four column words — roughly an order of magnitude faster in
CPython, and proven byte-identical to the reference path by the seeded
differential suite in ``tests/test_crypto_accel.py``.  The accelerated path
is the default (``AES(key)``); pass ``accel=False`` — or set the module
default via :func:`set_default_accel` / the ``REPRO_AES_ACCEL=0`` environment
variable — to force the reference path (CI runs one tier-1 leg that way so
it stays exercised).  Throughput numbers in the paper's evaluation come from
the Table-2 constant ``r_ed = 10 MB/s`` of the IBM 4764 crypto engine, not
from Python speed; the fast kernel exists because this implementation's CTR
keystream (Eq. 8's re-encryption term) dominates wall time once everything
above it is batched.  Higher-level code should prefer
:class:`repro.crypto.suite.CipherSuite` over using this class directly.
"""

from __future__ import annotations

import os
import struct
import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..errors import CryptoError

try:  # optional: vectorises large batches; the int path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = ["AES", "BLOCK_SIZE", "set_default_accel", "default_accel"]

BLOCK_SIZE = 16  # bytes; AES always operates on 128-bit blocks

#: Batches at least this many blocks long take the numpy lane (when numpy
#: is importable): below it, per-call array overhead beats the gain.
VECTOR_THRESHOLD_BLOCKS = 16

# ---------------------------------------------------------------------------
# S-box generation.  Rather than hard-coding 256 magic numbers, we derive the
# S-box from its definition: multiplicative inverse in GF(2^8) followed by the
# affine transform.  The result is verified against FIPS-197 in the tests.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    product = 0
    for _ in range(8):
        if b & 1:
            product ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return product


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inverse of 0 is defined as 0."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254 is the inverse (Fermat's little theorem for fields).
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, base)
        base = _gf_mul(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> Tuple[bytes, bytes]:
    """Return (sbox, inverse_sbox) built from the algebraic definition."""
    sbox = bytearray(256)
    inv = bytearray(256)
    for value in range(256):
        x = _gf_inverse(value)
        # Affine transform: b_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7} ^ c_i
        y = 0
        for bit in range(8):
            b = (
                (x >> bit)
                ^ (x >> ((bit + 4) % 8))
                ^ (x >> ((bit + 5) % 8))
                ^ (x >> ((bit + 6) % 8))
                ^ (x >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            y |= b << bit
        sbox[value] = y
        inv[y] = value
    return bytes(sbox), bytes(inv)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for the key schedule: rcon[i] = x^i in GF(2^8).
_RCON = [1]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Precomputed GF multiplication tables for the MixColumns coefficients.
_MUL2 = bytes(_gf_mul(i, 2) for i in range(256))
_MUL3 = bytes(_gf_mul(i, 3) for i in range(256))
_MUL9 = bytes(_gf_mul(i, 9) for i in range(256))
_MUL11 = bytes(_gf_mul(i, 11) for i in range(256))
_MUL13 = bytes(_gf_mul(i, 13) for i in range(256))
_MUL14 = bytes(_gf_mul(i, 14) for i in range(256))

_ROUNDS_BY_KEY_LENGTH = {16: 10, 24: 12, 32: 14}

# ---------------------------------------------------------------------------
# T-table fast path.  Each table maps one S-boxed state byte to its packed
# 32-bit column contribution (SubBytes + MixColumns fused), so a full round
# is 16 table lookups and 16 word XORs instead of byte-wise GF arithmetic.
# The tables are derived from the same generated S-box as the reference
# path and built lazily, once per process.
# ---------------------------------------------------------------------------

_T_TABLES: Optional[Tuple[Tuple[int, ...], ...]] = None


def _build_ttables() -> Tuple[Tuple[int, ...], ...]:
    global _T_TABLES
    if _T_TABLES is None:
        t0, t1, t2, t3 = [], [], [], []
        for value in range(256):
            s = _SBOX[value]
            s2, s3 = _MUL2[s], _MUL3[s]
            t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
            t1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
            t2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
            t3.append((s << 24) | (s << 16) | (s3 << 8) | s2)
        _T_TABLES = (tuple(t0), tuple(t1), tuple(t2), tuple(t3))
    return _T_TABLES


_NP_TABLES = None


def _build_np_tables():
    """uint32 copies of the T-tables plus the S-box, for the numpy lane."""
    global _NP_TABLES
    if _NP_TABLES is None:
        tables = _build_ttables()
        _NP_TABLES = (
            tuple(_np.array(table, dtype=_np.uint32) for table in tables),
            _np.frombuffer(_SBOX, dtype=_np.uint8).astype(_np.uint32),
        )
    return _NP_TABLES


# Module default for the accel flag; AES(key) without an explicit ``accel``
# follows it.  Initialised from REPRO_AES_ACCEL so a CI leg (or a cautious
# operator) can force the auditable reference path process-wide.
_DEFAULT_ACCEL = os.environ.get("REPRO_AES_ACCEL", "1").lower() not in (
    "0", "false", "off", "no",
)


def default_accel() -> bool:
    """Current module default for :class:`AES`'s ``accel`` flag."""
    return _DEFAULT_ACCEL


def set_default_accel(enabled: bool) -> bool:
    """Set the module default accel flag; returns the previous value."""
    global _DEFAULT_ACCEL
    previous = _DEFAULT_ACCEL
    _DEFAULT_ACCEL = bool(enabled)
    return previous


class AES:
    """Raw AES block transform with a fixed key.

    >>> cipher = AES(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    def __init__(self, key: bytes, accel: Optional[bool] = None):
        if len(key) not in _ROUNDS_BY_KEY_LENGTH:
            raise CryptoError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self._rounds = _ROUNDS_BY_KEY_LENGTH[len(key)]
        self._round_keys = self._expand_key(key)
        self._accel = _DEFAULT_ACCEL if accel is None else bool(accel)
        if self._accel:
            self._tables = _build_ttables()
            # Round keys packed as big-endian column words for the T-table
            # path; one tuple of four words per round.
            self._round_key_words: List[Tuple[int, ...]] = [
                tuple(
                    int.from_bytes(bytes(flat[4 * c : 4 * c + 4]), "big")
                    for c in range(4)
                )
                for flat in self._round_keys
            ]

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size (10, 12 or 14)."""
        return self._rounds

    @property
    def accel(self) -> bool:
        """True when this instance uses the T-table fast path."""
        return self._accel

    # -- keyed-instance cache -------------------------------------------------

    _instances: "OrderedDict[Tuple[bytes, bool], AES]" = OrderedDict()
    _instances_lock = threading.Lock()
    _INSTANCE_CACHE_SIZE = 64

    @classmethod
    def for_key(cls, key: bytes, accel: Optional[bool] = None) -> "AES":
        """A shared keyed instance, LRU-cached by (key bytes, accel flag).

        Key expansion is the only per-instance state and it is immutable
        after construction, so instances are safely shared across cipher
        suites and threads.  The cache keeps the legacy-key fallback during
        rotation (``SecureCoprocessor.unseal_frames``) and repeated suite
        construction from re-expanding the same schedule.
        """
        resolved = _DEFAULT_ACCEL if accel is None else bool(accel)
        cache_key = (bytes(key), resolved)
        with cls._instances_lock:
            cipher = cls._instances.get(cache_key)
            if cipher is not None:
                cls._instances.move_to_end(cache_key)
                return cipher
        cipher = cls(key, accel=resolved)
        with cls._instances_lock:
            cls._instances[cache_key] = cipher
            cls._instances.move_to_end(cache_key)
            while len(cls._instances) > cls._INSTANCE_CACHE_SIZE:
                cls._instances.popitem(last=False)
        return cipher

    # -- key schedule -------------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion; returns one 16-byte round key per round."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            word = list(words[i - 1])
            if i % nk == 0:
                word = word[1:] + word[:1]  # RotWord
                word = [_SBOX[b] for b in word]  # SubWord
                word[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                word = [_SBOX[b] for b in word]
            word = [word[j] ^ words[i - nk][j] for j in range(4)]
            words.append(word)
        round_keys = []
        for round_index in range(self._rounds + 1):
            flat: List[int] = []
            for w in words[4 * round_index : 4 * round_index + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # -- forward transform ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        if self._accel:
            words = struct.unpack(">4I", block)
            return struct.pack(">4I", *self._encrypt_words(*words))
        return self._encrypt_block_reference(block)

    def _encrypt_block_reference(self, block: bytes) -> bytes:
        """The auditable byte-wise transform (FIPS-197 operation order)."""
        state = [block[i] ^ self._round_keys[0][i] for i in range(16)]
        for round_index in range(1, self._rounds):
            state = self._encrypt_round(state, self._round_keys[round_index])
        # Final round: no MixColumns.
        state = self._sub_shift(state)
        key = self._round_keys[self._rounds]
        return bytes(state[i] ^ key[i] for i in range(16))

    def _encrypt_words(self, w0: int, w1: int, w2: int, w3: int):
        """T-table transform of one state given as four big-endian words."""
        t0, t1, t2, t3 = self._tables
        rk = self._round_key_words
        k0, k1, k2, k3 = rk[0]
        w0 ^= k0
        w1 ^= k1
        w2 ^= k2
        w3 ^= k3
        for round_index in range(1, self._rounds):
            k0, k1, k2, k3 = rk[round_index]
            n0 = (t0[w0 >> 24] ^ t1[(w1 >> 16) & 0xFF]
                  ^ t2[(w2 >> 8) & 0xFF] ^ t3[w3 & 0xFF] ^ k0)
            n1 = (t0[w1 >> 24] ^ t1[(w2 >> 16) & 0xFF]
                  ^ t2[(w3 >> 8) & 0xFF] ^ t3[w0 & 0xFF] ^ k1)
            n2 = (t0[w2 >> 24] ^ t1[(w3 >> 16) & 0xFF]
                  ^ t2[(w0 >> 8) & 0xFF] ^ t3[w1 & 0xFF] ^ k2)
            n3 = (t0[w3 >> 24] ^ t1[(w0 >> 16) & 0xFF]
                  ^ t2[(w1 >> 8) & 0xFF] ^ t3[w2 & 0xFF] ^ k3)
            w0, w1, w2, w3 = n0, n1, n2, n3
        s = _SBOX
        k0, k1, k2, k3 = rk[self._rounds]
        return (
            ((s[w0 >> 24] << 24) | (s[(w1 >> 16) & 0xFF] << 16)
             | (s[(w2 >> 8) & 0xFF] << 8) | s[w3 & 0xFF]) ^ k0,
            ((s[w1 >> 24] << 24) | (s[(w2 >> 16) & 0xFF] << 16)
             | (s[(w3 >> 8) & 0xFF] << 8) | s[w0 & 0xFF]) ^ k1,
            ((s[w2 >> 24] << 24) | (s[(w3 >> 16) & 0xFF] << 16)
             | (s[(w0 >> 8) & 0xFF] << 8) | s[w1 & 0xFF]) ^ k2,
            ((s[w3 >> 24] << 24) | (s[(w0 >> 16) & 0xFF] << 16)
             | (s[(w1 >> 8) & 0xFF] << 8) | s[w2 & 0xFF]) ^ k3,
        )

    def encrypt_blocks(self, data: bytes) -> bytes:
        """Encrypt a concatenation of 16-byte blocks in one call.

        The batch entry point for CTR keystream generation
        (:func:`repro.crypto.modes.ctr_keystream` builds every counter
        block of a message up front and feeds them through here): one
        struct unpack/pack pair and one Python-level loop for the whole
        message instead of one ``encrypt_block`` call — with its argument
        checks and bytes round-trips — per 16-byte block.  Batches of at
        least :data:`VECTOR_THRESHOLD_BLOCKS` blocks additionally run the
        rounds as numpy uint32 array ops over all blocks at once (when
        numpy is importable).  Output is byte-identical across the
        reference, int T-table and vectorised paths — all integer
        arithmetic, proven by the differential suite.
        """
        length = len(data)
        if length % BLOCK_SIZE:
            raise CryptoError(
                f"batch length must be a multiple of {BLOCK_SIZE}, got {length}"
            )
        if length == 0:
            return b""
        if not self._accel:
            encrypt = self._encrypt_block_reference
            return b"".join(
                encrypt(data[offset : offset + BLOCK_SIZE])
                for offset in range(0, length, BLOCK_SIZE)
            )
        count = length // BLOCK_SIZE
        if _np is not None and count >= VECTOR_THRESHOLD_BLOCKS:
            return self._encrypt_blocks_vector(data, count)
        words = struct.unpack(f">{4 * count}I", data)
        out: List[int] = []
        extend = out.extend
        encrypt_words = self._encrypt_words
        for index in range(0, 4 * count, 4):
            extend(encrypt_words(words[index], words[index + 1],
                                 words[index + 2], words[index + 3]))
        return struct.pack(f">{4 * count}I", *out)

    def _encrypt_blocks_vector(self, data: bytes, count: int) -> bytes:
        """Rounds as uint32 array ops, all blocks in lock-step.

        Same T-tables, same word layout as :meth:`_encrypt_words` — each
        Python-level round performs the 16 table gathers and XORs for the
        *whole* batch, so the per-block interpreter cost amortises away.
        """
        (t0, t1, t2, t3), sbox = _build_np_tables()
        words = _np.frombuffer(data, dtype=">u4").astype(_np.uint32)
        state = words.reshape(count, 4)
        w0, w1, w2, w3 = state[:, 0], state[:, 1], state[:, 2], state[:, 3]
        rk = self._round_key_words
        k0, k1, k2, k3 = rk[0]
        w0, w1, w2, w3 = w0 ^ k0, w1 ^ k1, w2 ^ k2, w3 ^ k3
        for round_index in range(1, self._rounds):
            k0, k1, k2, k3 = rk[round_index]
            n0 = (t0[w0 >> 24] ^ t1[(w1 >> 16) & 0xFF]
                  ^ t2[(w2 >> 8) & 0xFF] ^ t3[w3 & 0xFF] ^ k0)
            n1 = (t0[w1 >> 24] ^ t1[(w2 >> 16) & 0xFF]
                  ^ t2[(w3 >> 8) & 0xFF] ^ t3[w0 & 0xFF] ^ k1)
            n2 = (t0[w2 >> 24] ^ t1[(w3 >> 16) & 0xFF]
                  ^ t2[(w0 >> 8) & 0xFF] ^ t3[w1 & 0xFF] ^ k2)
            n3 = (t0[w3 >> 24] ^ t1[(w0 >> 16) & 0xFF]
                  ^ t2[(w1 >> 8) & 0xFF] ^ t3[w2 & 0xFF] ^ k3)
            w0, w1, w2, w3 = n0, n1, n2, n3
        k0, k1, k2, k3 = rk[self._rounds]
        out = _np.empty((count, 4), dtype=_np.uint32)
        out[:, 0] = ((sbox[w0 >> 24] << 24) | (sbox[(w1 >> 16) & 0xFF] << 16)
                     | (sbox[(w2 >> 8) & 0xFF] << 8) | sbox[w3 & 0xFF]) ^ k0
        out[:, 1] = ((sbox[w1 >> 24] << 24) | (sbox[(w2 >> 16) & 0xFF] << 16)
                     | (sbox[(w3 >> 8) & 0xFF] << 8) | sbox[w0 & 0xFF]) ^ k1
        out[:, 2] = ((sbox[w2 >> 24] << 24) | (sbox[(w3 >> 16) & 0xFF] << 16)
                     | (sbox[(w0 >> 8) & 0xFF] << 8) | sbox[w1 & 0xFF]) ^ k2
        out[:, 3] = ((sbox[w3 >> 24] << 24) | (sbox[(w0 >> 16) & 0xFF] << 16)
                     | (sbox[(w1 >> 8) & 0xFF] << 8) | sbox[w2 & 0xFF]) ^ k3
        return out.astype(">u4").tobytes()

    @staticmethod
    def _sub_shift(state: List[int]) -> List[int]:
        """SubBytes followed by ShiftRows (column-major state layout)."""
        s = _SBOX
        return [
            s[state[0]], s[state[5]], s[state[10]], s[state[15]],
            s[state[4]], s[state[9]], s[state[14]], s[state[3]],
            s[state[8]], s[state[13]], s[state[2]], s[state[7]],
            s[state[12]], s[state[1]], s[state[6]], s[state[11]],
        ]

    @staticmethod
    def _encrypt_round(state: List[int], round_key: List[int]) -> List[int]:
        """One full round: SubBytes, ShiftRows, MixColumns, AddRoundKey."""
        t = AES._sub_shift(state)
        out = [0] * 16
        for col in range(4):
            a0, a1, a2, a3 = t[4 * col : 4 * col + 4]
            out[4 * col + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3 ^ round_key[4 * col + 0]
            out[4 * col + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3 ^ round_key[4 * col + 1]
            out[4 * col + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3] ^ round_key[4 * col + 2]
            out[4 * col + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3] ^ round_key[4 * col + 3]
        return out

    # -- inverse transform ----------------------------------------------------

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        key = self._round_keys[self._rounds]
        state = [block[i] ^ key[i] for i in range(16)]
        state = self._inv_shift_sub(state)
        for round_index in range(self._rounds - 1, 0, -1):
            key = self._round_keys[round_index]
            state = [state[i] ^ key[i] for i in range(16)]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_sub(state)
        key = self._round_keys[0]
        return bytes(state[i] ^ key[i] for i in range(16))

    @staticmethod
    def _inv_shift_sub(state: List[int]) -> List[int]:
        """InvShiftRows followed by InvSubBytes."""
        s = _INV_SBOX
        return [
            s[state[0]], s[state[13]], s[state[10]], s[state[7]],
            s[state[4]], s[state[1]], s[state[14]], s[state[11]],
            s[state[8]], s[state[5]], s[state[2]], s[state[15]],
            s[state[12]], s[state[9]], s[state[6]], s[state[3]],
        ]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col : 4 * col + 4]
            out[4 * col + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[4 * col + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[4 * col + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[4 * col + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
