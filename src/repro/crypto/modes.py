"""Block cipher modes of operation.

Only CTR mode is needed by the system: pages are re-encrypted with a fresh
random nonce on every write-back (Figure 3, line 21), so a stream mode with
no padding is the natural fit.  CTR keystream blocks are ``E_K(nonce || ctr)``
with a 12-byte nonce and a 4-byte big-endian block counter, matching the
layout used by standard AES-CTR/GCM deployments.
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE
from ..errors import CryptoError

__all__ = ["ctr_transform", "ctr_keystream", "NONCE_SIZE"]

NONCE_SIZE = 12  # bytes of random nonce per encryption; 4 bytes left for the counter


def ctr_keystream(
    cipher: AES, nonce: bytes, length: int, initial_counter: int = 0
) -> bytes:
    """Raw CTR keystream bytes for one (key, nonce) pair.

    Exposed separately from :func:`ctr_transform` so batched callers
    (:meth:`repro.crypto.suite.CipherSuite.encrypt_pages`) can concatenate
    the keystreams of many frames and XOR them against the payloads in a
    single big-int operation; the per-block expansion — and therefore the
    bytes produced — is identical to the transform path.  The keyed
    ``cipher`` carries its round keys, so a batch shares one key schedule.
    """
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"CTR nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if initial_counter < 0:
        raise CryptoError("initial_counter must be non-negative")
    if length < 0:
        raise CryptoError("keystream length must be non-negative")
    block_count = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    if initial_counter + block_count > 2**32:
        raise CryptoError("CTR counter would overflow 32 bits for this message")
    encrypt = cipher.encrypt_block
    return b"".join(
        encrypt(nonce + (initial_counter + block_index).to_bytes(4, "big"))
        for block_index in range(block_count)
    )[:length]


def ctr_transform(cipher: AES, nonce: bytes, data: bytes, initial_counter: int = 0) -> bytes:
    """Encrypt or decrypt ``data`` under CTR mode (the operation is its own inverse).

    Parameters
    ----------
    cipher:
        A keyed :class:`~repro.crypto.aes.AES` instance.
    nonce:
        Exactly :data:`NONCE_SIZE` bytes.  Each (key, nonce) pair must be used
        for at most one message; :class:`repro.crypto.suite.CipherSuite` draws
        nonces from a CSPRNG per page write to enforce this.
    data:
        Arbitrary-length plaintext or ciphertext.
    initial_counter:
        Starting value of the 32-bit block counter (useful for seeking).
    """
    keystream = ctr_keystream(cipher, nonce, len(data), initial_counter)
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(len(data), "little")
