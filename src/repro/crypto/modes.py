"""Block cipher modes of operation.

Only CTR mode is needed by the system: pages are re-encrypted with a fresh
random nonce on every write-back (Figure 3, line 21), so a stream mode with
no padding is the natural fit.  CTR keystream blocks are ``E_K(nonce || ctr)``
with a 12-byte nonce and a 4-byte big-endian block counter, matching the
layout used by standard AES-CTR/GCM deployments.

The keystream is produced by materialising *every* counter block of a
message up front (strided writes into one preallocated buffer — no
per-block ``nonce + int.to_bytes`` concatenation) and pushing the whole
buffer through :meth:`repro.crypto.aes.AES.encrypt_blocks` in a single
call.  That keeps the per-block Python overhead out of the hot loop on
both the reference and the T-table/vectorised fast paths, and lets
:func:`ctr_keystream_batch` fuse the counter blocks of many frames into
one kernel entry (the shape :meth:`repro.crypto.suite.CipherSuite
.decrypt_pages` uses, big enough for the numpy lane to engage).
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from .aes import AES, BLOCK_SIZE
from ..errors import CryptoError

__all__ = [
    "ctr_transform",
    "ctr_keystream",
    "ctr_keystream_batch",
    "NONCE_SIZE",
]

NONCE_SIZE = 12  # bytes of random nonce per encryption; 4 bytes left for the counter


def _check_nonce_counter(nonce: bytes, initial_counter: int, length: int) -> int:
    """Validate one (nonce, counter, length) triple; returns the block count."""
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"CTR nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if initial_counter < 0:
        raise CryptoError("initial_counter must be non-negative")
    if length < 0:
        raise CryptoError("keystream length must be non-negative")
    block_count = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    if initial_counter + block_count > 2**32:
        raise CryptoError("CTR counter would overflow 32 bits for this message")
    return block_count


def _counter_blocks(
    buffer: bytearray, offset: int, nonce: bytes, initial_counter: int,
    block_count: int,
) -> None:
    """Fill ``buffer[offset:offset + 16*block_count]`` with counter blocks.

    Strided slice assignment materialises the repeated nonce and the packed
    big-endian counters in C, so building the blocks costs a constant number
    of Python operations regardless of message length.
    """
    end = offset + block_count * BLOCK_SIZE
    counters = struct.pack(
        f">{block_count}I",
        *range(initial_counter, initial_counter + block_count),
    )
    for index in range(NONCE_SIZE):
        buffer[offset + index : end : BLOCK_SIZE] = nonce[index:index + 1] * block_count
    for index in range(4):
        buffer[offset + NONCE_SIZE + index : end : BLOCK_SIZE] = counters[index::4]


def ctr_keystream(
    cipher: AES, nonce: bytes, length: int, initial_counter: int = 0
) -> bytes:
    """Raw CTR keystream bytes for one (key, nonce) pair.

    Exposed separately from :func:`ctr_transform` so batched callers
    (:meth:`repro.crypto.suite.CipherSuite.encrypt_pages`) can concatenate
    the keystreams of many frames and XOR them against the payloads in a
    single big-int operation; the per-block expansion — and therefore the
    bytes produced — is identical to the transform path.  The keyed
    ``cipher`` carries its round keys, so a batch shares one key schedule.
    """
    block_count = _check_nonce_counter(nonce, initial_counter, length)
    if block_count == 0:
        return b""
    buffer = bytearray(block_count * BLOCK_SIZE)
    _counter_blocks(buffer, 0, nonce, initial_counter, block_count)
    return cipher.encrypt_blocks(bytes(buffer))[:length]


def ctr_keystream_batch(
    cipher: AES,
    nonces: Sequence[bytes],
    lengths: Sequence[int],
    initial_counter: int = 0,
) -> List[bytes]:
    """Keystreams for many (nonce, length) pairs in one kernel entry.

    Byte-identical to calling :func:`ctr_keystream` per pair, but the
    counter blocks of every frame go through a single
    :meth:`~repro.crypto.aes.AES.encrypt_blocks` call — the whole batch
    crosses the 16-block numpy-lane threshold even when each individual
    frame is only a handful of blocks.
    """
    if len(nonces) != len(lengths):
        raise CryptoError("need exactly one length per nonce")
    block_counts = [
        _check_nonce_counter(nonce, initial_counter, length)
        for nonce, length in zip(nonces, lengths)
    ]
    total_blocks = sum(block_counts)
    if total_blocks == 0:
        return [b"" for _ in nonces]
    buffer = bytearray(total_blocks * BLOCK_SIZE)
    offset = 0
    for nonce, block_count in zip(nonces, block_counts):
        if block_count:
            _counter_blocks(buffer, offset, nonce, initial_counter, block_count)
            offset += block_count * BLOCK_SIZE
    stream = cipher.encrypt_blocks(bytes(buffer))
    out: List[bytes] = []
    offset = 0
    for length, block_count in zip(lengths, block_counts):
        out.append(stream[offset : offset + length])
        offset += block_count * BLOCK_SIZE
    return out


def ctr_transform(cipher: AES, nonce: bytes, data: bytes, initial_counter: int = 0) -> bytes:
    """Encrypt or decrypt ``data`` under CTR mode (the operation is its own inverse).

    Parameters
    ----------
    cipher:
        A keyed :class:`~repro.crypto.aes.AES` instance.
    nonce:
        Exactly :data:`NONCE_SIZE` bytes.  Each (key, nonce) pair must be used
        for at most one message; :class:`repro.crypto.suite.CipherSuite` draws
        nonces from a CSPRNG per page write to enforce this.
    data:
        Arbitrary-length plaintext or ciphertext.
    initial_counter:
        Starting value of the 32-bit block counter (useful for seeking).
    """
    keystream = ctr_keystream(cipher, nonce, len(data), initial_counter)
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(len(data), "little")
