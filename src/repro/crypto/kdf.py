"""Key derivation for the secure coprocessor.

A single master key lives inside the tamper boundary; per-purpose subkeys
(page encryption, page authentication, permutation tags) are derived from it
with HKDF-SHA256 (RFC 5869) so that compromising one purpose never leaks
another.  Implemented from :func:`repro.crypto.mac.hmac_sha256`.
"""

from __future__ import annotations

from .mac import hmac_sha256
from ..errors import CryptoError

__all__ = ["hkdf_extract", "hkdf_expand", "derive_key"]

_HASH_LEN = 32


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: concentrate entropy into a pseudorandom key."""
    if not salt:
        salt = bytes(_HASH_LEN)
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudorandom_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: stretch a pseudorandom key into ``length`` output bytes."""
    if length <= 0:
        raise CryptoError("HKDF output length must be positive")
    if length > 255 * _HASH_LEN:
        raise CryptoError("HKDF output length exceeds 255 * hash length")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(pseudorandom_key, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(master_key: bytes, purpose: str, length: int = 16) -> bytes:
    """Derive a named subkey from the coprocessor master key.

    >>> k1 = derive_key(b"master", "page-encryption")
    >>> k2 = derive_key(b"master", "page-authentication")
    >>> k1 != k2
    True
    """
    if not master_key:
        raise CryptoError("master key must be non-empty")
    if not purpose:
        raise CryptoError("purpose label must be non-empty")
    pseudorandom_key = hkdf_extract(b"repro-secure-hardware-pir", master_key)
    return hkdf_expand(pseudorandom_key, purpose.encode("utf-8"), length)
