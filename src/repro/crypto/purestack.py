"""Fully self-contained crypto primitives (no ``hashlib`` anywhere).

The default stack uses ``hashlib`` for HMAC/HKDF/PRG speed; combined with
:mod:`repro.crypto.sha256` this module closes the loop so the *entire*
cryptographic chain — hash, MAC, keystream — can run on code in this
repository.  Used by the ``pure`` cipher-suite backend and cross-validated
against the hashlib-based implementations in the tests.

Python-speed only; pick it for auditability, not throughput.
"""

from __future__ import annotations

from .sha256 import Sha256, sha256
from ..errors import CryptoError

__all__ = ["pure_hmac_sha256", "pure_keystream_xor"]

_BLOCK = 64
_IPAD = bytes(0x36 for _ in range(_BLOCK))
_OPAD = bytes(0x5C for _ in range(_BLOCK))


def pure_hmac_sha256(key: bytes, message: bytes) -> bytes:
    """RFC 2104 HMAC over the pure-Python SHA-256."""
    if not key:
        raise CryptoError("HMAC key must be non-empty")
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key.ljust(_BLOCK, b"\x00")
    inner_key = bytes(k ^ p for k, p in zip(key, _IPAD))
    outer_key = bytes(k ^ p for k, p in zip(key, _OPAD))
    inner = Sha256(inner_key + message).digest()
    return Sha256(outer_key + inner).digest()


def pure_keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Counter-mode stream built from the pure hash: block i is
    ``SHA256(key || nonce || i)``; XOR into ``data``."""
    if not key:
        raise CryptoError("keystream key must be non-empty")
    digest_size = 32
    blocks = (len(data) + digest_size - 1) // digest_size
    keystream = b"".join(
        sha256(key + nonce + block_index.to_bytes(8, "big"))
        for block_index in range(blocks)
    )[: len(data)]
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(len(data), "little")
