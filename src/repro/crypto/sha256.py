"""Pure-Python SHA-256 (FIPS 180-4).

The library's MAC/KDF/PRG default to ``hashlib``'s C implementation for
speed, but a from-scratch reproduction should own its full primitive stack:
this module implements the compression function exactly per the standard
(constants derived from the fractional parts of cube/square roots of the
first primes, not hard-coded tables) and is validated against the FIPS
180-4 vectors plus random cross-checks against ``hashlib`` in the tests.

``repro.crypto.mac.hmac_sha256`` can be pointed at this implementation via
:func:`use_pure_python` for a fully self-contained stack (at Python speed).
"""

from __future__ import annotations

from typing import List

from ..errors import CryptoError

__all__ = ["sha256", "Sha256"]

_MASK = 0xFFFFFFFF


def _is_prime(candidate: int) -> bool:
    if candidate < 2:
        return False
    divisor = 2
    while divisor * divisor <= candidate:
        if candidate % divisor == 0:
            return False
        divisor += 1
    return True


def _first_primes(count: int) -> List[int]:
    primes: List[int] = []
    candidate = 2
    while len(primes) < count:
        if _is_prime(candidate):
            primes.append(candidate)
        candidate += 1
    return primes


def _frac_root_bits(value: int, root: float) -> int:
    """First 32 bits of the fractional part of value**(1/root)."""
    fractional = (value ** (1.0 / root)) % 1.0
    return int(fractional * (1 << 32)) & _MASK


_PRIMES = _first_primes(64)
# Round constants: cube roots of the first 64 primes.
_K = [_frac_root_bits(p, 3.0) for p in _PRIMES]
# Initial hash state: square roots of the first 8 primes.
_H0 = [_frac_root_bits(p, 2.0) for p in _PRIMES[:8]]


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (32 - amount))) & _MASK


class Sha256:
    """Incremental SHA-256 hasher with the familiar update/digest surface."""

    block_size = 64
    digest_size = 32

    def __init__(self, data: bytes = b""):
        self._state = list(_H0)
        self._buffer = b""
        self._length = 0
        self._finalised = False
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha256":
        if self._finalised:
            raise CryptoError("cannot update a finalised hash")
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def digest(self) -> bytes:
        clone = Sha256()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        clone._finalise()
        return b"".join(word.to_bytes(4, "big") for word in clone._state)

    def hexdigest(self) -> str:
        return self.digest().hex()

    # -- internals ---------------------------------------------------------

    def _finalise(self) -> None:
        bit_length = self._length * 8
        padding = b"\x80" + bytes((55 - self._length) % 64)
        self._buffer += padding + bit_length.to_bytes(8, "big")
        while self._buffer:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]
        self._finalised = True

    def _compress(self, block: bytes) -> None:
        w = [0] * 64
        for i in range(16):
            w[i] = int.from_bytes(block[4 * i : 4 * i + 4], "big")
        for i in range(16, 64):
            s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
            s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
            w[i] = (w[i - 16] + s0 + w[i - 7] + s1) & _MASK

        a, b, c, d, e, f, g, h = self._state
        for i in range(64):
            big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            choose = (e & f) ^ (~e & g)
            temp1 = (h + big_s1 + choose + _K[i] + w[i]) & _MASK
            big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            majority = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (big_s0 + majority) & _MASK
            h = g
            g = f
            f = e
            e = (d + temp1) & _MASK
            d = c
            c = b
            b = a
            a = (temp1 + temp2) & _MASK

        self._state = [
            (value + update) & _MASK
            for value, update in zip(
                self._state, (a, b, c, d, e, f, g, h)
            )
        ]


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest of ``data``."""
    return Sha256(data).digest()
