"""Message authentication for encrypted pages.

The server is modelled as honest-but-curious (Section 3.2), but a production
deployment must still detect accidental corruption and keep the option of
hardening against active tampering, so every page frame carries an
encrypt-then-MAC tag.  HMAC-SHA256 (RFC 2104) is implemented here from the
``hashlib`` primitive rather than ``hmac`` to keep the construction explicit
and testable against RFC 4231 vectors.
"""

from __future__ import annotations

import hashlib

from ..errors import CryptoError

__all__ = ["hmac_sha256", "verify_hmac", "TAG_SIZE"]

TAG_SIZE = 16  # bytes; tags are truncated to 128 bits in page frames

_BLOCK = 64  # SHA-256 block size in bytes
_IPAD = bytes(0x36 for _ in range(_BLOCK))
_OPAD = bytes(0x5C for _ in range(_BLOCK))


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Return the full 32-byte HMAC-SHA256 tag of ``message`` under ``key``."""
    if not key:
        raise CryptoError("HMAC key must be non-empty")
    if len(key) > _BLOCK:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK, b"\x00")
    inner_key = bytes(k ^ p for k, p in zip(key, _IPAD))
    outer_key = bytes(k ^ p for k, p in zip(key, _OPAD))
    inner = hashlib.sha256(inner_key + message).digest()
    return hashlib.sha256(outer_key + inner).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time comparison of ``tag`` against the (possibly truncated) MAC."""
    if not tag:
        return False
    expected = hmac_sha256(key, message)[: len(tag)]
    if len(expected) != len(tag):
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0
