"""Authenticated page encryption for the secure coprocessor.

A :class:`CipherSuite` turns plaintext page payloads into self-contained
encrypted *frames* and back:

``frame = nonce (12B) || ciphertext || tag (16B)``

with encrypt-then-MAC (HMAC-SHA256 truncated to 128 bits over nonce plus
ciphertext).  A fresh random nonce is drawn for every encryption, which is
what makes the re-encryption in Figure 3 line 21 produce ciphertexts the
server cannot link across writes.

Three keystream backends are provided:

``aes``
    Real AES-128-CTR from :mod:`repro.crypto.aes` — the paper's cipher.
    Used by default for correctness-sensitive paths and validated against
    NIST vectors.  Runs the T-table fast kernel by default (byte-identical
    to the FIPS-197 reference; ``REPRO_AES_ACCEL=0`` forces reference).
``blake2``
    Keyed BLAKE2b in counter mode (via ``hashlib``, i.e. C speed).  Same
    security contract for the purposes of this system (a PRF-based stream
    cipher), ~100x faster; the recommended backend for large simulations.
``null``
    Identity transform, still MAC'd.  For experiments that only study the
    *access pattern* (privacy measurements), where byte confidentiality is
    irrelevant and speed is everything.
``pure``
    Keystream and tags built entirely from this repository's own SHA-256
    (:mod:`repro.crypto.purestack`) — zero stdlib crypto.  Auditability
    over speed.

The backend choice never changes frame sizes or the algorithm's behaviour;
it is a simulation-fidelity knob, documented in DESIGN.md.

Batch pipeline
--------------

A request moves ``2(k+1)`` frames through the suite, and paying Python
call overhead per frame dominates the small-page regime.
:meth:`CipherSuite.encrypt_pages` / :meth:`CipherSuite.decrypt_pages`
process a whole multi-frame batch per call:

* nonces are drawn in frame order (so a batch consumes the RNG exactly
  like the equivalent sequence of single-frame calls — batch and serial
  paths produce **byte-identical frames**),
* the keystream of every frame is materialised and the concatenated batch
  is XORed against the concatenated payloads in a *single* big-int
  operation,
* MAC tags are computed/verified from precomputed HMAC pad states (the
  SHA-256 of the inner/outer key pads is hashed once per suite, then
  ``copy()``-ed per frame), and batched verification checks every tag
  before reporting the full set of failing frame indices,
* per-backend key schedules (AES round keys, the keyed-BLAKE2b base
  state) are computed once per suite and shared across the batch,
* when a :class:`~repro.crypto.pipeline.KeystreamPipeline` is attached,
  decrypt batches consult it per frame before computing: hits only XOR,
  and the remaining misses share one fused kernel call on the aes
  backend (DESIGN.md §11).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

from .aes import AES
from .kdf import derive_key
from .mac import TAG_SIZE, hmac_sha256
from .modes import NONCE_SIZE, ctr_keystream, ctr_keystream_batch
from .purestack import pure_hmac_sha256, pure_keystream_xor
from .rng import SecureRandom
from ..errors import AuthenticationError, CryptoError
from ..obs.tracer import NULL_TRACER, Tracer

__all__ = ["CipherSuite", "FRAME_OVERHEAD", "BACKENDS"]

FRAME_OVERHEAD = NONCE_SIZE + TAG_SIZE
BACKENDS = ("aes", "blake2", "null", "pure")

_BLAKE_BLOCK = 64  # output bytes per keyed-BLAKE2b call
_HMAC_BLOCK = 64  # SHA-256 block size (HMAC pad width)


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    """XOR equal-length byte strings via one big-int operation."""
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(len(data), "little")


class CipherSuite:
    """Keyed authenticated encryption for fixed- or variable-size pages.

    >>> suite = CipherSuite(b"master key", backend="blake2", rng=SecureRandom(1))
    >>> frame = suite.encrypt_page(b"hello")
    >>> suite.decrypt_page(frame)
    b'hello'

    Not thread-safe: the nonce RNG is stateful, so give each thread its
    own suite (the engine owns one per coprocessor, which is entered by a
    single thread at a time — see DESIGN.md §10).
    """

    def __init__(
        self,
        master_key: bytes,
        backend: str = "aes",
        rng: Optional[SecureRandom] = None,
        tracer: Optional[Tracer] = None,
    ):
        if backend not in BACKENDS:
            raise CryptoError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.backend = backend
        self._rng = rng if rng is not None else SecureRandom()
        # Per-frame crypto spans only exist at DETAIL_FINE; the flag is
        # latched here so the per-frame hot path pays one attribute read,
        # not a tracer-mode check, when tracing is off or phase-level.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._fine = self.tracer.fine
        self._enc_key = derive_key(master_key, "page-encryption", 16)
        self._mac_key = derive_key(master_key, "page-authentication", 32)
        # for_key caches keyed instances process-wide, so the legacy-key
        # suite kept alive during a rotation (and any suite re-derived for
        # the same master key) reuses an existing key schedule instead of
        # re-expanding it.
        self._aes: Optional[AES] = (
            AES.for_key(self._enc_key) if backend == "aes" else None
        )
        # Optional keystream prefetcher (repro.crypto.pipeline); attached
        # by the coprocessor when the database enables it.  Decrypt paths
        # consult it; encrypt paths only when the caller supplied explicit
        # nonces (fresh random nonces can never have been prefetched, so
        # consulting for them would just pollute the miss counter).
        self.pipeline = None
        # Keyed-BLAKE2b absorbs its key block at construction; copying the
        # base state per keystream block skips that work (byte-identical
        # output to a one-shot keyed hash).
        self._blake_base = (
            hashlib.blake2b(key=self._enc_key, digest_size=_BLAKE_BLOCK)
            if backend == "blake2" else None
        )
        # The pure backend authenticates with the repository's own SHA-256
        # so the whole chain is hashlib-free; other backends use hashlib
        # HMAC-SHA256 with the key-pad states hashed once and copied per
        # tag.  Both produce the same bytes as mac.hmac_sha256.
        self._mac = pure_hmac_sha256 if backend == "pure" else hmac_sha256
        if backend == "pure":
            self._inner_pad = self._outer_pad = None
        else:
            padded = self._mac_key.ljust(_HMAC_BLOCK, b"\x00")
            self._inner_pad = hashlib.sha256(bytes(b ^ 0x36 for b in padded))
            self._outer_pad = hashlib.sha256(bytes(b ^ 0x5C for b in padded))

    # -- keystream ------------------------------------------------------------

    def compute_keystream(self, nonce: bytes, length: int) -> Optional[bytes]:
        """Keystream bytes this suite would use for (nonce, length).

        A pure function of the suite's key and the arguments — no RNG
        draw, no clock charge — which is what lets
        :class:`repro.crypto.pipeline.KeystreamPipeline` precompute it
        off the request path without perturbing determinism.  Returns
        None for the null backend (identity transform, nothing to cache).
        """
        return self._keystream(nonce, length)

    def compute_keystreams(
        self, nonces: Sequence[bytes], lengths: Sequence[int]
    ) -> List[Optional[bytes]]:
        """Batch :meth:`compute_keystream` — one fused kernel entry on aes.

        The prefetch pipeline computes a whole block's keystreams at once
        through here, so the counter blocks of all frames cross the
        vectorised lane's threshold together (same reason
        ``_transform_batch`` batches).
        """
        if self.backend == "aes":
            assert self._aes is not None
            return list(ctr_keystream_batch(self._aes, nonces, lengths))
        return [
            self._keystream(nonce, length)
            for nonce, length in zip(nonces, lengths)
        ]

    def _keystream(self, nonce: bytes, length: int) -> Optional[bytes]:
        """Raw keystream bytes for one frame (None = identity, null backend)."""
        if self.backend == "null":
            return None
        if self.backend == "aes":
            assert self._aes is not None
            return ctr_keystream(self._aes, nonce, length)
        if self.backend == "pure":
            # purestack only exposes the XOR form; stream against zeros.
            return pure_keystream_xor(self._enc_key, nonce, bytes(length))
        # blake2: keystream block i = BLAKE2b(key=enc_key, data=nonce||i),
        # derived from the shared pre-keyed base state.
        assert self._blake_base is not None
        base = self._blake_base
        blocks = (length + _BLAKE_BLOCK - 1) // _BLAKE_BLOCK
        parts = []
        for block_index in range(blocks):
            h = base.copy()
            h.update(nonce + block_index.to_bytes(8, "big"))
            parts.append(h.digest())
        return b"".join(parts)[:length]

    def _keystream_xor(self, nonce: bytes, data: bytes, consult: bool = False) -> bytes:
        if self.backend == "null":
            return data
        if consult and self.pipeline is not None:
            cached = self.pipeline.take(self, nonce, len(data))
            if cached is not None:
                return _xor_bytes(data, cached)
        if self.backend == "pure":
            return pure_keystream_xor(self._enc_key, nonce, data)
        keystream = self._keystream(nonce, len(data))
        assert keystream is not None
        return _xor_bytes(data, keystream)

    # -- authentication -------------------------------------------------------

    def _tag(self, data: bytes) -> bytes:
        """Truncated HMAC-SHA256 of ``data``, from the precomputed pads."""
        if self._inner_pad is None:
            return self._mac(self._mac_key, data)[:TAG_SIZE]
        inner = self._inner_pad.copy()
        inner.update(data)
        outer = self._outer_pad.copy()
        outer.update(inner.digest())
        return outer.digest()[:TAG_SIZE]

    # -- frames ---------------------------------------------------------------

    def encrypt_page(self, plaintext: bytes, nonce: Optional[bytes] = None) -> bytes:
        """Encrypt a page payload into a frame with a fresh random nonce.

        An explicit ``nonce`` may be supplied for testing; production callers
        must leave it None so every write gets a unique nonce.
        """
        explicit = nonce is not None
        if nonce is None:
            nonce = self._rng.token(NONCE_SIZE)
        elif len(nonce) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        if self._fine:
            with self.tracer.fine_span("crypto.encrypt", nbytes=len(plaintext)):
                ciphertext = self._keystream_xor(nonce, plaintext, consult=explicit)
                tag = self._tag(nonce + ciphertext)
        else:
            ciphertext = self._keystream_xor(nonce, plaintext, consult=explicit)
            tag = self._tag(nonce + ciphertext)
        return nonce + ciphertext + tag

    def decrypt_page(self, frame: bytes) -> bytes:
        """Verify and decrypt a frame; raises :class:`AuthenticationError` on tamper."""
        if len(frame) < FRAME_OVERHEAD:
            raise CryptoError(
                f"frame too short: {len(frame)} bytes < overhead {FRAME_OVERHEAD}"
            )
        nonce = frame[:NONCE_SIZE]
        ciphertext = frame[NONCE_SIZE : len(frame) - TAG_SIZE]
        tag = frame[len(frame) - TAG_SIZE :]
        if self._fine:
            with self.tracer.fine_span("crypto.mac_verify", nbytes=len(frame)):
                expected = self._tag(nonce + ciphertext)
        else:
            expected = self._tag(nonce + ciphertext)
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        if diff != 0 or len(tag) != TAG_SIZE:
            raise AuthenticationError("page frame failed MAC verification")
        if self._fine:
            with self.tracer.fine_span("crypto.keystream", nbytes=len(ciphertext)):
                return self._keystream_xor(nonce, ciphertext, consult=True)
        return self._keystream_xor(nonce, ciphertext, consult=True)

    # -- batch pipeline -------------------------------------------------------

    def encrypt_pages(
        self,
        plaintexts: Sequence[bytes],
        nonces: Optional[Sequence[bytes]] = None,
    ) -> List[bytes]:
        """Encrypt a batch of payloads into frames.

        Nonces are drawn from the RNG in frame order, so
        ``encrypt_pages(batch)`` produces the same frames as the
        equivalent sequence of :meth:`encrypt_page` calls on the same RNG
        state — the batch only saves Python overhead, never changes bytes.
        """
        explicit = nonces is not None
        if nonces is None:
            nonces = [self._rng.token(NONCE_SIZE) for _ in plaintexts]
        else:
            if len(nonces) != len(plaintexts):
                raise CryptoError("need exactly one nonce per plaintext")
            for nonce in nonces:
                if len(nonce) != NONCE_SIZE:
                    raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        if self._fine:
            with self.tracer.fine_span(
                "crypto.encrypt_batch", nbytes=sum(len(p) for p in plaintexts)
            ):
                return self._encrypt_batch(plaintexts, nonces, consult=explicit)
        return self._encrypt_batch(plaintexts, nonces, consult=explicit)

    def _encrypt_batch(
        self,
        plaintexts: Sequence[bytes],
        nonces: Sequence[bytes],
        consult: bool = False,
    ) -> List[bytes]:
        ciphertexts = self._transform_batch(nonces, plaintexts, consult=consult)
        return [
            nonce + ciphertext + self._tag(nonce + ciphertext)
            for nonce, ciphertext in zip(nonces, ciphertexts)
        ]

    def decrypt_pages(
        self, frames: Sequence[bytes], views: bool = False
    ) -> List[bytes]:
        """Verify and decrypt a batch of frames.

        Every MAC is checked before any failure is reported;
        :class:`AuthenticationError` carries the indices of *all* failing
        frames so one tampered frame cannot mask another.

        With ``views=True`` the plaintexts come back as zero-copy
        ``memoryview`` slices of one shared decrypt buffer instead of k
        separate ``bytes`` copies — the fused batch engine threads these
        straight through page decode, relocation and re-encryption.
        """
        if self._fine:
            with self.tracer.fine_span(
                "crypto.decrypt_batch", nbytes=sum(len(f) for f in frames)
            ):
                return self._decrypt_batch(frames, views=views)
        return self._decrypt_batch(frames, views=views)

    def _decrypt_batch(
        self, frames: Sequence[bytes], views: bool = False
    ) -> List[bytes]:
        nonces: List[bytes] = []
        ciphertexts: List[bytes] = []
        for frame in frames:
            if len(frame) < FRAME_OVERHEAD:
                raise CryptoError(
                    f"frame too short: {len(frame)} bytes < overhead "
                    f"{FRAME_OVERHEAD}"
                )
            nonces.append(frame[:NONCE_SIZE])
            ciphertexts.append(frame[NONCE_SIZE : len(frame) - TAG_SIZE])
        failed: List[int] = []
        for index, frame in enumerate(frames):
            expected = self._tag(frame[: len(frame) - TAG_SIZE])
            tag = frame[len(frame) - TAG_SIZE :]
            diff = 0
            for a, b in zip(expected, tag):
                diff |= a ^ b
            if diff != 0:
                failed.append(index)
        if failed:
            raise AuthenticationError(
                f"frame(s) {failed} of batch of {len(frames)} failed MAC "
                "verification"
            )
        return self._transform_batch(nonces, ciphertexts, consult=True,
                                     views=views)

    def _transform_batch(
        self,
        nonces: Sequence[bytes],
        payloads: Sequence[bytes],
        consult: bool = False,
        views: bool = False,
    ) -> List[bytes]:
        """XOR each payload with its frame keystream, batch-wide.

        The per-frame keystreams are concatenated and applied with one
        big-int XOR over the whole batch, then sliced back per frame.
        With ``consult`` the attached prefetch pipeline is asked for each
        frame's keystream first; only misses are computed inline.  On the
        aes backend all missing frames' counter blocks go through one
        fused :func:`~repro.crypto.modes.ctr_keystream_batch` kernel
        entry, which is what lets the vectorised lane engage even when
        each frame is only a handful of blocks.
        """
        if self.backend == "null" or not payloads:
            return list(payloads)
        streams: List[Optional[bytes]] = [None] * len(payloads)
        if consult and self.pipeline is not None:
            for index, (nonce, payload) in enumerate(zip(nonces, payloads)):
                streams[index] = self.pipeline.take(self, nonce, len(payload))
        missing = [index for index, s in enumerate(streams) if s is None]
        if missing:
            if self.backend == "aes":
                assert self._aes is not None
                fresh = ctr_keystream_batch(
                    self._aes,
                    [nonces[index] for index in missing],
                    [len(payloads[index]) for index in missing],
                )
                for index, keystream in zip(missing, fresh):
                    streams[index] = keystream
            else:
                for index in missing:
                    streams[index] = self._keystream(
                        nonces[index], len(payloads[index])
                    )
        mixed = _xor_bytes(b"".join(payloads), b"".join(streams))
        source = memoryview(mixed) if views else mixed
        out: List[bytes] = []
        offset = 0
        for payload in payloads:
            out.append(source[offset : offset + len(payload)])
            offset += len(payload)
        return out

    def frame_size(self, payload_size: int) -> int:
        """Size in bytes of an encrypted frame for a payload of ``payload_size``."""
        if payload_size < 0:
            raise CryptoError("payload size must be non-negative")
        return payload_size + FRAME_OVERHEAD
