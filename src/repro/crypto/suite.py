"""Authenticated page encryption for the secure coprocessor.

A :class:`CipherSuite` turns plaintext page payloads into self-contained
encrypted *frames* and back:

``frame = nonce (12B) || ciphertext || tag (16B)``

with encrypt-then-MAC (HMAC-SHA256 truncated to 128 bits over nonce plus
ciphertext).  A fresh random nonce is drawn for every encryption, which is
what makes the re-encryption in Figure 3 line 21 produce ciphertexts the
server cannot link across writes.

Three keystream backends are provided:

``aes``
    Real AES-128-CTR from :mod:`repro.crypto.aes` — the paper's cipher.
    Used by default for correctness-sensitive paths and validated against
    NIST vectors.  Pure Python, so slow for big Monte-Carlo runs.
``blake2``
    Keyed BLAKE2b in counter mode (via ``hashlib``, i.e. C speed).  Same
    security contract for the purposes of this system (a PRF-based stream
    cipher), ~100x faster; the recommended backend for large simulations.
``null``
    Identity transform, still MAC'd.  For experiments that only study the
    *access pattern* (privacy measurements), where byte confidentiality is
    irrelevant and speed is everything.
``pure``
    Keystream and tags built entirely from this repository's own SHA-256
    (:mod:`repro.crypto.purestack`) — zero stdlib crypto.  Auditability
    over speed.

The backend choice never changes frame sizes or the algorithm's behaviour;
it is a simulation-fidelity knob, documented in DESIGN.md.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from .aes import AES
from .kdf import derive_key
from .mac import TAG_SIZE, hmac_sha256
from .modes import NONCE_SIZE, ctr_transform
from .purestack import pure_hmac_sha256, pure_keystream_xor
from .rng import SecureRandom
from ..errors import AuthenticationError, CryptoError
from ..obs.tracer import NULL_TRACER, Tracer

__all__ = ["CipherSuite", "FRAME_OVERHEAD", "BACKENDS"]

FRAME_OVERHEAD = NONCE_SIZE + TAG_SIZE
BACKENDS = ("aes", "blake2", "null", "pure")

_BLAKE_BLOCK = 64  # output bytes per keyed-BLAKE2b call


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    """XOR equal-length byte strings via one big-int operation."""
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(len(data), "little")


class CipherSuite:
    """Keyed authenticated encryption for fixed- or variable-size pages.

    >>> suite = CipherSuite(b"master key", backend="blake2", rng=SecureRandom(1))
    >>> frame = suite.encrypt_page(b"hello")
    >>> suite.decrypt_page(frame)
    b'hello'
    """

    def __init__(
        self,
        master_key: bytes,
        backend: str = "aes",
        rng: Optional[SecureRandom] = None,
        tracer: Optional[Tracer] = None,
    ):
        if backend not in BACKENDS:
            raise CryptoError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.backend = backend
        self._rng = rng if rng is not None else SecureRandom()
        # Per-frame crypto spans only exist at DETAIL_FINE; the flag is
        # latched here so the per-frame hot path pays one attribute read,
        # not a tracer-mode check, when tracing is off or phase-level.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._fine = self.tracer.fine
        self._enc_key = derive_key(master_key, "page-encryption", 16)
        self._mac_key = derive_key(master_key, "page-authentication", 32)
        self._aes: Optional[AES] = AES(self._enc_key) if backend == "aes" else None
        # The pure backend authenticates with the repository's own SHA-256
        # so the whole chain is hashlib-free; other backends use the fast MAC.
        self._mac = pure_hmac_sha256 if backend == "pure" else hmac_sha256

    # -- keystream ------------------------------------------------------------

    def _keystream_xor(self, nonce: bytes, data: bytes) -> bytes:
        if self.backend == "null":
            return data
        if self.backend == "aes":
            assert self._aes is not None
            return ctr_transform(self._aes, nonce, data)
        if self.backend == "pure":
            return pure_keystream_xor(self._enc_key, nonce, data)
        # blake2: keystream block i = BLAKE2b(key=enc_key, data=nonce||i).
        # The whole keystream is materialised and XORed via big-int ops,
        # which is ~10x faster than a per-byte Python loop.
        blocks = (len(data) + _BLAKE_BLOCK - 1) // _BLAKE_BLOCK
        keystream = b"".join(
            hashlib.blake2b(
                nonce + block_index.to_bytes(8, "big"),
                key=self._enc_key,
                digest_size=_BLAKE_BLOCK,
            ).digest()
            for block_index in range(blocks)
        )[: len(data)]
        return _xor_bytes(data, keystream)

    # -- frames ---------------------------------------------------------------

    def encrypt_page(self, plaintext: bytes, nonce: Optional[bytes] = None) -> bytes:
        """Encrypt a page payload into a frame with a fresh random nonce.

        An explicit ``nonce`` may be supplied for testing; production callers
        must leave it None so every write gets a unique nonce.
        """
        if nonce is None:
            nonce = self._rng.token(NONCE_SIZE)
        elif len(nonce) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        if self._fine:
            with self.tracer.fine_span("crypto.encrypt", nbytes=len(plaintext)):
                ciphertext = self._keystream_xor(nonce, plaintext)
                tag = self._mac(self._mac_key, nonce + ciphertext)[:TAG_SIZE]
        else:
            ciphertext = self._keystream_xor(nonce, plaintext)
            tag = self._mac(self._mac_key, nonce + ciphertext)[:TAG_SIZE]
        return nonce + ciphertext + tag

    def decrypt_page(self, frame: bytes) -> bytes:
        """Verify and decrypt a frame; raises :class:`AuthenticationError` on tamper."""
        if len(frame) < FRAME_OVERHEAD:
            raise CryptoError(
                f"frame too short: {len(frame)} bytes < overhead {FRAME_OVERHEAD}"
            )
        nonce = frame[:NONCE_SIZE]
        ciphertext = frame[NONCE_SIZE : len(frame) - TAG_SIZE]
        tag = frame[len(frame) - TAG_SIZE :]
        if self._fine:
            with self.tracer.fine_span("crypto.mac_verify", nbytes=len(frame)):
                expected = self._mac(self._mac_key, nonce + ciphertext)[:TAG_SIZE]
        else:
            expected = self._mac(self._mac_key, nonce + ciphertext)[:TAG_SIZE]
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        if diff != 0 or len(tag) != TAG_SIZE:
            raise AuthenticationError("page frame failed MAC verification")
        if self._fine:
            with self.tracer.fine_span("crypto.keystream", nbytes=len(ciphertext)):
                return self._keystream_xor(nonce, ciphertext)
        return self._keystream_xor(nonce, ciphertext)

    def frame_size(self, payload_size: int) -> int:
        """Size in bytes of an encrypted frame for a payload of ``payload_size``."""
        if payload_size < 0:
            raise CryptoError("payload size must be non-negative")
        return payload_size + FRAME_OVERHEAD
