"""Idle-time keystream prefetch for the round-robin scan.

The engine's scan order is deterministic (Figure 3 reads block
``next_block_index`` on every request, advancing round-robin), and a CTR
decrypt keystream depends only on (key, nonce) — both known *before* the
next request arrives: the key lives in the coprocessor and the nonce of
every stored frame was chosen by the coprocessor itself on the frame's
last write (it is also the frame header the server already sees, so
remembering it inside the boundary leaks nothing).  A
:class:`KeystreamPipeline` exploits that: after each request commits, the
engine hands it the locations of the next round-robin block and the
pipeline computes their decrypt keystreams — synchronously by default, or
on a background worker thread with ``background=True`` — so the next
request's :meth:`~repro.crypto.suite.CipherSuite.decrypt_pages` only has
to XOR.

Determinism contract (load-bearing for the PR-3 parallel-vs-serial
byte-equality): the pipeline **never draws randomness and never advances
the virtual clock**.  It only *reads* nonces recorded at write-back and
recomputes the pure function ``keystream(key, nonce, length)`` that the
inline path would compute anyway, so enabling it — in either mode —
changes no frame bytes, no RNG stream, no virtual-time charge, and no
trace entry; only wall time.  Hits consume their entry (each stored frame
is decrypted at most once before being rewritten with a fresh nonce);
a miss falls back to inline computation.

Memory is bounded by ``max_bytes`` of cached keystream; inserting past
the bound evicts the oldest entries (``pipeline.evicted`` counts them).
Counters (``pipeline.hit`` / ``pipeline.miss`` / ``pipeline.prefetched``
/ ``pipeline.evicted``) mirror into a
:class:`~repro.obs.registry.MetricsRegistry` when one is supplied.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.metrics import CounterSet

__all__ = ["KeystreamPipeline", "PIPELINE_MODES"]

#: Accepted values for the ``keystream_pipeline`` database option.
PIPELINE_MODES = ("sync", "background")

_DEFAULT_MAX_BYTES = 1 << 20  # 1 MiB of cached keystream
_PENDING_WAIT_SECONDS = 5.0  # background safety net; never hit in practice


class KeystreamPipeline:
    """Caches decrypt keystreams for frames the scan will read next.

    The pipeline tracks, per disk location, which cipher suite sealed the
    frame currently stored there and under which nonce
    (:meth:`note_written`; suites are compared by identity, so a key
    rotation naturally partitions entries between the old and new key).
    :meth:`prefetch` computes the keystreams for a set of locations;
    :meth:`take` — called from inside the suite's keystream path — hands a
    cached keystream to exactly one consumer.

    Thread-safety: all public methods are safe to call from any thread.
    In background mode one daemon worker performs the keystream
    computation; :meth:`take` blocks on an entry that is still in flight
    (bounded wait), so hit/miss accounting stays deterministic regardless
    of scheduling.
    """

    def __init__(
        self,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        background: bool = False,
        metrics=None,
    ):
        if max_bytes <= 0:
            raise ConfigurationError("pipeline max_bytes must be positive")
        self.max_bytes = max_bytes
        self.background = background
        self.counters = CounterSet(registry=metrics, prefix="pipeline.")
        self._lock = threading.Lock()
        # location -> (sealing suite, nonce) for every frame we saw written.
        self._nonces: Dict[int, Tuple[object, bytes]] = {}
        # (suite id, nonce) -> keystream bytes, oldest first.
        self._ready: "OrderedDict[Tuple[int, bytes], bytes]" = OrderedDict()
        self._ready_bytes = 0
        # Entries a background worker is still computing.
        self._pending: Dict[Tuple[int, bytes], threading.Event] = {}
        self._queue: list = []
        self._queue_signal = threading.Condition(self._lock)
        self._closed = False
        self._worker: Optional[threading.Thread] = None
        if background:
            self._worker = threading.Thread(
                target=self._worker_loop, name="keystream-prefetch", daemon=True
            )
            self._worker.start()

    # -- write-side bookkeeping ------------------------------------------------

    def note_written(self, location: int, suite, nonce: bytes) -> None:
        """Record that ``suite`` sealed the frame now stored at ``location``."""
        with self._lock:
            self._nonces[location] = (suite, nonce)

    def note_written_frames(
        self, locations: Iterable[int], suite, frames: Iterable[bytes]
    ) -> None:
        """Batch :meth:`note_written`, reading each nonce from its frame header.

        Replacing a location's nonce also drops any keystream still cached
        for the *old* nonce: that frame no longer exists on disk, so the
        entry could never be consumed and would only squat on ``max_bytes``
        until evicted.  The background reshuffler rewrites frames the
        engine has already prefetched, which is where these orphans come
        from (``stale_dropped`` counts them).
        """
        from .modes import NONCE_SIZE

        with self._lock:
            for location, frame in zip(locations, frames):
                old = self._nonces.get(location)
                self._nonces[location] = (suite, frame[:NONCE_SIZE])
                if old is None:
                    continue
                old_key = (id(old[0]), old[1])
                if old_key == (id(suite), frame[:NONCE_SIZE]):
                    # Identical rewrite (recovery replay): still current.
                    continue
                orphan = self._ready.pop(old_key, None)
                if orphan is not None:
                    self._ready_bytes -= len(orphan)
                    self.counters.increment("stale_dropped")

    def note_batch_window(self, block_frames: int, extra_frames: int) -> None:
        """Account one fused batch window in the pipeline's counters.

        The fused engine decrypts a whole window (k block frames plus one
        extra per executed op) through single suite calls, so per-frame
        hit/miss counters alone under-describe its behaviour; these
        aggregates let benchmarks attribute keystream work to windows.
        """
        self.counters.increment("batch.windows")
        self.counters.increment("batch.block_frames", block_frames)
        self.counters.increment("batch.extra_frames", extra_frames)

    # -- prefetch --------------------------------------------------------------

    def prefetch(self, locations: Iterable[int], length: int) -> int:
        """Precompute decrypt keystreams of ``length`` bytes for ``locations``.

        Locations with no recorded nonce (never seen written) are skipped;
        already-cached or in-flight entries are not recomputed.  Returns
        the number of keystream bytes scheduled (sync mode: computed
        before returning).
        """
        if length <= 0:
            return 0
        jobs = []
        with self._lock:
            if self._closed:
                return 0
            for location in locations:
                entry = self._nonces.get(location)
                if entry is None:
                    continue
                suite, nonce = entry
                key = (id(suite), nonce)
                if key in self._ready or key in self._pending:
                    continue
                self._pending[key] = threading.Event()
                jobs.append((key, suite, nonce, length))
            if jobs and self.background:
                self._queue.extend(jobs)
                self._queue_signal.notify()
        if not jobs:
            return 0
        if not self.background:
            self._compute_batch(jobs)
        return length * len(jobs)

    def _compute_batch(self, jobs) -> None:
        """Compute (key, suite, nonce, length) jobs, one fused call per suite.

        Grouping lets the aes backend push all frames' counter blocks
        through a single ``encrypt_blocks`` entry (big enough for the
        vectorised lane), so prefetching a block costs no more than the
        inline batch decrypt it replaces.
        """
        by_suite: Dict[int, Tuple[object, list]] = {}
        for job in jobs:
            by_suite.setdefault(id(job[1]), (job[1], []))[1].append(job)
        for suite, group in by_suite.values():
            try:
                streams = suite.compute_keystreams(
                    [nonce for _, _, nonce, _ in group],
                    [length for _, _, _, length in group],
                )
            except Exception:
                streams = [None] * len(group)  # failure = a future miss
            with self._lock:
                for (key, _, _, _), keystream in zip(group, streams):
                    event = self._pending.pop(key, None)
                    if keystream is not None and not self._closed:
                        self._store(key, keystream)
                    if event is not None:
                        event.set()

    def set_max_bytes(self, max_bytes: int) -> None:
        """Re-bound the keystream cache at runtime (thread-safe).

        Shrinking evicts oldest entries down to the new bound immediately
        (keeping at least one, matching :meth:`_store`); growing simply
        lets future prefetches accumulate more.  The :mod:`repro.plan`
        controller uses this to trade host memory against hit rate.
        """
        if max_bytes <= 0:
            raise ConfigurationError("pipeline max_bytes must be positive")
        with self._lock:
            self.max_bytes = max_bytes
            while self._ready_bytes > self.max_bytes and len(self._ready) > 1:
                _, evicted = self._ready.popitem(last=False)
                self._ready_bytes -= len(evicted)
                self.counters.increment("evicted")

    def _store(self, key, keystream: bytes) -> None:
        """Insert under the byte bound, evicting oldest first.  Lock held."""
        if key in self._ready:
            return
        self._ready[key] = keystream
        self._ready_bytes += len(keystream)
        self.counters.increment("prefetched")
        while self._ready_bytes > self.max_bytes and len(self._ready) > 1:
            _, evicted = self._ready.popitem(last=False)
            self._ready_bytes -= len(evicted)
            self.counters.increment("evicted")

    # -- consume ---------------------------------------------------------------

    def take(self, suite, nonce: bytes, length: int) -> Optional[bytes]:
        """The cached keystream for (suite, nonce), or None on a miss.

        A hit consumes the entry.  An entry still being computed by the
        background worker is waited for (it was scheduled before the
        request arrived, so the wait is the tail of the compute, not the
        whole of it).
        """
        key = (id(suite), nonce)
        with self._lock:
            keystream = self._ready.pop(key, None)
            if keystream is not None:
                self._ready_bytes -= len(keystream)
                if len(keystream) >= length:
                    self.counters.increment("hit")
                    return keystream[:length]
                # Too short to serve (prefetched for a smaller payload):
                # drop it and fall through to the miss path.
                keystream = None
            event = self._pending.get(key)
        if event is not None and event.wait(_PENDING_WAIT_SECONDS):
            with self._lock:
                keystream = self._ready.pop(key, None)
                if keystream is not None and len(keystream) >= length:
                    self._ready_bytes -= len(keystream)
                    self.counters.increment("hit")
                    return keystream[:length]
        self.counters.increment("miss")
        return None

    # -- introspection ---------------------------------------------------------

    def hit_rate(self) -> float:
        """hits / (hits + misses) so far; 0.0 before any lookup."""
        hits = self.counters.get("hit")
        misses = self.counters.get("miss")
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def cached_bytes(self) -> int:
        """Bytes of keystream currently held (bounded by ``max_bytes``)."""
        with self._lock:
            return self._ready_bytes

    @property
    def known_locations(self) -> int:
        """Disk locations whose current nonce the pipeline has recorded."""
        with self._lock:
            return len(self._nonces)

    # -- lifecycle -------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._queue_signal.wait()
                if self._closed and not self._queue:
                    return
                # Drain everything queued so one wakeup computes a whole
                # block's worth of keystreams as one fused batch.
                jobs, self._queue = self._queue, []
            self._compute_batch(jobs)

    def close(self) -> None:
        """Stop the background worker and drop all cached state (idempotent)."""
        with self._lock:
            self._closed = True
            self._queue = []
            self._ready.clear()
            self._ready_bytes = 0
            for event in self._pending.values():
                event.set()
            self._pending.clear()
            self._queue_signal.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=_PENDING_WAIT_SECONDS)
            self._worker = None
