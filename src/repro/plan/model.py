"""Calibrated per-phase cost model: Eq. 8's shape, measured coefficients.

Eq. 8 predicts the constant per-query time from four hardware constants
(t_s, r_d, r_b, r_ed).  Real deployments rarely match their spec sheet, so
the planner works from a :class:`CalibratedCostModel` instead: the same
*structure* — every phase's per-query cost is affine in the block size,
``cost(k) = alpha + gamma * (k + 1)`` — with coefficients taken from one
of three sources:

* :meth:`CalibratedCostModel.from_spec` — the paper's Table-2 constants,
  attributed the way the engine's tracer charges them (``query_time(k)``
  equals :func:`~repro.analysis.costmodel.eq8_terms`'s total evaluated at
  the on-disk frame size, which is what the planner round-trip property
  tests pin).
* :meth:`CalibratedCostModel.from_probe` — a short self-measured probe:
  two small databases at two pinned block sizes, the per-phase totals of a
  traced query run, and a two-point affine fit per phase.  Because every
  engine phase moves exactly ``(k + 1)`` frames per query, two block sizes
  identify both coefficients.
* :meth:`CalibratedCostModel.from_obs_rows` — the same fit over exported
  obs JSONL runs (``python -m repro metrics`` / ``bench_engine.py``
  output), for planning against measurements taken elsewhere.

The affine form is load-bearing: it is what makes the planner's latency
inversion a monotone binary search, and what lets a two-point probe
calibrate phases whose fixed part (seeks, per-request bookkeeping) and
byte part (transfer, crypto) differ by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..crypto.suite import FRAME_OVERHEAD
from ..errors import ConfigurationError
from ..hardware.specs import IBM_4764, HardwareSpec
from ..obs.export import rows_by_kind
from ..obs.tracer import Tracer
from ..storage.page import HEADER_SIZE

__all__ = [
    "PHASE_NAMES",
    "OTHER_PHASE",
    "PhaseCoefficients",
    "CalibratedCostModel",
    "frame_size_for",
]

#: The per-query leaf phases the model predicts, matching the tracer
#: taxonomy (DESIGN.md §9) and CostModelCheck's term mapping.
PHASE_NAMES: Tuple[str, ...] = (
    "disk.read",
    "disk.write",
    "link.ingest",
    "link.egress",
    "decrypt",
    "reencrypt",
)

#: Residual phase: everything inside a ``request`` span that the leaf
#: phases above do not cover (page-map lookup, cache op, MAC bookkeeping,
#: journal seal).  Calibrated like any other phase; zero in spec mode
#: (Eq. 8 has no such term).
OTHER_PHASE = "other"

_PROBE_CLOCKS = ("virtual", "wall")


def frame_size_for(page_size: int) -> int:
    """Bytes one encrypted frame occupies for ``page_size``-byte pages."""
    if page_size <= 0:
        raise ConfigurationError("page_size must be positive")
    return page_size + HEADER_SIZE + FRAME_OVERHEAD


@dataclass(frozen=True)
class PhaseCoefficients:
    """Affine per-query cost of one phase: ``alpha + gamma * (k + 1)``.

    ``alpha`` is seconds per query independent of the block size (seek
    time, fixed bookkeeping); ``gamma`` is seconds per query per moved
    frame (the ``(k + 1)`` pages each phase touches per request).
    """

    alpha: float
    gamma: float

    def cost(self, block_size: int) -> float:
        return self.alpha + self.gamma * (block_size + 1)


def _fit(points: Sequence[Tuple[int, float]]) -> PhaseCoefficients:
    """Affine fit through per-k measurements; proportional for one point.

    A negative fitted intercept (measurement noise on a near-proportional
    phase) is clamped to zero with the slope refit through the mean, so
    predictions never go negative.
    """
    if not points:
        return PhaseCoefficients(0.0, 0.0)
    if len({k for k, _ in points}) == 1:
        k, y = points[0]
        return PhaseCoefficients(0.0, max(0.0, y) / (k + 1))
    lo = min(points)
    hi = max(points)
    gamma = (hi[1] - lo[1]) / (hi[0] - lo[0])
    alpha = lo[1] - gamma * (lo[0] + 1)
    if gamma < 0 or alpha < 0:
        mean_rate = sum(y / (k + 1) for k, y in points) / len(points)
        return PhaseCoefficients(0.0, max(0.0, mean_rate))
    return PhaseCoefficients(alpha, gamma)


class CalibratedCostModel:
    """Per-phase affine cost model over the block size k (see module doc)."""

    def __init__(
        self,
        coefficients: Dict[str, PhaseCoefficients],
        page_size: int,
        source: str = "manual",
    ):
        if page_size <= 0:
            raise ConfigurationError("page_size must be positive")
        unknown = set(coefficients) - set(PHASE_NAMES) - {OTHER_PHASE}
        if unknown:
            raise ConfigurationError(
                f"unknown cost-model phases: {sorted(unknown)}"
            )
        self.coefficients = {
            name: coefficients.get(name, PhaseCoefficients(0.0, 0.0))
            for name in PHASE_NAMES + (OTHER_PHASE,)
        }
        self.page_size = page_size
        self.source = source

    # -- prediction -----------------------------------------------------------

    def predict(self, block_size: int) -> Dict[str, float]:
        """Per-phase seconds per query at block size k, plus ``total``."""
        if block_size < 1:
            raise ConfigurationError("block_size must be positive")
        out = {
            name: coeffs.cost(block_size)
            for name, coeffs in self.coefficients.items()
        }
        out["total"] = sum(out.values())
        return out

    def query_time(self, block_size: int) -> float:
        """Predicted total seconds per query — monotone increasing in k."""
        return self.predict(block_size)["total"]

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_spec(
        cls, spec: HardwareSpec = IBM_4764, page_size: int = 1000
    ) -> "CalibratedCostModel":
        """Eq. 8's spec constants mapped onto the tracer's phase taxonomy.

        The attribution mirrors what the engine actually charges, so
        spec-mode predictions line up with ``verify_plan`` measurements
        phase by phase: two reads and two writes per query carry one seek
        each (``alpha = 2 t_s`` per disk phase); every lane moves
        ``(k + 1)`` *on-disk frames* (:func:`frame_size_for` — page plus
        header plus AEAD overhead), and the coprocessor folds crypto time
        into the ``link.ingest``/``link.egress`` spans
        (:meth:`~repro.hardware.specs.HardwareSpec.ingest_time`), leaving
        the ``decrypt``/``reencrypt`` spans with zero virtual seconds.
        Summing reproduces ``4 t_s + 2 (k + 1) B (1/r_d + 1/r_b + 1/r_ed)``
        — :func:`~repro.analysis.costmodel.eq8_terms` with B taken as the
        frame size rather than the bare payload.
        """
        frame = frame_size_for(page_size)
        seek = spec.disk.seek_time
        link = frame * (1.0 / spec.link_bandwidth
                        + 1.0 / spec.crypto_throughput)
        return cls(
            {
                "disk.read": PhaseCoefficients(
                    2 * seek, frame / spec.disk.read_bandwidth),
                "disk.write": PhaseCoefficients(
                    2 * seek, frame / spec.disk.write_bandwidth),
                "link.ingest": PhaseCoefficients(0.0, link),
                "link.egress": PhaseCoefficients(0.0, link),
                "decrypt": PhaseCoefficients(0.0, 0.0),
                "reencrypt": PhaseCoefficients(0.0, 0.0),
            },
            page_size=page_size,
            source="spec",
        )

    @classmethod
    def from_probe(
        cls,
        page_size: int = 64,
        num_records: int = 96,
        cache_capacity: int = 8,
        queries: int = 32,
        seed: int = 1234,
        block_sizes: Sequence[int] = (4, 12),
        clock: str = "virtual",
        spec: HardwareSpec = IBM_4764,
    ) -> "CalibratedCostModel":
        """Calibrate from a short self-measured probe run.

        Builds one small database per probe block size (identical records,
        pinned seed), traces ``queries`` round-robin retrievals, and fits
        each phase's affine coefficients through the per-query totals.
        ``clock="virtual"`` calibrates against the deterministic simulated
        timing (reproducible across machines — the mode ``plan --verify``
        and the bench lane gate on); ``clock="wall"`` calibrates real
        elapsed time on this host.
        """
        if clock not in _PROBE_CLOCKS:
            raise ConfigurationError(
                f"probe clock must be one of {_PROBE_CLOCKS}, got {clock!r}"
            )
        if queries <= 0:
            raise ConfigurationError("probe queries must be positive")
        sizes = sorted(set(int(k) for k in block_sizes))
        if len(sizes) < 2:
            raise ConfigurationError(
                "probe needs at least two distinct block sizes for the "
                "two-point affine fit"
            )
        from ..baselines import make_records
        from ..core.database import PirDatabase

        records = make_records(num_records, page_size)
        samples: Dict[str, List[Tuple[int, float]]] = {}
        for block_size in sizes:
            tracer = Tracer()
            db = PirDatabase.create(
                records,
                cache_capacity=cache_capacity,
                block_size=block_size,
                page_capacity=page_size,
                seed=seed,
                spec=spec,
                tracer=tracer,
            )
            try:
                if clock == "wall":
                    # Wall mode wants steady-state: spend a few requests
                    # warming caches, then measure from a clean tracer.
                    for i in range(4):
                        db.query(i % db.num_pages)
                    tracer.reset()
                for i in range(queries):
                    db.query(i % db.num_pages)
                for name, seconds in _per_query_phases(
                    tracer, queries, clock
                ).items():
                    samples.setdefault(name, []).append((block_size, seconds))
            finally:
                db.close()
        return cls(
            {name: _fit(points) for name, points in samples.items()},
            page_size=page_size,
            source=f"probe:{clock}",
        )

    @classmethod
    def from_obs_rows(
        cls,
        runs: Iterable[Sequence[Dict[str, object]]],
        page_size: int,
        clock: str = "virtual",
    ) -> "CalibratedCostModel":
        """Calibrate from exported obs JSONL runs instead of probing.

        Each run is one loaded JSONL row list (see
        :func:`~repro.obs.export.read_jsonl`): a ``meta`` row carrying
        ``block_size`` and ``queries``, plus ``phase`` rows.  Two runs at
        distinct block sizes give the full affine fit; a single run falls
        back to proportional coefficients.
        """
        if clock not in _PROBE_CLOCKS:
            raise ConfigurationError(
                f"obs clock must be one of {_PROBE_CLOCKS}, got {clock!r}"
            )
        key = "virtual_s" if clock == "virtual" else "wall_s"
        samples: Dict[str, List[Tuple[int, float]]] = {}
        seen = 0
        for rows in runs:
            seen += 1
            metas = rows_by_kind(rows, "meta")
            if len(metas) != 1:
                raise ConfigurationError(
                    f"obs run {seen} must contain exactly one meta row"
                )
            meta = metas[0]
            try:
                block_size = int(meta["block_size"])
                queries = int(meta["queries"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"obs run {seen} meta row needs numeric block_size and "
                    f"queries ({exc})"
                ) from exc
            if block_size < 1 or queries < 1:
                raise ConfigurationError(
                    f"obs run {seen} has non-positive block_size/queries"
                )
            phases = {
                str(row["name"]): float(row.get(key, 0.0))
                for row in rows_by_kind(rows, "phase")
            }
            request = phases.get("request", 0.0)
            leaves = 0.0
            for name in PHASE_NAMES:
                seconds = phases.get(name, 0.0)
                leaves += seconds
                samples.setdefault(name, []).append(
                    (block_size, seconds / queries)
                )
            samples.setdefault(OTHER_PHASE, []).append(
                (block_size, max(0.0, request - leaves) / queries)
            )
        if not seen:
            raise ConfigurationError("no obs runs supplied")
        return cls(
            {name: _fit(points) for name, points in samples.items()},
            page_size=page_size,
            source=f"obs:{clock}",
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}=({c.alpha:.3e}+{c.gamma:.3e}/frame)"
            for name, c in self.coefficients.items()
        )
        return f"CalibratedCostModel(source={self.source}, {parts})"


def _per_query_phases(
    tracer: Tracer, queries: int, clock: str
) -> Dict[str, float]:
    """Per-query seconds for each leaf phase plus the ``other`` residual."""
    totals = tracer.phase_totals()

    def seconds(name: str) -> float:
        total = totals.get(name)
        if total is None:
            return 0.0
        return (total.virtual_seconds if clock == "virtual"
                else total.wall_seconds)

    out = {name: seconds(name) / queries for name in PHASE_NAMES}
    leaves = sum(out.values()) * queries
    out[OTHER_PHASE] = max(0.0, seconds("request") - leaves) / queries
    return out
