"""Online controller: re-tune cost knobs from live metrics, never privacy.

A :class:`PlanController` closes the runtime half of the planning loop: it
samples the :class:`~repro.obs.registry.MetricsRegistry` each interval —
the per-request latency histogram (windowed p99 via interpolated
:func:`~repro.obs.registry.quantile_from_counts` over the bucket-count
delta since the previous cycle), the admission shed counters, and the
keystream pipeline's hit/miss counters — and nudges three *cost-side*
tunables toward the latency target:

* the :class:`~repro.net.admission.AdmissionController` token bucket
  (shed-driven rate raises when latency has room, multiplicative backoff
  when p99 breaches the target);
* the :class:`~repro.crypto.pipeline.KeystreamPipeline` byte budget
  (grow while misses dominate, shrink when the cache is comfortably
  over-provisioned);
* the :class:`~repro.shuffle.online.OnlineReshuffler` pacing — the
  ROADMAP item-5 adaptive-pacing follow-on: speed the epoch up while the
  latency budget is idle, back off when p99 nears the target.

Every change is clamped by an explicit :class:`Guardrail`, recorded on
``plan.adjust.<tunable>`` counters and in :attr:`PlanController.adjustments`,
and executed inside a ``plan.controller`` tracer span.

**What the controller may never touch** (DESIGN.md §16): the privacy
parameters k, m, and the cover count.  They shape the *access-pattern
distribution* the privacy guarantee is computed from (Eqs. 1-6); changing
them in response to observed load would correlate the distribution with
the workload — exactly the leak the scheme exists to prevent — and any
c-improving change only holds after a full re-permutation epoch anyway.
The controller has no references to them, by construction: it is handed
only the three cost-side tunables above.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from ..errors import ConfigurationError
from ..obs.registry import HistogramState, MetricsRegistry, quantile_from_counts
from ..obs.tracer import NULL_TRACER
from ..sim.metrics import CounterSet

__all__ = ["Guardrail", "PlanController", "Adjustment"]

_JOIN_TIMEOUT = 5.0


@dataclass(frozen=True)
class Guardrail:
    """Inclusive floor/ceiling bounds for one tunable."""

    floor: float
    ceiling: float

    def __post_init__(self) -> None:
        if not self.floor <= self.ceiling:
            raise ConfigurationError(
                f"guardrail floor {self.floor} exceeds ceiling {self.ceiling}"
            )

    def clamp(self, value: float) -> float:
        return min(max(value, self.floor), self.ceiling)


@dataclass(frozen=True)
class Adjustment:
    """One recorded controller action: which knob moved, from where to where."""

    cycle: int
    tunable: str
    parameter: str
    before: float
    after: float


class PlanController:
    """Guardrailed feedback loop over the cost-side tunables (module doc).

    ``reshuffler`` may be the driver object itself or a zero-argument
    callable returning the *current* driver (epochs create fresh drivers;
    ``lambda: db.reshuffle`` tracks them).  ``step()`` runs one cycle
    synchronously — deterministic tests and benchmarks drive it directly —
    while ``start()``/``close()`` run the same cycle on a background
    daemon thread every ``interval`` seconds.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        target_p99: float,
        histogram: str = "engine.query_seconds",
        admission=None,
        pipeline=None,
        reshuffler: Union[None, object, Callable[[], object]] = None,
        interval: float = 0.25,
        tracer=None,
        low_water: float = 0.5,
        high_water: float = 0.9,
        hit_rate_target: float = 0.5,
        admission_guardrail: Guardrail = Guardrail(1.0, 1e6),
        pipeline_guardrail: Guardrail = Guardrail(64 * 1024, 64 * 1024 * 1024),
        batch_guardrail: Guardrail = Guardrail(1, 1024),
        idle_guardrail: Guardrail = Guardrail(1e-5, 0.5),
    ):
        if target_p99 <= 0:
            raise ConfigurationError("target_p99 must be positive")
        if interval <= 0:
            raise ConfigurationError("controller interval must be positive")
        if not 0 < low_water < high_water <= 1:
            raise ConfigurationError(
                "need 0 < low_water < high_water <= 1"
            )
        self.registry = registry
        self.target_p99 = target_p99
        self.histogram_name = histogram
        self.admission = admission
        self.pipeline = pipeline
        self._reshuffler = reshuffler
        self.interval = interval
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.low_water = low_water
        self.high_water = high_water
        self.hit_rate_target = hit_rate_target
        self.admission_guardrail = admission_guardrail
        self.pipeline_guardrail = pipeline_guardrail
        self.batch_guardrail = batch_guardrail
        self.idle_guardrail = idle_guardrail

        self.counters = CounterSet(registry=registry, prefix="plan.")
        self._p99_gauge = registry.gauge("plan.window_p99")
        self.adjustments: List[Adjustment] = []
        self._cycle = 0
        self._last_hist: Optional[HistogramState] = None
        self._last_counters: Dict[str, int] = {}

        self._wake = threading.Condition()
        self._closed = False
        self._worker: Optional[threading.Thread] = None

    # -- windowed observation --------------------------------------------------

    def _window_p99(self) -> Optional[float]:
        """p99 of the samples observed since the previous cycle.

        Subtracts the previous cycle's bucket counts from the current
        histogram state and interpolates the quantile on the delta; the
        first cycle (no baseline) uses the whole distribution.  Returns
        ``None`` when the window holds no new samples.
        """
        state = self.registry.histogram(self.histogram_name).state()
        last, self._last_hist = self._last_hist, state
        if last is None:
            counts, count = state.counts, state.count
        else:
            counts = [b - a for a, b in zip(last.counts, state.counts)]
            count = state.count - last.count
        if count <= 0:
            return None
        return quantile_from_counts(
            state.buckets, counts, count, 0.99,
            minimum=state.min, maximum=state.max, interpolate=True,
        )

    def _counter_delta(self, name: str) -> int:
        """Windowed increase of one registry counter since the last cycle."""
        value = self.registry.counter(name).value
        before = self._last_counters.get(name, 0)
        self._last_counters[name] = value
        return value - before

    # -- one control cycle -----------------------------------------------------

    def step(self) -> Optional[float]:
        """Run one control cycle; returns the windowed p99 (None if idle)."""
        with self.tracer.span("plan.controller"):
            self._cycle += 1
            self.counters.increment("cycles")
            p99 = self._window_p99()
            if p99 is not None:
                self._p99_gauge.set(p99)
            self._tune_admission(p99)
            self._tune_pipeline()
            self._tune_reshuffle(p99)
            return p99

    def _record(self, tunable: str, parameter: str,
                before: float, after: float) -> None:
        self.adjustments.append(Adjustment(
            self._cycle, tunable, parameter, before, after
        ))

    def _tune_admission(self, p99: Optional[float]) -> None:
        admission = self.admission
        if admission is None or admission.bucket is None:
            return
        bucket = admission.bucket
        sheds = self._counter_delta("net.shed")
        rate = bucket.rate
        if p99 is not None and p99 > self.target_p99:
            # Over the bound: shed harder so queued latency drains.
            new_rate = self.admission_guardrail.clamp(rate * 0.7)
        elif sheds > 0 and (p99 is None or p99 < self.low_water * self.target_p99):
            # Shedding while the latency budget is idle: admit more.
            new_rate = self.admission_guardrail.clamp(rate * 1.25)
        else:
            return
        if new_rate == rate:
            return
        # Keep the burst proportional to the sustained rate.
        new_capacity = max(1.0, bucket.capacity * new_rate / rate)
        admission.retune(rate=new_rate, capacity=new_capacity)
        self.counters.increment("adjust.admission")
        self._record("admission", "rate", rate, new_rate)

    def _tune_pipeline(self) -> None:
        pipeline = self.pipeline
        if pipeline is None:
            return
        hits = self._counter_delta("pipeline.hit")
        misses = self._counter_delta("pipeline.miss")
        window = hits + misses
        budget = pipeline.max_bytes
        if window > 0 and misses / window > 1 - self.hit_rate_target:
            # Miss-dominated: the working set outruns the budget.
            new_budget = int(self.pipeline_guardrail.clamp(budget * 2))
        elif (window > 0 and hits / window > 0.95
              and pipeline.cached_bytes < budget // 4):
            # Near-perfect hit rate with 3/4 of the budget idle: give the
            # host memory back.
            new_budget = int(self.pipeline_guardrail.clamp(budget / 2))
        else:
            return
        if new_budget == budget:
            return
        pipeline.set_max_bytes(new_budget)
        self.counters.increment("adjust.pipeline")
        self._record("pipeline", "max_bytes", budget, new_budget)

    def _tune_reshuffle(self, p99: Optional[float]) -> None:
        source = self._reshuffler
        reshuffler = source() if callable(source) else source
        if reshuffler is None or not getattr(reshuffler, "active", False):
            return
        batch = reshuffler.batch_size
        idle = reshuffler.idle_interval
        if p99 is not None and p99 > self.high_water * self.target_p99:
            # Tail near the bound: smaller batches hold the op lock for
            # less, longer idles yield it more often.
            new_batch = int(self.batch_guardrail.clamp(batch // 2))
            new_idle = self.idle_guardrail.clamp(max(idle, 1e-5) * 2)
        elif p99 is None or p99 < self.low_water * self.target_p99:
            # Latency budget idle: spend it finishing the epoch sooner.
            new_batch = int(self.batch_guardrail.clamp(batch * 2))
            new_idle = self.idle_guardrail.clamp(idle / 2)
        else:
            return
        if new_batch == batch and new_idle == idle:
            return
        reshuffler.set_pacing(batch_size=new_batch, idle_interval=new_idle)
        self.counters.increment("adjust.reshuffle")
        if new_batch != batch:
            self._record("reshuffle", "batch_size", batch, new_batch)
        if new_idle != idle:
            self._record("reshuffle", "idle_interval", idle, new_idle)

    # -- background lifecycle --------------------------------------------------

    def start(self) -> "PlanController":
        """Spawn the daemon sampling loop (idempotent while alive)."""
        with self._wake:
            if self._closed:
                raise ConfigurationError("controller is closed")
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._worker_loop, name="plan-controller",
                    daemon=True,
                )
                self._worker.start()
        return self

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                if self._closed:
                    return
                self._wake.wait(timeout=self.interval)
                if self._closed:
                    return
            self.step()

    def close(self) -> None:
        """Stop the background loop (idempotent; step() keeps working)."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=_JOIN_TIMEOUT)
            self._worker = None

    def __enter__(self) -> "PlanController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
