"""Capacity planning and runtime autotuning for the privacy/cost trade-off.

The paper's contribution is a *tunable* trade-off (privacy parameter c
against per-query cost); this package closes the loop that tunes it.  Two
halves, one offline and one online:

* :mod:`~repro.plan.model` + :mod:`~repro.plan.planner` — the **offline
  capacity planner**.  :class:`CalibratedCostModel` carries per-phase unit
  costs (from the Eq. 8 spec constants, a short self-measured probe run,
  or a supplied obs JSONL export); :func:`plan` inverts the Eq. 1-8 cost
  model to turn a target triple (p99 latency bound, sustained QPS,
  privacy bound c — or ϵ in the Toledo-style relaxed mode, ``c = e^ϵ``)
  into a full deployable parameter assignment: k, m, shard count,
  fused-batch window, keystream-pipeline byte budget, hot-tier frames and
  admission rate/burst.  Infeasible targets raise
  :class:`~repro.errors.PlanInfeasibleError` naming the binding
  constraint.

* :mod:`~repro.plan.controller` — the **online controller**.  A
  background loop samples the :class:`~repro.obs.registry.MetricsRegistry`
  and re-tunes the *cost-side* knobs (admission token bucket, pipeline
  byte budget, reshuffle pacing) under explicit guardrails.  Privacy
  parameters (k, m, cover count) are structurally out of its reach — see
  DESIGN.md §16.

CLI: ``python -m repro plan`` (table or ``--json``; ``--verify`` measures
the plan and reports per-term prediction error).
"""

from .controller import Guardrail, PlanController
from .model import PHASE_NAMES, CalibratedCostModel, PhaseCoefficients
from .planner import Plan, PlanTarget, plan, verify_plan

__all__ = [
    "CalibratedCostModel",
    "PhaseCoefficients",
    "PHASE_NAMES",
    "Plan",
    "PlanTarget",
    "plan",
    "verify_plan",
    "Guardrail",
    "PlanController",
]
