"""Offline capacity planner: invert Eqs. 1-8 from a target triple.

The operator states *what* they need — a p99 latency bound, a sustained
QPS, and a privacy bound (c directly, or ϵ in the Toledo-style relaxed
mode where ``c = e^ϵ`` bounds the adversary's posterior odds ratio,
PAPERS.md) — and :func:`plan` solves for *how*: every knob the stack
exposes, derived in dependency order.

1. **Latency → k** (Eq. 8 inverted).  The calibrated query time is affine
   and increasing in k, so the largest block size whose predicted time
   fits inside ``latency_headroom * p99`` is a binary search.  No k at
   all → ``PlanInfeasibleError("latency")``.
2. **Privacy → m** (Eq. 6 inverted).  For a candidate k the scan period
   is ``T = n/k`` and the cache that achieves c is
   ``m = 1 / (1 - c^(-1/(T-1)))``, nudged up until the *padded* layout
   (:meth:`SystemParameters.from_block_size`) actually meets the bound.
   Rule of the trade-off: smaller k → cheaper queries but longer scan
   period → larger m → more secure memory (Eq. 7).  The planner takes the
   smallest k in ``[1, k_max]`` whose required state fits the hardware's
   secure memory; none fitting → ``PlanInfeasibleError("secure_memory")``.
3. **Throughput → shards**.  Each shard serves one query per predicted
   query time; ``ceil(qps * Q / utilization)`` shards sustain the target
   with headroom.  More than ``max_shards`` →
   ``PlanInfeasibleError("throughput")``.
4. **Derived budgets** — fused-batch window (requests arriving during one
   service time, GPIR's device-throughput sizing), keystream-pipeline
   byte budget (two windows of frames), hot-tier frames (what the host
   memory budget holds), admission rate/burst (shard capacity, burst one
   p99 deep).

``verify_plan`` closes the loop: it builds a database with the planned
(k, m), measures the per-phase cost of a traced query run, and reports
each phase's prediction error — the number the CI bench lane gates at
15%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .model import OTHER_PHASE, PHASE_NAMES, CalibratedCostModel, frame_size_for
from ..analysis.costmodel import AnalyticalCostModel
from ..core.params import SystemParameters
from ..errors import ConfigurationError, PlanInfeasibleError
from ..hardware.specs import IBM_4764, HardwareSpec
from ..obs.tracer import Tracer

__all__ = ["PlanTarget", "Plan", "plan", "verify_plan"]

_MIN_PIPELINE_BYTES = 64 * 1024
_DEFAULT_HOST_MEMORY = 256 * 1024 * 1024


@dataclass(frozen=True)
class PlanTarget:
    """What the operator wants: latency, throughput, privacy, workload.

    Exactly one of ``privacy_c`` (the paper's c-approximate bound) or
    ``epsilon`` (Toledo-style relaxation, ``c = e^ϵ``) must be given.
    """

    num_pages: int
    page_size: int
    p99_seconds: float
    qps: float
    privacy_c: Optional[float] = None
    epsilon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise ConfigurationError("target num_pages must be positive")
        if self.page_size <= 0:
            raise ConfigurationError("target page_size must be positive")
        if self.p99_seconds <= 0:
            raise ConfigurationError("target p99 bound must be positive")
        if self.qps <= 0:
            raise ConfigurationError("target QPS must be positive")
        if (self.privacy_c is None) == (self.epsilon is None):
            raise ConfigurationError(
                "state the privacy target as exactly one of privacy_c or "
                "epsilon (c = e^epsilon)"
            )

    @property
    def resolved_c(self) -> float:
        """The privacy bound as c, whichever way it was stated."""
        if self.privacy_c is not None:
            return float(self.privacy_c)
        return math.exp(float(self.epsilon))


@dataclass(frozen=True)
class Plan:
    """A full deployable parameter assignment with its predicted costs."""

    target: PlanTarget
    block_size: int
    cache_pages: int
    num_locations: int
    achieved_c: float
    shard_count: int
    batch_window: int
    pipeline_max_bytes: int
    hot_tier_frames: int
    admission_rate: float
    admission_burst: float
    predicted_query_seconds: float
    predicted_phase_seconds: Dict[str, float] = field(default_factory=dict)
    secure_storage_bytes: float = 0.0
    calibration_source: str = "spec"

    @property
    def capacity_qps(self) -> float:
        """Aggregate sustainable queries/second across all shards."""
        return self.admission_rate

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable flat view (the ``plan --json`` payload)."""
        return {
            "target": {
                "num_pages": self.target.num_pages,
                "page_size": self.target.page_size,
                "p99_seconds": self.target.p99_seconds,
                "qps": self.target.qps,
                "privacy_c": self.target.privacy_c,
                "epsilon": self.target.epsilon,
                "resolved_c": self.target.resolved_c,
            },
            "block_size": self.block_size,
            "cache_pages": self.cache_pages,
            "num_locations": self.num_locations,
            "achieved_c": self.achieved_c,
            "shard_count": self.shard_count,
            "batch_window": self.batch_window,
            "pipeline_max_bytes": self.pipeline_max_bytes,
            "hot_tier_frames": self.hot_tier_frames,
            "admission_rate": self.admission_rate,
            "admission_burst": self.admission_burst,
            "predicted_query_seconds": self.predicted_query_seconds,
            "predicted_phase_seconds": dict(self.predicted_phase_seconds),
            "secure_storage_bytes": self.secure_storage_bytes,
            "calibration_source": self.calibration_source,
        }


def _cache_for_privacy(num_pages: int, block_size: int,
                       target_c: float) -> SystemParameters:
    """Eq. 6 inverted: the smallest m meeting c at this k, on the padded
    layout (padding lengthens T = n/k, so the closed form is nudged up
    until the achieved c of the real layout clears the bound)."""
    period = num_pages / block_size
    if period <= 1.0:
        cache = 2
    else:
        cache = math.ceil(1.0 / (1.0 - target_c ** (-1.0 / (period - 1.0))))
    cache = max(2, cache)
    params = SystemParameters.from_block_size(
        num_pages, cache, block_size, page_capacity=1024
    )
    while params.achieved_c > target_c * (1 + 1e-12):
        cache = math.ceil(cache * 1.05) + 1
        if cache >= num_pages * 1000:
            raise ConfigurationError(
                f"cache inversion diverged at k={block_size}, c={target_c}"
            )
        params = SystemParameters.from_block_size(
            num_pages, cache, block_size, page_capacity=1024
        )
    return params


def _secure_storage(params: SystemParameters, page_size: int) -> float:
    return AnalyticalCostModel.secure_storage_bytes(
        params.num_locations, params.cache_capacity, params.block_size,
        page_size,
    )


def _candidate_block_sizes(k_max: int) -> List[int]:
    """Small-to-large candidate grid: exhaustive below 512, geometric above.

    The planner prefers the smallest feasible k (cheapest queries); the
    geometric tail (ratio 1.05) bounds the search at a few hundred model
    evaluations for any database size while staying within 5% of the true
    smallest feasible k.
    """
    if k_max <= 512:
        return list(range(1, k_max + 1))
    sizes = list(range(1, 513))
    k = 512
    while k < k_max:
        k = max(k + 1, int(k * 1.05))
        sizes.append(min(k, k_max))
    if sizes[-1] != k_max:
        sizes.append(k_max)
    return sizes


def plan(
    target: PlanTarget,
    model: Optional[CalibratedCostModel] = None,
    spec: HardwareSpec = IBM_4764,
    latency_headroom: float = 0.8,
    utilization: float = 0.7,
    max_shards: int = 64,
    host_memory_bytes: int = _DEFAULT_HOST_MEMORY,
) -> Plan:
    """Solve the target triple for a full parameter assignment (module doc).

    ``model`` defaults to the spec-exact Eq. 8 mapping; pass a probe- or
    obs-calibrated model to plan against measured unit costs.
    ``latency_headroom`` reserves tail room between the *predicted mean*
    query time and the p99 bound (queueing, reshuffle interleaving);
    ``utilization`` is the shard duty-cycle ceiling the throughput sizing
    assumes.
    """
    if not 0 < latency_headroom <= 1:
        raise ConfigurationError("latency_headroom must be in (0, 1]")
    if not 0 < utilization <= 1:
        raise ConfigurationError("utilization must be in (0, 1]")
    if max_shards < 1:
        raise ConfigurationError("max_shards must be positive")
    if model is None:
        model = CalibratedCostModel.from_spec(spec, target.page_size)

    privacy_c = target.resolved_c
    if privacy_c <= 1.0:
        raise PlanInfeasibleError(
            f"privacy target c={privacy_c:g} is not tunable: c = 1 is "
            "perfect privacy (read the whole database per request — the "
            "trivial-PIR baseline), and c < 1 is not defined",
            constraint="privacy",
        )

    # 1. Latency bound -> largest admissible block size (binary search on
    # the affine, increasing query-time prediction).
    budget = latency_headroom * target.p99_seconds
    if model.query_time(1) > budget:
        raise PlanInfeasibleError(
            f"p99 bound {target.p99_seconds:g}s is below the k=1 floor "
            f"{model.query_time(1):g}s / {latency_headroom:g} headroom — no "
            "block size meets it at this page size",
            constraint="latency",
        )
    lo, hi = 1, target.num_pages
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if model.query_time(mid) <= budget:
            lo = mid
        else:
            hi = mid - 1
    k_max = lo

    # 2. Privacy bound -> smallest k whose required cache fits the secure
    # memory (smaller k = cheaper queries but larger m; Eq. 7 decides).
    limit = spec.total_secure_memory
    chosen: Optional[SystemParameters] = None
    best_storage = float("inf")
    for k in _candidate_block_sizes(k_max):
        params = _cache_for_privacy(target.num_pages, k, privacy_c)
        storage = _secure_storage(params, target.page_size)
        best_storage = min(best_storage, storage)
        if storage <= limit:
            chosen = params
            break
    if chosen is None:
        raise PlanInfeasibleError(
            f"privacy c={privacy_c:g} within p99 {target.p99_seconds:g}s "
            f"needs at least {best_storage / 1e6:.1f} MB of secure state "
            f"but the hardware has {limit / 1e6:.1f} MB "
            f"({spec.units} unit(s)); add units, relax c, or raise the "
            "latency bound",
            constraint="secure_memory",
        )
    k = chosen.block_size
    predicted = model.predict(k)
    query_seconds = predicted.pop("total")

    # 3. Throughput -> shard fan-out at the duty-cycle ceiling.
    shard_count = max(1, math.ceil(target.qps * query_seconds / utilization))
    if shard_count > max_shards:
        raise PlanInfeasibleError(
            f"QPS {target.qps:g} at {query_seconds:g}s/query needs "
            f"{shard_count} shards; the deployment allows {max_shards}",
            constraint="throughput",
        )

    # 4. Derived budgets.
    frame = frame_size_for(target.page_size)
    per_shard_qps = target.qps / shard_count
    batch_window = int(min(
        max(1, math.ceil(per_shard_qps * query_seconds)), max(1, k)
    ))
    pipeline_max_bytes = max(
        _MIN_PIPELINE_BYTES, 2 * (k + batch_window) * frame
    )
    hot_tier_frames = min(chosen.num_locations, host_memory_bytes // frame)
    if hot_tier_frames < 2 * k:
        hot_tier_frames = 0  # not worth a tier that misses most of a block
    admission_rate = shard_count * utilization / query_seconds
    admission_burst = max(
        1.0, admission_rate * min(target.p99_seconds, 1.0)
    )

    return Plan(
        target=target,
        block_size=k,
        cache_pages=chosen.cache_capacity,
        num_locations=chosen.num_locations,
        achieved_c=chosen.achieved_c,
        shard_count=shard_count,
        batch_window=batch_window,
        pipeline_max_bytes=pipeline_max_bytes,
        hot_tier_frames=hot_tier_frames,
        admission_rate=admission_rate,
        admission_burst=admission_burst,
        predicted_query_seconds=query_seconds,
        predicted_phase_seconds=predicted,
        secure_storage_bytes=_secure_storage(chosen, target.page_size),
        calibration_source=model.source,
    )


def verify_plan(
    built_plan: Plan,
    model: CalibratedCostModel,
    queries: int = 32,
    seed: int = 1234,
    clock: str = "virtual",
    spec: HardwareSpec = IBM_4764,
    build_pages: Optional[int] = 1024,
) -> List[Dict[str, float]]:
    """Measure the plan and report per-phase prediction error.

    Builds a database with the plan's block size at the target's page
    size, runs ``queries`` traced retrievals, and returns one row per
    phase: ``{"phase", "predicted_s", "measured_s", "error"}`` where
    ``error`` is the relative error against the measured value (0.0 when
    both sides are ~zero).  The CI bench lane gates every row's error at
    15%.

    Per-query phase cost is a function of (k, page size) only — each
    retrieval moves the same k+1 frames regardless of n and m — so when
    the target database is larger than ``build_pages`` the measurement
    runs on a scaled-down build with the same k and page size (and a
    correspondingly smaller cache); pass ``build_pages=None`` to force a
    full-size build.
    """
    from .model import _per_query_phases
    from ..baselines import make_records
    from ..core.database import PirDatabase

    if queries <= 0:
        raise ConfigurationError("verify queries must be positive")
    target = built_plan.target
    num_pages = target.num_pages
    cache_pages = built_plan.cache_pages
    if build_pages is not None and num_pages > build_pages:
        num_pages = max(build_pages, 2 * built_plan.block_size)
        cache_pages = max(2, min(cache_pages, num_pages // 4))
    tracer = Tracer()
    db = PirDatabase.create(
        make_records(num_pages, target.page_size),
        cache_capacity=cache_pages,
        block_size=built_plan.block_size,
        page_capacity=target.page_size,
        seed=seed,
        spec=spec,
        tracer=tracer,
    )
    try:
        if clock == "wall":
            for i in range(4):
                db.query(i % db.num_pages)
            tracer.reset()
        for i in range(queries):
            db.query(i % db.num_pages)
        measured = _per_query_phases(tracer, queries, clock)
    finally:
        db.close()

    rows: List[Dict[str, float]] = []
    predicted = dict(built_plan.predicted_phase_seconds)
    for name in PHASE_NAMES + (OTHER_PHASE,):
        rows.append(_error_row(name, predicted.get(name, 0.0),
                               measured.get(name, 0.0)))
    rows.append(_error_row(
        "total", built_plan.predicted_query_seconds,
        sum(measured.values()),
    ))
    return rows


def _error_row(name: str, predicted: float, measured: float) -> Dict[str, float]:
    if measured > 0:
        error = abs(predicted - measured) / measured
    elif predicted > 0:
        error = float("inf")
    else:
        error = 0.0
    return {
        "phase": name,
        "predicted_s": predicted,
        "measured_s": measured,
        "error": error,
    }
