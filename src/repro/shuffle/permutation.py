"""Secret permutations of page locations.

The initial database layout is a uniformly random permutation known only to
the secure hardware (it is implicit in ``pageMap`` afterwards).  This module
provides the permutation object used at setup plus composition/inversion
helpers used by tests and the Wang-et-al. baseline's periodic reshuffles.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ..crypto.rng import SecureRandom
from ..errors import ConfigurationError

__all__ = ["Permutation"]


class Permutation:
    """A bijection on ``[0, n)`` with forward and inverse application."""

    def __init__(self, mapping: Sequence[int]):
        n = len(mapping)
        if n == 0:
            raise ConfigurationError("permutation must be non-empty")
        seen = [False] * n
        for value in mapping:
            if not 0 <= value < n or seen[value]:
                raise ConfigurationError("mapping is not a permutation of [0, n)")
            seen[value] = True
        self._forward: List[int] = list(mapping)
        self._inverse: List[int] = [0] * n
        for index, value in enumerate(self._forward):
            self._inverse[value] = index

    @staticmethod
    def identity(n: int) -> "Permutation":
        return Permutation(range(n))

    @staticmethod
    def random(n: int, rng: SecureRandom) -> "Permutation":
        """Uniformly random permutation via Fisher-Yates on the secure RNG."""
        mapping = list(range(n))
        rng.shuffle(mapping)
        return Permutation(mapping)

    def __len__(self) -> int:
        return len(self._forward)

    def __iter__(self) -> Iterator[int]:
        return iter(self._forward)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self._forward == other._forward

    def __hash__(self) -> int:
        return hash(tuple(self._forward))

    def apply(self, index: int) -> int:
        """Where item ``index`` is sent: ``pi(index)``."""
        return self._forward[self._check(index)]

    def invert(self, position: int) -> int:
        """Which item occupies ``position``: ``pi^{-1}(position)``."""
        return self._inverse[self._check(position)]

    def compose(self, other: "Permutation") -> "Permutation":
        """``self after other``: ``(self.compose(other)).apply(i) == self.apply(other.apply(i))``."""
        if len(other) != len(self):
            raise ConfigurationError("cannot compose permutations of different sizes")
        return Permutation([self._forward[other.apply(i)] for i in range(len(self))])

    def inverse(self) -> "Permutation":
        return Permutation(self._inverse)

    def is_identity(self) -> bool:
        return all(value == index for index, value in enumerate(self._forward))

    def as_list(self) -> List[int]:
        return list(self._forward)

    def _check(self, index: int) -> int:
        if not 0 <= index < len(self._forward):
            raise ConfigurationError(
                f"index {index} out of range for permutation of {len(self._forward)}"
            )
        return index
