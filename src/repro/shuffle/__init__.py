"""Oblivious permutation substrate for the setup phase."""

from .oblivious import ObliviousShuffler, batcher_network, direct_permute, network_size
from .permutation import Permutation

__all__ = [
    "ObliviousShuffler",
    "batcher_network",
    "direct_permute",
    "network_size",
    "Permutation",
]
