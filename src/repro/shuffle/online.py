"""Online background re-permutation: the Batcher sort, without the stall.

The setup-time oblivious shuffle (:mod:`repro.shuffle.oblivious`) is an
offline, stop-the-world event — O(n log² n) compare-exchanges during which
the database serves nothing.  That is acceptable once, at build time; it is
exactly the downtime failure mode the paper's §1 criticises when it recurs
at every reshuffle/key-rotation epoch.  :class:`OnlineReshuffler` executes
the *same* comparator network incrementally: a bounded budget of
compare-exchanges per idle slot (the keystream pipeline's idle-time trick,
PR 4, applied to I/O), interleaved with live serving under the engine's
``op_lock``.

Epoch structure — each epoch performs two phases over one logical frontier:

1. **Sort phase** (units ``0 .. network_size(n)``): the comparators of
   Batcher's odd-even merge network, in network order, each comparing the
   secret per-epoch PRF tags of the two resident pages and swapping on
   demand.  Both frames are always rewritten with fresh nonces, so
   swap/no-swap is invisible — identical to the setup sort.
2. **Refresh sweep** (units ``network_size(n) .. +n``): one sequential
   reseal of every location.  The sweep guarantees *every* frame carries a
   fresh post-epoch encryption even where the network's comparator set is
   sparse (non-power-of-two n), which is what lets a piggybacked key
   rotation drop the legacy key at epoch end.

Serving interleaves freely between comparator batches: the page map is
updated transactionally with each batch, so a read always resolves through
the current (old-or-new, depending on the frontier) location — the
"epoch-aware page map".  The privacy argument (why the interleaved access
sequence leaks nothing, and why serving perturbation mid-sort still yields
a fresh secret permutation) is recorded in DESIGN.md §15.

Crash consistency mirrors the engine's compute → intend → apply: each batch
seals a :class:`ReshuffleIntent` (all rewritten frames + the page-map
delta + the frontier advance) into the reshuffler's *own* journal slot
(never the engine's — their recovery state machines are independent),
applies it, then clears the slot.  :meth:`OnlineReshuffler.recover` rolls a
torn batch forward after a restart; a transiently failed batch apply is
retained and healed before the next engine request computes, exactly like a
failed request write-back.
"""

from __future__ import annotations

import hashlib
import itertools
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .oblivious import batcher_network, network_size
from ..core.journal import RecordCursor
from ..errors import (
    AuthenticationError,
    ConfigurationError,
    CryptoError,
    RecoveryError,
    ReproError,
    StorageError,
)
from ..obs.tracer import NULL_TRACER
from ..sim.metrics import CounterSet

__all__ = ["OnlineReshuffler", "ReshuffleIntent", "TAG_KEY_SIZE"]

_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")

_INTENT_MAGIC = b"RSH1"
_STATE_MAGIC = b"RSS1"

TAG_KEY_SIZE = 32
_TAG_SIZE = 16

_DEFAULT_BATCH = 16
_DEFAULT_IDLE_SECONDS = 0.001
_JOIN_TIMEOUT = 5.0


def _tag(epoch_key: bytes, page_id: int) -> bytes:
    """The secret per-epoch sort key of one page: PRF(epoch_key, page_id).

    Computing tags on demand (keyed BLAKE2b) instead of storing them means
    the trusted side holds O(1) tag state for the whole epoch, and the
    sort's comparisons stay a pure function of (epoch key, page id) — which
    is what makes a crash-interrupted epoch resumable.
    """
    return hashlib.blake2b(
        _U64.pack(page_id), digest_size=_TAG_SIZE, key=epoch_key
    ).digest()


@dataclass
class ReshuffleIntent:
    """Redo record for one comparator (or sweep) batch; absolute values only."""

    epoch: int
    frontier_before: int
    frontier_after: int
    locations: List[int] = field(default_factory=list)
    frames: List[bytes] = field(default_factory=list)
    map_ops: List[Tuple[int, int]] = field(default_factory=list)

    def encode(self) -> bytes:
        parts: List[bytes] = [
            _INTENT_MAGIC,
            _U64.pack(self.epoch),
            _U64.pack(self.frontier_before),
            _U64.pack(self.frontier_after),
            _U32.pack(len(self.locations)),
        ]
        parts += [_U64.pack(location) for location in self.locations]
        parts.append(_U32.pack(len(self.map_ops)))
        for page_id, location in self.map_ops:
            parts.append(_U64.pack(page_id))
            parts.append(_U64.pack(location))
        parts.append(_U32.pack(len(self.frames)))
        for frame in self.frames:
            parts.append(_U32.pack(len(frame)))
            parts.append(frame)
        return b"".join(parts)

    @classmethod
    def decode(cls, blob: bytes) -> "ReshuffleIntent":
        if bytes(blob[:4]) != _INTENT_MAGIC:
            raise StorageError("reshuffle record has a bad magic number")
        cursor = RecordCursor(blob, offset=4)
        intent = cls(
            epoch=cursor.take(_U64),
            frontier_before=cursor.take(_U64),
            frontier_after=cursor.take(_U64),
        )
        intent.locations = [
            cursor.take(_U64) for _ in range(cursor.take(_U32))
        ]
        for _ in range(cursor.take(_U32)):
            page_id = cursor.take(_U64)
            intent.map_ops.append((page_id, cursor.take(_U64)))
        for _ in range(cursor.take(_U32)):
            intent.frames.append(cursor.take_bytes(cursor.take(_U32)))
        cursor.expect_end("reshuffle record")
        if len(intent.frames) != len(intent.locations):
            raise StorageError("reshuffle record frame/location mismatch")
        return intent


class OnlineReshuffler:
    """Incremental Batcher driver over a live :class:`PirDatabase`.

    Foreground use: ``begin()`` then ``step()`` (one bounded batch per
    call, typically between serving bursts) or ``run()`` (to completion).
    Background use: ``start()`` spawns a daemon worker that steps whenever
    an epoch is active, yielding ``idle_interval`` seconds between batches
    so serving threads acquire the op lock promptly.

    ``journal`` is the reshuffler's own single-slot intent journal (any
    ``write``/``read``/``clear`` object).  It must never alias the
    engine's: each recovery state machine treats a foreign record as torn
    and clears it.
    """

    def __init__(
        self,
        database,
        batch_size: int = _DEFAULT_BATCH,
        journal=None,
        idle_interval: float = _DEFAULT_IDLE_SECONDS,
        metrics=None,
        tracer=None,
    ):
        if batch_size <= 0:
            raise ConfigurationError("reshuffle batch size must be positive")
        if journal is not None and journal is database.engine.journal:
            raise ConfigurationError(
                "the reshuffler needs its own journal slot; sharing the "
                "engine's would make each recovery clear the other's records"
            )
        self.db = database
        self.engine = database.engine
        self.cop = database.cop
        self.batch_size = batch_size
        self.journal = journal
        self.idle_interval = idle_interval
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.counters = CounterSet(registry=metrics, prefix="reshuffle.")
        self._gauge = metrics.gauge("reshuffle.progress") if metrics else None

        n = self.engine.params.num_locations
        self._network = network_size(n)
        self._total = self._network + n

        # Epoch state; mutated only under the engine op lock.  The epoch
        # counter is *database-global* (stashed on the database object),
        # not per-driver: a fresh driver restarting at epoch 1 would spawn
        # the same "reshuffle-epoch-1" sibling label as its predecessor
        # and replay that nonce stream against the same master key.
        self._epoch = int(getattr(database, "_reshuffle_epoch_base", 0))
        self._frontier = 0
        self._active = False
        self._rotate_pending = False
        self._epoch_key = b""
        # Comparator stream cache: iterator + how many comparators it has
        # yielded.  _comparator_slice validates that position against the
        # frontier on every use, so which comparators a batch executes is
        # a pure function of the frontier — never of iterator history.
        self._comparators: Optional[Iterator[Tuple[int, int]]] = None
        self._comparators_pos = 0
        # Independent nonce stream for background reseals (same derived
        # keys as the engine's suite, so its frames decrypt normally).
        self._suite = None
        self._key_rng = self.cop.rng.spawn("reshuffle-keys")
        self._pending: Optional[ReshuffleIntent] = None

        # Background worker plumbing (the keystream pipeline's shape).
        self._wake = threading.Condition()
        self._closed = False
        self._worker: Optional[threading.Thread] = None

        # A transiently failed batch apply must be rolled forward before
        # the *engine* computes against the half-updated map, not merely
        # before the next reshuffle step — so the engine heals us too.
        self.engine._background_healers.append(self._heal_pending)

    # -- introspection ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while an epoch is in progress (frontier < total units)."""
        return self._active

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def frontier(self) -> int:
        """Units completed this epoch: comparators first, then sweep slots."""
        return self._frontier

    @property
    def total_units(self) -> int:
        """Units in one full epoch: network_size(n) comparators + n sweeps."""
        return self._total

    @property
    def progress(self) -> float:
        """Fraction of the current epoch completed (1.0 when idle/done)."""
        if not self._active:
            return 1.0
        return self._frontier / self._total if self._total else 1.0

    @property
    def write_back_pending(self) -> bool:
        return self._pending is not None

    @property
    def journal_pending(self) -> bool:
        return self.journal is not None and self.journal.read() is not None

    # -- epoch control ---------------------------------------------------------

    def begin(self, rotate_to: Optional[bytes] = None) -> int:
        """Start a new re-permutation epoch; returns its epoch number.

        ``rotate_to`` piggybacks a key rotation on the pass: sealing (both
        the engine's and the reshuffler's) switches to the new master key
        immediately, the legacy key keeps old frames readable, and the
        epoch's refresh sweep guarantees every location is re-encrypted —
        so the legacy key is dropped exactly when the epoch completes,
        independent of serving traffic volume.
        """
        with self.engine.op_lock:
            if self._active:
                raise ConfigurationError(
                    f"epoch {self._epoch} is still in progress"
                )
            if rotate_to is not None:
                # Directly on the coprocessor, not engine.begin_key_rotation:
                # completion is tied to the epoch sweep, not to the engine's
                # request countdown.
                self.cop.begin_key_rotation(rotate_to)
                self._rotate_pending = True
            self._epoch += 1
            self.db._reshuffle_epoch_base = self._epoch
            self._frontier = 0
            self._epoch_key = self._key_rng.token(TAG_KEY_SIZE)
            # Per-epoch spawn label: reusing a label would replay the same
            # nonce stream against the same key — never acceptable.
            self._suite = self.cop.sibling_suite(
                f"reshuffle-epoch-{self._epoch}"
            )
            self._comparators = None
            self._comparators_pos = 0
            self._active = True
            self._set_gauge()
            self.counters.increment("epochs.begun")
        with self._wake:
            self._wake.notify_all()
        return self._epoch

    def set_pacing(self, batch_size: Optional[int] = None,
                   idle_interval: Optional[float] = None) -> None:
        """Adjust the worker's pacing mid-epoch (thread-safe).

        ``batch_size`` bounds how long each batch holds the op lock;
        ``idle_interval`` is the yield between batches.  Pacing only
        changes *when* comparators run, never *which*: the comparator
        stream is a pure function of the frontier (see
        :meth:`_comparator_slice`), so a pacing change can re-slice the
        epoch's unit sequence but not reorder it.  The worker is woken so
        a lower idle interval takes effect immediately rather than after
        the current (possibly long) sleep.
        """
        if batch_size is not None and batch_size <= 0:
            raise ConfigurationError("reshuffle batch size must be positive")
        if idle_interval is not None and idle_interval < 0:
            raise ConfigurationError("idle interval must be non-negative")
        with self._wake:
            if batch_size is not None:
                self.batch_size = batch_size
            if idle_interval is not None:
                self.idle_interval = idle_interval
            self._wake.notify_all()

    def step(self, budget: Optional[int] = None) -> int:
        """Execute up to ``budget`` units (default ``batch_size``) as one
        journaled batch; returns the number of units done (0 when idle).

        Holds the engine op lock for the duration of the batch — the
        bounded budget is what bounds a concurrent request's wait.
        """
        if budget is None:
            budget = self.batch_size
        if budget <= 0:
            raise ConfigurationError("step budget must be positive")
        with self.engine.op_lock:
            if not self._active:
                return 0
            # Both write-back state machines must be consistent before we
            # read frames: ours (a previous batch) and the engine's (a
            # previous request).
            self.engine._heal_pending()

            start = self._frontier
            end = min(start + budget, self._total)
            units: List[object] = []
            if start < self._network:
                units.extend(self._comparator_slice(
                    start, min(end, self._network) - start
                ))
            units.extend(
                unit - self._network
                for unit in range(max(start, self._network), end)
            )
            if not units:
                return 0

            with self.tracer.span("reshuffle.batch"):
                intent = self._compute_batch(start, units)
                if self.journal is not None:
                    self.journal.write(self._suite.encrypt_page(
                        intent.encode()
                    ))
                self._apply(intent)
                if self.journal is not None:
                    self.journal.clear()
            self.counters.increment("batches")
            return len(units)

    def run(self, max_steps: Optional[int] = None) -> int:
        """Step the current epoch to completion in the foreground.

        Returns the number of units executed.  ``max_steps`` bounds the
        number of batches (for interleaving with a serving loop by hand).
        """
        done = 0
        steps = 0
        while self._active:
            if max_steps is not None and steps >= max_steps:
                break
            did = self.step()
            if did == 0:
                break
            done += did
            steps += 1
        return done

    # -- batch construction ----------------------------------------------------

    def _comparator_slice(self, start: int, count: int) -> List[Tuple[int, int]]:
        """Comparators ``[start, start + count)`` of the epoch's network.

        The cached iterator remembers how many comparators it has yielded;
        whenever that position disagrees with the requested ``start`` — a
        journal replay or heal advanced the frontier without consuming
        units, or a failed compute/journal phase consumed units without
        advancing the frontier — the iterator is re-derived from the
        public network at the frontier.  Every batch therefore executes
        exactly the comparators its frontier range describes: retries
        re-run the same units, replays never shift the stream, and the
        network's tail always runs — the canonical Batcher order the
        epoch's privacy argument (DESIGN.md §15) depends on.
        """
        if self._comparators is None or self._comparators_pos != start:
            self._comparators = itertools.islice(
                batcher_network(self.engine.params.num_locations),
                start, None,
            )
            self._comparators_pos = start
        out = list(itertools.islice(self._comparators, count))
        self._comparators_pos += len(out)
        return out

    def _compute_batch(self, frontier: int, units: List[object]) -> ReshuffleIntent:
        """Compute phase: read, compare, reseal — no state mutated.

        The set of touched locations is a pure function of (n, frontier,
        budget): comparator index pairs come from the public network, sweep
        indices are sequential.  Whether a comparator swapped is hidden the
        same way as at setup — both frames are always rewritten fresh.
        """
        disk = self.engine.disk
        touched: List[int] = []
        pages: Dict[int, object] = {}

        def load(location: int) -> None:
            if location not in pages:
                touched.append(location)
                pages[location] = self.cop.unseal(disk.read(location))

        for unit in units:
            if isinstance(unit, tuple):
                i, j = unit
                load(i)
                load(j)
                tag_i = _tag(self._epoch_key, pages[i].page_id)
                tag_j = _tag(self._epoch_key, pages[j].page_id)
                if tag_i > tag_j:
                    pages[i], pages[j] = pages[j], pages[i]
            else:
                load(unit)

        capacity = self.cop.page_capacity
        frames = [
            self._suite.encrypt_page(pages[loc].encode(capacity))
            for loc in touched
        ]
        map_ops = [(pages[loc].page_id, loc) for loc in touched]
        comparators = sum(1 for unit in units if isinstance(unit, tuple))
        self.counters.increment("comparators", comparators)
        self.counters.increment("sweeps", len(units) - comparators)
        return ReshuffleIntent(
            epoch=self._epoch,
            frontier_before=frontier,
            frontier_after=frontier + len(units),
            locations=touched,
            frames=frames,
            map_ops=map_ops,
        )

    def _apply(self, intent: ReshuffleIntent) -> None:
        """Apply phase: idempotent, replayable from the sealed record."""
        disk = self.engine.disk
        pm = self.cop.page_map
        try:
            with self.tracer.span(
                "reshuffle.write_back",
                nbytes=len(intent.frames) * disk.frame_size,
            ):
                for location, frame in zip(intent.locations, intent.frames):
                    disk.write(location, frame)
        except Exception:
            # Partial write-back: some locations carry post-swap frames the
            # map does not describe yet.  Retain the intent; the engine's
            # heal (and ours) re-applies it before anything reads those
            # locations — the op lock is held throughout, so no request
            # can slip in between the failure and the heal.
            self._pending = intent
            raise
        for page_id, location in intent.map_ops:
            pm.set_disk(page_id, location)
        # Registered under the engine's suite identity: the sibling suite
        # shares its derived keys, so the decrypt keystream is the same
        # pure function of (key, nonce) either way.
        self.cop.note_frames_written(intent.locations, intent.frames)
        self._pending = None
        self._frontier = intent.frontier_after
        self._set_gauge()
        if intent.frontier_after >= self._total:
            self._finish_epoch()

    def _finish_epoch(self) -> None:
        self._active = False
        if self._rotate_pending:
            # The sweep just re-encrypted every location under the new
            # key (and the cache/journal never hold legacy ciphertexts
            # past their next write), so the legacy key is dead weight.
            self.cop.finish_key_rotation()
            self._rotate_pending = False
        self.counters.increment("epochs")
        self._set_gauge()

    def _heal_pending(self) -> None:
        """Roll forward a batch whose write-back failed without a crash."""
        intent = self._pending
        if intent is None:
            return
        self._apply(intent)
        if self.journal is not None:
            self.journal.clear()
        self.counters.increment("recovery.rolled_forward")

    def _set_gauge(self) -> None:
        if self._gauge is not None:
            self._gauge.set(self.progress)

    # -- crash recovery --------------------------------------------------------

    def recover(self) -> str:
        """Repair a torn comparator batch after a restart; idempotent.

        Call after the engine's own :meth:`~RetrievalEngine.recover` (their
        journals are independent; order only matters for who sets
        ``disk.current_request`` last) and — after a restart — after
        :meth:`restore_state` / :func:`~repro.core.snapshot.resume_reshuffle`
        has re-adopted the epoch.  Returns one of ``"clean"``,
        ``"rolled_back"``, ``"replayed"``, ``"discarded_stale"`` with the
        engine's semantics.  Raises :class:`~repro.errors.RecoveryError`
        when the journal is *ahead* of (or unmatched by) the trusted
        state — e.g. recover() before the sidecar restore: the record is
        the only roll-forward for a possibly torn batch, so it is retained
        rather than discarded.
        """
        with self.engine.op_lock:
            if self.journal is None:
                if self._pending is not None:
                    self._heal_pending()
                    return "replayed"
                return "clean"
            blob = self.journal.read()
            if blob is None:
                self._pending = None
                return "clean"
            try:
                intent = ReshuffleIntent.decode(self._unseal_record(blob))
            except (CryptoError, StorageError):
                # Torn or unauthentic: the crash hit while the record was
                # being written, so the batch never applied anything.
                self.journal.clear()
                self._pending = None
                self.counters.increment("recovery.rolled_back")
                return "rolled_back"
            if intent.epoch < self._epoch or (
                intent.epoch == self._epoch
                and intent.frontier_after <= self._frontier
            ):
                # Strictly behind the trusted state: a later epoch's
                # boundary (or this epoch's own apply) already made the
                # record moot.
                self.journal.clear()
                self.counters.increment("recovery.discarded_stale")
                return "discarded_stale"
            if intent.epoch > self._epoch or not self._active:
                # Ahead of (or unmatched by) the trusted state — e.g.
                # recover() ran before restore_state().  A torn batch may
                # have left half-written frames this record alone can roll
                # forward, so refuse instead of discarding it.
                raise RecoveryError(
                    f"reshuffle journal holds a record for epoch "
                    f"{intent.epoch} (frontier {intent.frontier_before}->"
                    f"{intent.frontier_after}) but the trusted state is at "
                    f"epoch {self._epoch}"
                    + ("" if self._active else " with no active epoch")
                    + "; restore the snapshot sidecar (resume_reshuffle) "
                    "before recover() — clearing the record would lose the "
                    "only roll-forward for a torn batch"
                )
            if intent.frontier_before != self._frontier:
                raise RecoveryError(
                    f"reshuffle journal describes frontier "
                    f"{intent.frontier_before} but the restored epoch is at "
                    f"{self._frontier}; the trusted state is older than the "
                    "journal and cannot be rolled forward"
                )
            self._apply(intent)
            self.journal.clear()
            self.counters.increment("recovery.replayed")
            return "replayed"

    def _unseal_record(self, blob: bytes) -> bytes:
        if self._suite is not None:
            try:
                return self._suite.decrypt_page(blob)
            except AuthenticationError:
                pass
        # Same master key, different suite object (e.g. after a restore):
        # the coprocessor's blob path verifies under current-or-legacy keys.
        return self.cop.unseal_blob(blob)

    # -- snapshot integration --------------------------------------------------

    def state_blob(self) -> bytes:
        """Serialised epoch state for a snapshot sidecar (seal before store:
        the epoch key is the permutation's secret)."""
        return b"".join([
            _STATE_MAGIC,
            _U64.pack(self._epoch),
            _U64.pack(self._frontier),
            bytes([1 if self._active else 0]),
            bytes([1 if self._rotate_pending else 0]),
            _U32.pack(len(self._epoch_key)),
            self._epoch_key,
        ])

    def restore_state(self, blob: bytes) -> None:
        """Adopt epoch state saved by :meth:`state_blob` on another replica.

        Re-positions the comparator iterator at the saved frontier (the
        network is deterministic in n) so the epoch resumes mid-sort —
        the warm-replica bootstrap path that joins without a cold shuffle.
        """
        if bytes(blob[:4]) != _STATE_MAGIC:
            raise StorageError("reshuffle state blob has a bad magic number")
        cursor = RecordCursor(blob, offset=4)
        epoch = cursor.take(_U64)
        frontier = cursor.take(_U64)
        active = cursor.take_byte() != 0
        rotate_pending = cursor.take_byte() != 0
        epoch_key = cursor.take_bytes(cursor.take(_U32))
        cursor.expect_end("reshuffle state blob")
        if frontier > self._total:
            raise StorageError(
                f"reshuffle state frontier {frontier} exceeds epoch size "
                f"{self._total}"
            )
        with self.engine.op_lock:
            self._epoch = epoch
            self._frontier = frontier
            self._active = active
            self._rotate_pending = rotate_pending
            self._epoch_key = epoch_key
            # Later begin() calls must continue the database-global epoch
            # numbering from the restored epoch: a fresh driver restarting
            # at epoch 1 would respawn this epoch's sibling labels and
            # replay their nonce streams against the same master key.
            self.db._reshuffle_epoch_base = epoch
            # Distinct spawn label per resume: (epoch, frontier) alone is
            # not unique — two resumes from the same sidecar land on the
            # same frontier with different frame contents — so a database-
            # global monotonic resume counter is mixed in, keeping every
            # resume's nonce stream disjoint from the pre-crash suite's
            # and from every earlier resume's.
            resume_seq = getattr(self.db, "_reshuffle_resume_seq", 0) + 1
            self.db._reshuffle_resume_seq = resume_seq
            self._suite = self.cop.sibling_suite(
                f"reshuffle-epoch-{epoch}-resume-{resume_seq}-{frontier}"
            )
            self._comparators = None
            self._comparators_pos = 0
            self._set_gauge()
        if active:
            with self._wake:
                self._wake.notify_all()

    # -- background worker -----------------------------------------------------

    def start(self) -> "OnlineReshuffler":
        """Spawn the daemon worker (idempotent while one is alive)."""
        with self._wake:
            if self._closed:
                raise ConfigurationError("reshuffler is closed")
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._worker_loop, name="online-reshuffle",
                    daemon=True,
                )
                self._worker.start()
        return self

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                if self._closed:
                    return
                if not self._active:
                    self._wake.wait(timeout=0.2)
                    continue
            try:
                did = self.step()
            except ReproError:
                # A transient batch failure: the intent is retained and
                # healed on the next step (or engine request).  Surfacing
                # it here would kill the worker over a recoverable fault.
                self.counters.increment("worker.errors")
                did = 0
            with self._wake:
                if self._closed:
                    return
                # The idle slot: yield so serving threads take the op lock
                # without queueing behind back-to-back batches.
                timeout = self.idle_interval if did else 0.05
                self._wake.wait(timeout=timeout)

    def close(self) -> None:
        """Stop the worker and detach from the engine (idempotent).

        Epoch state is left as-is: a half-finished epoch simply stays at
        its frontier (snapshot it, or reopen a driver and resume).
        """
        with self._wake:
            already = self._closed
            self._closed = True
            self._wake.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=_JOIN_TIMEOUT)
            self._worker = None
        if not already:
            try:
                self.engine._background_healers.remove(self._heal_pending)
            except ValueError:
                pass
