"""Oblivious permutation of the encrypted database (setup phase).

"Prior to query processing, the secure hardware encrypts and obliviously
permutes the database pages" (§3.1).  With only O(1) pages of working memory
inside the tamper boundary, writing page ``i`` straight to ``pi(i)`` would
reveal ``pi`` — so the permutation is realised as an *oblivious sort*:

1. each page is tagged with a fresh 16-byte random value (inside the
   hardware, invisible to the server),
2. a Batcher odd-even merge sorting network is executed over the disk,
   compare-exchanging pairs of encrypted frames; the network's access
   sequence depends only on ``n``, never on the data,
3. sorting by random tags yields a uniformly random permutation (ties occur
   with probability ~ n^2 / 2^129, which we accept and document).

Every compare-exchange re-encrypts both frames with fresh nonces, so the
server cannot even tell whether a swap happened.  Cost is
O(n log^2 n) compare-exchanges — paid once at setup, exactly as in the paper.

For large simulated databases where setup obliviousness is not the property
under study, :func:`direct_permute` installs the permutation with plain
sequential writes instead (DESIGN.md §3 documents this fidelity knob).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from .permutation import Permutation
from ..crypto.rng import SecureRandom
from ..crypto.suite import CipherSuite
from ..errors import ConfigurationError
from ..obs.tracer import NULL_TRACER
from ..storage.disk import DiskStore
from ..storage.page import Page

__all__ = [
    "batcher_network",
    "batcher_passes",
    "ObliviousShuffler",
    "direct_permute",
    "TAG_SIZE",
]

TAG_SIZE = 16


def batcher_passes(n: int) -> Iterator[Tuple[int, int, List[Tuple[int, int]]]]:
    """Yield the network one merge pass at a time as ``(p, k, comparators)``.

    A pass is one (p, k) stage of Batcher's odd-even merge: all of its
    comparators touch disjoint index pairs, which is what makes the pass a
    natural unit for progress reporting (and, in principle, for parallel
    execution).  Concatenating the passes in order reproduces
    :func:`batcher_network` exactly.
    """
    if n <= 0:
        raise ConfigurationError("network size must be positive")
    p = 1
    while p < n:
        k = p
        while k >= 1:
            comparators: List[Tuple[int, int]] = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        comparators.append((i + j, i + j + k))
            yield (p, k, comparators)
            k //= 2
        p *= 2


def batcher_network(n: int) -> Iterator[Tuple[int, int]]:
    """Yield the comparators (i, j), i < j, of Batcher's odd-even merge sort.

    Comparators whose upper index falls outside ``[0, n)`` are skipped; this
    is equivalent to padding with +infinity sentinel elements, which never
    move, so the network still sorts any n (not just powers of two).
    """
    for _p, _k, comparators in batcher_passes(n):
        for pair in comparators:
            yield pair


def network_size(n: int) -> int:
    """Number of comparators the network executes for ``n`` elements."""
    return sum(1 for _ in batcher_network(n))


class ObliviousShuffler:
    """Executes the tagged oblivious sort over a :class:`DiskStore`.

    The shuffler holds at most two pages inside the boundary at any moment,
    which is what makes the construction meaningful for a coprocessor whose
    cache is already fully committed to ``pageCache``.
    """

    def __init__(self, suite: CipherSuite, rng: SecureRandom, page_capacity: int,
                 tracer=None, metrics=None):
        self.suite = suite
        self.rng = rng
        self.page_capacity = page_capacity
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    @property
    def tagged_plaintext_size(self) -> int:
        return TAG_SIZE + Page.plaintext_size(self.page_capacity)

    @property
    def tagged_frame_size(self) -> int:
        return self.suite.frame_size(self.tagged_plaintext_size)

    # -- tagged frame codec -------------------------------------------------------

    def seal_tagged(self, tag: bytes, page: Page) -> bytes:
        if len(tag) != TAG_SIZE:
            raise ConfigurationError(f"tag must be {TAG_SIZE} bytes")
        return self.suite.encrypt_page(tag + page.encode(self.page_capacity))

    def unseal_tagged(self, frame: bytes) -> Tuple[bytes, Page]:
        plaintext = self.suite.decrypt_page(frame)
        return plaintext[:TAG_SIZE], Page.decode(plaintext[TAG_SIZE:])

    # -- the shuffle ---------------------------------------------------------------

    def ingest(self, pages: List[Page], disk: DiskStore) -> None:
        """Sequentially encrypt-and-write pages with fresh random tags.

        The server learns nothing beyond n and the frame size: the write
        order is the input order, and tags are inside the ciphertext.
        """
        if disk.frame_size != self.tagged_frame_size:
            raise ConfigurationError(
                "disk frame size does not match tagged frame size; create the "
                "scratch disk with ObliviousShuffler.tagged_frame_size"
            )
        if len(pages) != disk.num_locations:
            raise ConfigurationError("page count must equal disk size")
        for location, page in enumerate(pages):
            disk.write(location, self.seal_tagged(self.rng.token(TAG_SIZE), page))

    def sort(self, disk: DiskStore,
             progress: Callable[[int], None] = lambda done: None) -> None:
        """Run the sorting network over the disk (data-independent accesses).

        Progress is published as it goes — a ``shuffle.progress`` gauge in
        [0, 1] on the metrics registry plus one ``shuffle.pass`` span per
        (p, k) merge pass — so a long SETUP_OBLIVIOUS build is observable
        instead of silent.  Neither channel depends on the data: pass
        boundaries and comparator counts are functions of n alone.
        """
        n = disk.num_locations
        total = network_size(n)
        gauge = self.metrics.gauge("shuffle.progress") if self.metrics else None
        if gauge is not None:
            gauge.set(0.0)
        done = 0
        for _p, _k, comparators in batcher_passes(n):
            if not comparators:
                continue
            nbytes = 4 * len(comparators) * disk.frame_size
            with self.tracer.span("shuffle.pass", nbytes=nbytes):
                for i, j in comparators:
                    frame_i = disk.read(i)
                    frame_j = disk.read(j)
                    tag_i, page_i = self.unseal_tagged(frame_i)
                    tag_j, page_j = self.unseal_tagged(frame_j)
                    if tag_i > tag_j:
                        page_i, page_j = page_j, page_i
                        tag_i, tag_j = tag_j, tag_i
                    # Always rewrite both with fresh nonces so swap/no-swap
                    # is invisible.
                    disk.write(i, self.seal_tagged(tag_i, page_i))
                    disk.write(j, self.seal_tagged(tag_j, page_j))
                    done += 1
                    progress(done)
            if gauge is not None:
                gauge.set(done / total if total else 1.0)
        if gauge is not None:
            gauge.set(1.0)

    def extract_layout(self, disk: DiskStore) -> List[int]:
        """Read back which page id landed at each location (post-sort pass).

        In deployment this pass is how the hardware (re)builds ``pageMap``;
        it is a sequential scan, so it leaks nothing.
        """
        layout: List[int] = []
        for location in range(disk.num_locations):
            _tag, page = self.unseal_tagged(disk.read(location))
            layout.append(page.page_id)
        return layout

    def shuffle(self, pages: List[Page], disk: DiskStore) -> List[int]:
        """Ingest, sort, and return the resulting layout (id at each location)."""
        self.ingest(pages, disk)
        self.sort(disk)
        return self.extract_layout(disk)


def direct_permute(pages: List[Page], permutation: Permutation) -> List[Page]:
    """Apply a permutation in trusted memory: result[pi(i)] = pages[i].

    Fast-setup path for experiments (see module docstring); the resulting
    layout is identical in distribution to the oblivious sort's.
    """
    if len(pages) != len(permutation):
        raise ConfigurationError("page count must match permutation size")
    result: List[Page] = [pages[0]] * len(pages)
    for index, page in enumerate(pages):
        result[permutation.apply(index)] = page
    return result
